#!/usr/bin/env sh
# Snapshot the workspace's public API surface.
#
# Emits one line per `pub` item (functions, types, traits, constants,
# modules, re-exports) across the facade crate and every workspace
# library crate, prefixed with its file. The committed snapshot
# (api_surface.txt) is diffed against a fresh run in CI, so any change
# to the public API shows up in review as an explicit snapshot update —
# the offline stand-in for cargo-public-api.
#
# Usage:
#   tools/api_surface.sh                 # print to stdout
#   tools/api_surface.sh > api_surface.txt   # refresh the snapshot
set -eu
cd "$(dirname "$0")/.."

find src crates -name '*.rs' -path '*/src/*' ! -path '*/target/*' \
    | LC_ALL=C sort \
    | while IFS= read -r f; do
    # Trim indentation, keep only public item declarations. Trailing
    # braces/parens are cut so body edits don't churn the snapshot.
    sed -n -E 's/^[[:space:]]*(pub (fn|async fn|const fn|unsafe fn|struct|enum|union|trait|type|const|static|mod|use) [^={(]*).*/\1/p' "$f" \
        | sed -E 's/[[:space:]]+$//' \
        | LC_ALL=C sort -u \
        | sed "s|^|$f: |"
done
