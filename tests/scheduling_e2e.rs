//! Integration: the §VI-C elastic-scheduling experiment shapes
//! (Figs. 20 and 22).

use elan::baselines::ShutdownRestart;
use elan::core::elasticity::{ElasticitySystem, IdealSystem};
use elan::core::ElanSystem;
use elan::sched::{generate_trace, run_trace, PolicyKind, SimConfig, TraceConfig};
use elan::sim::SimDuration;

fn config<'a>(policy: PolicyKind, system: &'a dyn ElasticitySystem, seed: u64) -> SimConfig<'a> {
    SimConfig {
        total_gpus: 128,
        policy,
        system,
        coordination_interval: 10,
        startup: SimDuration::from_secs(30),
        seed,
        capacity: None,
    }
}

/// A smaller trace than the full two-day one, to keep CI fast while
/// preserving contention.
fn test_trace(seed: u64) -> Vec<elan::sched::JobSpec> {
    generate_trace(&TraceConfig {
        duration: SimDuration::from_secs(24 * 3600),
        expected_jobs: 80,
        total_gpus: 128,
        mean_runtime: SimDuration::from_secs(2 * 3600),
        seed,
    })
}

#[test]
fn elasticity_improves_all_three_metrics() {
    // Fig. 20 shape: elastic variants beat their static counterparts on
    // JPT, JCT, and makespan.
    let elan = ElanSystem::new();
    let jobs = test_trace(11);
    let fifo = run_trace(&config(PolicyKind::Fifo, &elan, 11), &jobs).metrics();
    let efifo = run_trace(&config(PolicyKind::ElasticFifo, &elan, 11), &jobs).metrics();
    let bf = run_trace(&config(PolicyKind::Backfill, &elan, 11), &jobs).metrics();
    let ebf = run_trace(&config(PolicyKind::ElasticBackfill, &elan, 11), &jobs).metrics();

    assert!(efifo.avg_jpt() < fifo.avg_jpt());
    assert!(efifo.avg_jct() < fifo.avg_jct());
    assert!(efifo.makespan <= fifo.makespan);

    assert!(ebf.avg_jpt() <= bf.avg_jpt());
    assert!(ebf.avg_jct() < bf.avg_jct());
    assert!(ebf.makespan <= bf.makespan);
}

#[test]
fn jpt_reduction_is_substantial() {
    // Paper: JPT reduced by 43%+. Assert a substantial reduction.
    let elan = ElanSystem::new();
    let jobs = test_trace(22);
    let fifo = run_trace(&config(PolicyKind::Fifo, &elan, 22), &jobs).metrics();
    let efifo = run_trace(&config(PolicyKind::ElasticFifo, &elan, 22), &jobs).metrics();
    let reduction = (fifo.avg_jpt() - efifo.avg_jpt()) / fifo.avg_jpt();
    assert!(
        reduction > 0.30,
        "JPT reduction only {:.0}% (FIFO {:.0}s, E-FIFO {:.0}s)",
        reduction * 100.0,
        fifo.avg_jpt(),
        efifo.avg_jpt()
    );
}

#[test]
fn elan_tracks_ideal_and_beats_snr() {
    // Fig. 22: Elan ≈ Ideal; S&R measurably worse.
    let jobs = test_trace(33);
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();
    let ideal = IdealSystem;
    let jct = |sys: &dyn ElasticitySystem| {
        run_trace(&config(PolicyKind::ElasticBackfill, sys, 33), &jobs)
            .metrics()
            .avg_jct()
    };
    let (ji, je, js) = (jct(&ideal), jct(&elan), jct(&snr));
    assert!(je <= ji * 1.03, "Elan {je:.0}s vs Ideal {ji:.0}s");
    assert!(js > je * 1.01, "S&R {js:.0}s should exceed Elan {je:.0}s");
}

#[test]
fn elastic_scheduling_improves_resource_usage() {
    // The paper uses makespan as the resource-utilization indicator: the
    // same work finishes in less cluster time under the elastic policy.
    // (Raw allocation fraction can tie at saturation, since the elastic
    // run drains the backlog and goes idle sooner.)
    let elan = ElanSystem::new();
    let jobs = test_trace(44);
    let bf = run_trace(&config(PolicyKind::Backfill, &elan, 44), &jobs).metrics();
    let ebf = run_trace(&config(PolicyKind::ElasticBackfill, &elan, 44), &jobs).metrics();
    assert!(
        ebf.makespan <= bf.makespan,
        "E-BF makespan {} !<= BF {}",
        ebf.makespan,
        bf.makespan
    );
    // And it must not trade that for worse completion times.
    assert!(ebf.avg_jct() < bf.avg_jct());
}

#[test]
fn spot_capacity_favors_elastic_policies() {
    // Transient-resource scenario: capacity dips evict static jobs but
    // elastic jobs shrink; every job still completes either way.
    use elan::sched::capacity::CapacitySchedule;
    let jobs = test_trace(66);
    let spot = CapacitySchedule::spot_pattern(128, 72, 8, 3, 24);
    let elan = ElanSystem::new();
    let mut bf_cfg = config(PolicyKind::Backfill, &elan, 66);
    bf_cfg.capacity = Some(&spot);
    let mut ebf_cfg = config(PolicyKind::ElasticBackfill, &elan, 66);
    ebf_cfg.capacity = Some(&spot);

    let bf = run_trace(&bf_cfg, &jobs);
    let ebf = run_trace(&ebf_cfg, &jobs);
    assert_eq!(bf.outcomes.len(), jobs.len());
    assert_eq!(ebf.outcomes.len(), jobs.len());
    // Static policies are forced to evict whole jobs at every dip.
    assert!(bf.evictions > 0, "the dips should bite the static policy");
    // The elastic policy absorbs the dips by shrinking (forced min_res
    // adjustments) and completes jobs substantially faster on average.
    // (It may evict more *small* jobs in absolute count, because it runs
    // ~3x more jobs concurrently at min_res — JCT is the fair metric.)
    let jct_bf = bf.metrics().avg_jct();
    let jct_ebf = ebf.metrics().avg_jct();
    assert!(
        jct_ebf < jct_bf,
        "elastic JCT {jct_ebf:.0}s !< static {jct_bf:.0}s under spot dips"
    );
}

#[test]
fn every_job_completes_under_every_combination() {
    let jobs = test_trace(55);
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();
    let systems: [&dyn ElasticitySystem; 2] = [&elan, &snr];
    for sys in systems {
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::Backfill,
            PolicyKind::ElasticFifo,
            PolicyKind::ElasticBackfill,
        ] {
            let out = run_trace(&config(policy, sys, 55), &jobs);
            assert_eq!(
                out.outcomes.len(),
                jobs.len(),
                "{policy:?}/{} lost jobs",
                sys.name()
            );
        }
    }
}
