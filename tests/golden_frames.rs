//! Golden-frame corpus: pins the exact on-wire bytes of every
//! control-plane frame kind and `RtMsg` variant against committed
//! `.bin` files in `tests/golden_frames/`.
//!
//! This is the byte-level complement to the WIRE_COMPAT static check:
//! the checker proves the tag *table* did not move, this suite proves
//! the full encoding (magic, version, endianness, field order, CRC)
//! still produces — and still accepts — the bytes a peer built from an
//! older commit would exchange. Any intentional wire change must
//! regenerate the corpus, which makes the diff reviewable byte by byte:
//!
//! ```text
//! ELAN_REGEN_GOLDEN=1 cargo test --test golden_frames
//! ```

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use elan::core::codec::{decode_frame, encode_frame, WireFrame};
use elan::core::messages::{MsgId, StateKind};
use elan::core::protocol::{EndpointId, Envelope, EpochPhase, RtMsg};
use elan::core::state::WorkerId;

/// Wraps a payload in the fixed envelope every corpus entry shares, so
/// a byte diff in a `.bin` file is always a payload (or framing)
/// change, never envelope noise.
fn msg(body: RtMsg) -> WireFrame {
    WireFrame::Msg {
        to: EndpointId::Am,
        env: Envelope {
            id: MsgId(7),
            from: EndpointId::Worker(WorkerId(1)),
            attempt: 1,
            body,
        },
    }
}

/// One entry per frame kind and `RtMsg` variant — the whole tag table.
fn corpus() -> Vec<(&'static str, WireFrame)> {
    let data = Arc::new(vec![1.0f32, -2.5, 0.0]);
    vec![
        (
            "hello",
            WireFrame::Hello {
                from: EndpointId::Worker(WorkerId(3)),
            },
        ),
        (
            "hello_controller",
            WireFrame::Hello {
                from: EndpointId::Controller,
            },
        ),
        (
            "report",
            msg(RtMsg::Report {
                worker: WorkerId(0),
            }),
        ),
        (
            "coordinate",
            msg(RtMsg::Coordinate {
                worker: WorkerId(1),
                iteration: 42,
            }),
        ),
        (
            "proceed",
            msg(RtMsg::Proceed {
                boundary: 100,
                term: 2,
            }),
        ),
        (
            "transfer_order",
            msg(RtMsg::TransferOrder {
                dst: WorkerId(2),
                term: 3,
            }),
        ),
        (
            "transfer_done",
            msg(RtMsg::TransferDone {
                src: WorkerId(2),
                dst: WorkerId(4),
            }),
        ),
        (
            "state_chunk",
            msg(RtMsg::StateChunk {
                kind: StateKind::Params,
                iteration: 10,
                data_cursor: 5,
                index: 0,
                total: 1,
                offset: 0,
                data: Arc::clone(&data),
            }),
        ),
        (
            "state_chunk_momentum",
            msg(RtMsg::StateChunk {
                kind: StateKind::Momentum,
                iteration: 10,
                data_cursor: 5,
                index: 0,
                total: 1,
                offset: 0,
                data,
            }),
        ),
        (
            "resume",
            msg(RtMsg::Resume {
                generation: 1,
                term: 4,
            }),
        ),
        ("leave", msg(RtMsg::Leave { term: 5 })),
        (
            "adjust_to",
            msg(RtMsg::AdjustTo {
                seq: 6,
                target: vec![WorkerId(0), WorkerId(1)],
            }),
        ),
        ("stop", msg(RtMsg::Stop { seq: 7 })),
        ("checkpoint", msg(RtMsg::Checkpoint { seq: 8 })),
        (
            "checkpoint_order",
            msg(RtMsg::CheckpointOrder { seq: 9, term: 6 }),
        ),
        ("ack", msg(RtMsg::Ack { seq: 10 })),
        ("msg_ack", msg(RtMsg::MsgAck { of: MsgId(11) })),
        (
            "heartbeat",
            msg(RtMsg::Heartbeat {
                worker: WorkerId(5),
                iteration: 12,
            }),
        ),
        ("am_reset", msg(RtMsg::AmReset { epoch: 2, term: 7 })),
        (
            "rejoin",
            msg(RtMsg::Rejoin {
                worker: WorkerId(6),
                term: 8,
                iteration: 13,
            }),
        ),
        (
            "join_request",
            msg(RtMsg::JoinRequest {
                worker: WorkerId(7),
                epoch: 3,
                digest: None,
            }),
        ),
        (
            "join_request_digest",
            msg(RtMsg::JoinRequest {
                worker: WorkerId(7),
                epoch: 3,
                digest: Some(0x1234_5678_9abc_def0),
            }),
        ),
        (
            "epoch_advance",
            msg(RtMsg::EpochAdvance {
                epoch: 4,
                phase: EpochPhase::Warmup,
                term: 9,
            }),
        ),
        (
            "witness_query",
            msg(RtMsg::WitnessQuery {
                subject: WorkerId(8),
                epoch: 4,
                probe: 0xfeed_face_cafe_beef,
                term: 9,
            }),
        ),
        (
            "witness_vote",
            msg(RtMsg::WitnessVote {
                witness: WorkerId(2),
                subject: WorkerId(8),
                epoch: 4,
                admit: true,
                digest: 0xfeed_face_cafe_beef,
            }),
        ),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_frames")
}

#[test]
fn corpus_matches_committed_bytes() -> Result<(), String> {
    let dir = golden_dir();
    let regen = std::env::var_os("ELAN_REGEN_GOLDEN").is_some();
    if regen {
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let mut expected_files = Vec::new();
    for (name, frame) in corpus() {
        let path = dir.join(format!("{name}.bin"));
        expected_files.push(format!("{name}.bin"));
        let encoded = encode_frame(&frame);
        if regen {
            fs::write(&path, &encoded).map_err(|e| format!("write {}: {e}", path.display()))?;
            continue;
        }
        let committed = fs::read(&path).map_err(|e| {
            format!(
                "missing golden frame {} ({e}); regenerate with ELAN_REGEN_GOLDEN=1 \
                 and review the byte diff",
                path.display()
            )
        })?;
        // Encoder stability: today's encoder must reproduce the committed
        // bytes exactly — field order, endianness, CRC and all.
        if encoded != committed {
            return Err(format!(
                "golden frame {name}: encoder produced {} byte(s) that differ from \
                 the committed {} byte(s) — a wire-format change; if intentional, \
                 regenerate with ELAN_REGEN_GOLDEN=1 and review the diff",
                encoded.len(),
                committed.len()
            ));
        }
        // Decoder compatibility: bytes an older build put on the wire must
        // still decode to the same frame.
        let decoded = decode_frame(&committed)
            .map_err(|e| format!("golden frame {name}: committed bytes no longer decode: {e:?}"))?;
        let want = format!("{frame:?}");
        let got = format!("{decoded:?}");
        if want != got {
            return Err(format!(
                "golden frame {name}: committed bytes decode to a different frame\n \
                 want: {want}\n  got: {got}"
            ));
        }
    }
    if regen {
        return Ok(());
    }
    // No orphans: every committed .bin must be covered by the corpus, so a
    // removed variant cannot leave stale pinned bytes behind.
    for entry in fs::read_dir(&dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let fname = entry.file_name().to_string_lossy().into_owned();
        if fname.ends_with(".bin") && !expected_files.contains(&fname) {
            return Err(format!(
                "stale golden frame {fname}: not produced by the corpus; remove it \
                 or add the corpus entry back"
            ));
        }
    }
    Ok(())
}

#[test]
fn corrupt_golden_bytes_are_rejected() -> Result<(), String> {
    // Flip one payload bit in a pinned frame: the CRC trailer must catch it.
    let frame = msg(RtMsg::Leave { term: 5 });
    let mut bytes = encode_frame(&frame);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    match decode_frame(&bytes) {
        Err(_) => Ok(()),
        Ok(f) => Err(format!("corrupted frame decoded as {f:?}")),
    }
}
