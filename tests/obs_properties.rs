//! Property-based tests for the observability layer: every adjustment the
//! live runtime performs — scale-out, scale-in, under arbitrary chaos
//! seeds — must leave a **well-formed 5-phase trace** in the journal:
//!
//! - all five phases present, each with `start ≤ end` (monotone
//!   timestamps), laid out in pipeline order;
//! - no orphan phases: a completed trace has no open `(start, None)`
//!   windows dangling past completion;
//! - the journal's event stream and the trace spans agree (each completed
//!   trace has its `adjustment_requested` and `adjustment_completed`
//!   bracket in the journal).
//!
//! Live runs spawn real threads, so the case count is deliberately small;
//! the chaos seed is the interesting degree of freedom (it reshuffles
//! drops/delays/duplicates, which reorder and repeat the control
//! messages feeding the trace recorder).

//! Runs ride a [`TimeSource::virtual_seeded`] clock keyed to the chaos
//! seed, so each proptest case is wall-clock-free *and* individually
//! replayable: a failing seed reproduces its exact schedule.

use proptest::prelude::*;

use elan::rt::{ChaosPolicy, ElasticRuntime, EventKind, RuntimeConfig, TimeSource};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Scale-out then scale-in on a chaotic bus: every completed trace is
    /// well-formed and bracketed by its journal events.
    #[test]
    fn every_adjustment_leaves_a_well_formed_trace(
        seed in 0u64..1_000_000,
        out in 1u32..3,
        drop_pct in 0u32..16,
    ) {
        let mut cfg = RuntimeConfig::small(2);
        cfg.retry_max_attempts = 12;
        let chaos = ChaosPolicy::new(seed)
            .drop(f64::from(drop_pct) / 100.0)
            .delay(0.10, 2)
            .duplicate(0.05);
        let mut rt = ElasticRuntime::builder()
            .config(cfg)
            .chaos(chaos)
            .time(TimeSource::virtual_seeded(seed))
            .start()
            .unwrap();
        rt.run_until_iteration(5);
        rt.scale_out(out);
        rt.run_until_iteration(10);
        rt.scale_in(1);
        rt.run_until_iteration(15);
        let report = rt.shutdown();

        prop_assert!(report.states_consistent(), "replicas diverged");
        let completed: Vec<_> = report.traces.iter().filter(|t| t.completed).collect();
        prop_assert!(
            completed.len() >= 2,
            "expected at least scale-out + scale-in traces, got {:?}",
            report.traces
        );
        for t in &completed {
            // Well-formed: 5 phases, monotone, ordered, no orphans.
            prop_assert!(t.is_well_formed(), "malformed trace: {t:?}");
            prop_assert!(t.total_us() < u64::MAX, "unbounded span: {t:?}");
            // Journal agreement: the requested/completed bracket exists.
            let requested = report.events.iter().any(|e| matches!(
                e.kind, EventKind::AdjustmentRequested { trace, .. } if trace == t.id));
            let finished = report.events.iter().any(|e| matches!(
                e.kind, EventKind::AdjustmentCompleted { trace, .. } if trace == t.id));
            prop_assert!(requested, "trace {} never requested in journal", t.id);
            prop_assert!(finished, "trace {} never completed in journal", t.id);
        }
        // The summary's totals cover at least the events we still hold.
        prop_assert!(report.journal.total >= report.events.len() as u64);
    }

    /// Determinism as a *property*: for any seed, two in-process runs of
    /// the same chaotic scenario under virtual time yield byte-identical
    /// journals (timestamps included).
    #[test]
    fn journal_is_a_pure_function_of_the_seed(seed in 0u64..1_000_000) {
        fn run(seed: u64) -> Vec<String> {
            let mut cfg = RuntimeConfig::small(2);
            cfg.retry_max_attempts = 12;
            let mut rt = ElasticRuntime::builder()
                .config(cfg)
                .chaos(ChaosPolicy::new(seed).drop(0.10).delay(0.10, 2).duplicate(0.05))
                .time(TimeSource::virtual_seeded(seed))
                .start()
                .unwrap();
            rt.run_until_iteration(5);
            rt.scale_out(1);
            rt.run_until_iteration(10);
            let report = rt.shutdown();
            report.events.iter().map(|e| format!("{e:?}")).collect()
        }
        let a = run(seed);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, run(seed), "seed {} diverged across runs", seed);
    }
}
