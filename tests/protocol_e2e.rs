//! Integration: the coordination protocol end to end — the virtual-time
//! actor protocol under faults, and the live multi-threaded runtime.

use elan::core::coordination::{run_coordination, CoordinationConfig};
use elan::core::elasticity::AdjustmentRequest;
use elan::rt::ElasticRuntime;
use elan::sim::SimDuration;
use elan::topology::GpuId;

#[test]
fn simulated_and_live_protocols_agree_on_semantics() {
    // Simulated: 4 workers scale to 6; existing workers never stop.
    let mut cfg = CoordinationConfig::baseline(4, 30);
    cfg.request = Some(AdjustmentRequest::contiguous(4, 6));
    let sim = run_coordination(&cfg);
    assert!(sim.am.adjustment_completed_at.is_some());
    for g in 0..4 {
        assert_eq!(sim.workers[&GpuId(g)].rounds_completed, 30);
    }

    // Live: the same shape with real threads.
    let mut rt = ElasticRuntime::builder().workers(4).start().unwrap();
    rt.run_until_iteration(10);
    rt.scale_out(2);
    rt.run_until_iteration(30);
    let report = rt.shutdown();
    assert_eq!(report.final_world_size, 6);
    assert!(report.states_consistent());
}

#[test]
fn protocol_survives_combined_loss_and_crash() {
    let mut cfg = CoordinationConfig::baseline(6, 40);
    cfg.request = Some(AdjustmentRequest::contiguous(6, 10));
    cfg.loss_prob = 0.15;
    cfg.am_crash = Some((SimDuration::from_secs(12), SimDuration::from_secs(4)));
    let out = run_coordination(&cfg);
    assert_eq!(out.am.recoveries, 1);
    assert!(out.total_resends() > 0);
    assert!(out.am.adjustment_completed_at.is_some());
    for g in 6..10 {
        assert!(out.workers[&GpuId(g)].joined, "gpu{g} never joined");
    }
    for g in 0..6 {
        assert_eq!(out.workers[&GpuId(g)].rounds_completed, 40);
    }
}

#[test]
fn pause_stays_bounded_under_faults() {
    // Even with loss, the per-worker stall is bounded by the adjustment
    // pause plus retry latencies — orders of magnitude under S&R's ~40s.
    let mut cfg = CoordinationConfig::baseline(4, 25);
    cfg.request = Some(AdjustmentRequest::contiguous(4, 8));
    cfg.loss_prob = 0.1;
    let out = run_coordination(&cfg);
    let stall = out.max_stall();
    assert!(
        stall < cfg.pause + SimDuration::from_secs(5),
        "stall {stall} too large"
    );
}

#[test]
fn live_runtime_full_lifecycle_stress() {
    let mut rt = ElasticRuntime::builder().workers(2).start().unwrap();
    for step in 1..=4u32 {
        rt.run_until_iteration(u64::from(step) * 10);
        match step % 3 {
            0 => rt.migrate(),
            1 => rt.scale_out(step),
            _ => {
                if rt.members().len() > 2 {
                    rt.scale_in(1);
                }
            }
        }
    }
    rt.run_until_iteration(60);
    let report = rt.shutdown();
    assert!(report.states_consistent());
    assert!(report.adjustments >= 3);
}

#[test]
fn scale_in_frees_threads_promptly() {
    let mut rt = ElasticRuntime::builder().workers(6).start().unwrap();
    rt.run_until_iteration(5);
    rt.scale_in(4);
    assert_eq!(rt.members().len(), 2);
    rt.run_until_iteration(20);
    let report = rt.shutdown();
    assert_eq!(report.final_world_size, 2);
    // Every worker that left did so cleanly (telemetry shows not-alive).
    let dead = report.workers.values().filter(|v| !v.alive).count();
    assert_eq!(dead, report.workers.len());
}
