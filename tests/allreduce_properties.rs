//! Property-based tests for the chunked cooperative allreduce.
//!
//! The data-plane overhaul (chunking, work-stealing helpers, buffer
//! pooling) is only admissible if it is *bit-deterministic*: training
//! reproducibility (EasyScale's requirement, and this repo's
//! `states_consistent` invariant) rests on every worker observing the
//! exact same f32 sum, bit for bit, no matter how threads raced to the
//! rendezvous or how the vector was chunked.
//!
//! The property: for random world sizes, vector lengths, chunk sizes,
//! input magnitudes, and thread arrival orders, every worker's result is
//! bit-identical to the naive ascending-worker-id reference sum.
//!
//! Arrival order is shuffled *without wall-clock sleeps*: workers are
//! spawned in a seeded permutation and stagger themselves with scheduler
//! yields. The result must be bit-identical under **every** interleaving,
//! so the property is meaningful regardless of how the OS actually
//! schedules the racers — the shuffle just diversifies the coverage.

use std::thread;

use proptest::prelude::*;

use elan::core::state::WorkerId;
use elan::rt::comm::{reference_sum, AllreduceOutcome, CommGroup};

/// Deterministic f32 generator with wildly mixed magnitudes (2^-20 ..
/// 2^20) — the regime where float addition is least associative, so any
/// reordering bug in the chunked reduction shows up as a bit flip.
struct F32Gen(u64);

impl F32Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn next_f32(&mut self) -> f32 {
        let bits = self.next_u64();
        let mantissa = ((bits & 0xFFFF) as f32 / 65536.0) - 0.5;
        let exp = ((bits >> 16) % 41) as i32 - 20;
        mantissa * (exp as f32).exp2()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked cooperative reduction == naive reference, bitwise, for
    /// every worker, across random shapes and arrival orders — and
    /// across consecutive rounds, so the pooled-buffer reuse path is
    /// crossed too.
    #[test]
    fn chunked_allreduce_is_bit_identical_to_reference(
        world in 1usize..=8,
        len in 1usize..=257,
        chunk in 1usize..=64,
        seed in 0u64..1_000_000_000,
        rounds in 1usize..=3,
    ) {
        let members: Vec<WorkerId> = (0..world as u32).map(WorkerId).collect();
        let group = CommGroup::with_chunk_elems(members.iter().copied(), len, chunk);
        let mut gen = F32Gen(seed | 1);

        for round in 0..rounds {
            let inputs: Vec<Vec<f32>> = (0..world)
                .map(|_| (0..len).map(|_| gen.next_f32()).collect())
                .collect();
            let expect: Vec<u32> = reference_sum(&inputs)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            // Randomize the rendezvous without any wall-clock sleeps:
            // spawn workers in a seeded permutation and let each one
            // stagger itself with scheduler yields, so the
            // publisher/helper roles shuffle freely.
            let yields: Vec<u64> = (0..world).map(|_| gen.next_u64() % 4).collect();
            let mut order: Vec<usize> = (0..world).collect();
            for i in (1..world).rev() {
                order.swap(i, (gen.next_u64() % (i as u64 + 1)) as usize);
            }

            let mut results: Vec<(usize, Vec<u32>)> = thread::scope(|s| {
                let handles: Vec<_> = order
                    .iter()
                    .map(|&w| {
                        let group = &group;
                        let input = &inputs[w];
                        let n_yields = yields[w];
                        s.spawn(move || {
                            for _ in 0..n_yields {
                                thread::yield_now();
                            }
                            match group.allreduce(WorkerId(w as u32), input) {
                                AllreduceOutcome::Sum { sum, world: n } => {
                                    assert_eq!(n as usize, world, "wrong captured world");
                                    (w, sum.iter().map(|v| v.to_bits()).collect::<Vec<u32>>())
                                }
                                other => panic!("unexpected outcome {other:?}"),
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("allreduce thread"))
                    .collect()
            });
            results.sort_by_key(|(w, _)| *w);
            let results: Vec<Vec<u32>> = results.into_iter().map(|(_, sum)| sum).collect();

            for (w, got) in results.iter().enumerate() {
                prop_assert_eq!(
                    got,
                    &expect,
                    "worker {} diverged at round {} (world={}, len={}, chunk={})",
                    w,
                    round,
                    world,
                    len,
                    chunk
                );
            }
        }
        // Buffer pooling never balloons: the pool alternates between two
        // buffers at steady state (one published result, one in flight).
        prop_assert!(
            group.pool_allocations() <= 3,
            "pool allocated {} buffers over {} rounds",
            group.pool_allocations(),
            rounds
        );
    }
}
