//! Property-based tests for the chunked cooperative allreduce.
//!
//! The data-plane overhaul (chunking, work-stealing helpers, buffer
//! pooling) is only admissible if it is *bit-deterministic*: training
//! reproducibility (EasyScale's requirement, and this repo's
//! `states_consistent` invariant) rests on every worker observing the
//! exact same f32 sum, bit for bit, no matter how threads raced to the
//! rendezvous or how the vector was chunked.
//!
//! The property: for random world sizes, vector lengths, chunk sizes,
//! input magnitudes, and thread arrival orders, every worker's result is
//! bit-identical to the naive ascending-worker-id reference sum.
//!
//! Arrival order is shuffled *without wall-clock sleeps*: workers are
//! spawned in a seeded permutation and stagger themselves with scheduler
//! yields. The result must be bit-identical under **every** interleaving,
//! so the property is meaningful regardless of how the OS actually
//! schedules the racers — the shuffle just diversifies the coverage.

use std::thread;

use proptest::prelude::*;

use elan::core::state::WorkerId;
use elan::rt::comm::{
    reference_sum, AllreduceOutcome, CommGroup, CommTopology, ReducePath, TuningProfile,
};
use elan::topology::{ClusterSpec, Placement};

/// Deterministic f32 generator with wildly mixed magnitudes (2^-20 ..
/// 2^20) — the regime where float addition is least associative, so any
/// reordering bug in the chunked reduction shows up as a bit flip.
struct F32Gen(u64);

impl F32Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn next_f32(&mut self) -> f32 {
        let bits = self.next_u64();
        let mantissa = ((bits & 0xFFFF) as f32 / 65536.0) - 0.5;
        let exp = ((bits >> 16) % 41) as i32 - 20;
        mantissa * (exp as f32).exp2()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked cooperative reduction == naive reference, bitwise, for
    /// every worker, across random shapes and arrival orders — and
    /// across consecutive rounds, so the pooled-buffer reuse path is
    /// crossed too.
    #[test]
    fn chunked_allreduce_is_bit_identical_to_reference(
        world in 1usize..=8,
        len in 1usize..=257,
        chunk in 1usize..=64,
        seed in 0u64..1_000_000_000,
        rounds in 1usize..=3,
    ) {
        let members: Vec<WorkerId> = (0..world as u32).map(WorkerId).collect();
        let group = CommGroup::with_chunk_elems(members.iter().copied(), len, chunk);
        let mut gen = F32Gen(seed | 1);

        for round in 0..rounds {
            let inputs: Vec<Vec<f32>> = (0..world)
                .map(|_| (0..len).map(|_| gen.next_f32()).collect())
                .collect();
            let expect: Vec<u32> = reference_sum(&inputs)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            // Randomize the rendezvous without any wall-clock sleeps:
            // spawn workers in a seeded permutation and let each one
            // stagger itself with scheduler yields, so the
            // publisher/helper roles shuffle freely.
            let yields: Vec<u64> = (0..world).map(|_| gen.next_u64() % 4).collect();
            let mut order: Vec<usize> = (0..world).collect();
            for i in (1..world).rev() {
                order.swap(i, (gen.next_u64() % (i as u64 + 1)) as usize);
            }

            let mut results: Vec<(usize, Vec<u32>)> = thread::scope(|s| {
                let handles: Vec<_> = order
                    .iter()
                    .map(|&w| {
                        let group = &group;
                        let input = &inputs[w];
                        let n_yields = yields[w];
                        s.spawn(move || {
                            for _ in 0..n_yields {
                                thread::yield_now();
                            }
                            match group.allreduce(WorkerId(w as u32), input) {
                                AllreduceOutcome::Sum { sum, world: n } => {
                                    assert_eq!(n as usize, world, "wrong captured world");
                                    (w, sum.iter().map(|v| v.to_bits()).collect::<Vec<u32>>())
                                }
                                other => panic!("unexpected outcome {other:?}"),
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("allreduce thread"))
                    .collect()
            });
            results.sort_by_key(|(w, _)| *w);
            let results: Vec<Vec<u32>> = results.into_iter().map(|(_, sum)| sum).collect();

            for (w, got) in results.iter().enumerate() {
                prop_assert_eq!(
                    got,
                    &expect,
                    "worker {} diverged at round {} (world={}, len={}, chunk={})",
                    w,
                    round,
                    world,
                    len,
                    chunk
                );
            }
        }
        // Buffer pooling never balloons: the pool alternates between two
        // buffers at steady state (one published result, one in flight).
        prop_assert!(
            group.pool_allocations() <= 3,
            "pool allocated {} buffers over {} rounds",
            group.pool_allocations(),
            rounds
        );
    }

    /// Every engine of the adaptive dispatcher — flat, chunked, and
    /// hierarchical — produces the same bits as the naive reference, for
    /// the same random shapes and arrival orders. The three groups are
    /// steered via forced tuning profiles, exactly how the probe forces
    /// engines during its own measurement.
    #[test]
    fn every_dispatch_path_is_bit_identical_to_reference(
        world in 1usize..=10,
        len in 1usize..=300,
        seed in 0u64..1_000_000_000,
    ) {
        let members: Vec<WorkerId> = (0..world as u32).map(WorkerId).collect();
        // Two GPUs per socket, so even small worlds span several
        // locality domains and genuinely exercise group planning.
        let topo = CommTopology::new(Placement::linear(ClusterSpec::new(8, 2, 2, 1).build()));
        let flat = CommGroup::with_tuning(
            members.iter().copied(),
            len,
            TuningProfile { flat_max_len: usize::MAX, hier_min_world: u32::MAX },
            None,
        );
        let chunked = CommGroup::with_tuning(
            members.iter().copied(),
            len,
            TuningProfile { flat_max_len: 0, hier_min_world: u32::MAX },
            None,
        );
        let hier = CommGroup::with_tuning(
            members.iter().copied(),
            len,
            TuningProfile { flat_max_len: 0, hier_min_world: 2 },
            Some(topo),
        );
        prop_assert_eq!(flat.planned_path(), ReducePath::Flat);
        if world > 1 {
            prop_assert_eq!(chunked.planned_path(), ReducePath::Chunked);
        }
        if world >= 3 {
            // ≥ 3 linear ranks at 2 GPUs/socket span ≥ 2 domains.
            prop_assert_eq!(hier.planned_path(), ReducePath::Hier);
        }

        let mut gen = F32Gen(seed | 1);
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|_| (0..len).map(|_| gen.next_f32()).collect())
            .collect();
        let expect: Vec<u32> = reference_sum(&inputs)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let yields: Vec<u64> = (0..world).map(|_| gen.next_u64() % 4).collect();

        for (name, group) in [("flat", &flat), ("chunked", &chunked), ("hier", &hier)] {
            let results: Vec<Vec<u32>> = thread::scope(|s| {
                let handles: Vec<_> = (0..world)
                    .map(|w| {
                        let input = &inputs[w];
                        let n_yields = yields[w];
                        s.spawn(move || {
                            for _ in 0..n_yields {
                                thread::yield_now();
                            }
                            match group.allreduce(WorkerId(w as u32), input) {
                                AllreduceOutcome::Sum { sum, .. } => {
                                    sum.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
                                }
                                other => panic!("unexpected outcome {other:?}"),
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("allreduce thread"))
                    .collect()
            });
            for (w, got) in results.iter().enumerate() {
                prop_assert_eq!(
                    got,
                    &expect,
                    "path {} worker {} diverged (world={}, len={})",
                    name,
                    w,
                    world,
                    len
                );
            }
        }
    }

    /// A membership change mid-round on the hierarchical path is safe:
    /// when a straggler is evicted while every other worker is already
    /// blocked in the round, the round re-plans its socket groups over
    /// the survivors and completes with bits identical to the reference
    /// over the survivors' inputs — and the group remains usable for a
    /// clean full round after a reconfigure.
    #[test]
    fn hier_round_survives_mid_round_eviction(
        world in 3usize..=10,
        len in 2usize..=300,
        seed in 0u64..1_000_000_000,
    ) {
        let members: Vec<WorkerId> = (0..world as u32).map(WorkerId).collect();
        let topo = CommTopology::new(Placement::linear(ClusterSpec::new(8, 2, 2, 1).build()));
        let group = CommGroup::with_tuning(
            members.iter().copied(),
            len,
            TuningProfile { flat_max_len: 0, hier_min_world: 2 },
            Some(topo),
        );
        prop_assert_eq!(group.planned_path(), ReducePath::Hier);

        let mut gen = F32Gen(seed | 1);
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|_| (0..len).map(|_| gen.next_f32()).collect())
            .collect();
        // Worker 0 never contributes; the survivors' reference excludes it.
        let expect: Vec<u32> = reference_sum(&inputs[1..])
            .iter()
            .map(|v| v.to_bits())
            .collect();

        let results: Vec<Vec<u32>> = thread::scope(|s| {
            let handles: Vec<_> = (1..world)
                .map(|w| {
                    let group = &group;
                    let input = &inputs[w];
                    s.spawn(move || match group.allreduce(WorkerId(w as u32), input) {
                        AllreduceOutcome::Sum { sum, world: n } => {
                            assert_eq!(n as usize, world - 1, "wrong captured world");
                            sum.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
                        }
                        other => panic!("unexpected outcome {other:?}"),
                    })
                })
                .collect();
            // Wait for every survivor to be blocked in the round, then
            // evict the straggler mid-round: the publish that follows
            // must re-plan the hierarchy for the shrunken membership.
            while group.pending_contributions() < world - 1 {
                thread::yield_now();
            }
            assert!(group.evict(WorkerId(0)), "worker 0 was a member");
            handles
                .into_iter()
                .map(|h| h.join().expect("allreduce thread"))
                .collect()
        });
        for (i, got) in results.iter().enumerate() {
            prop_assert_eq!(
                got,
                &expect,
                "survivor {} diverged after mid-round eviction (world={}, len={})",
                i + 1,
                world,
                len
            );
        }

        // The group stays serviceable: re-admit worker 0, drop the top
        // worker, and run a clean full round on the new membership.
        let new_world = world - 1;
        group.reconfigure((0..new_world as u32).map(WorkerId));
        let inputs: Vec<Vec<f32>> = (0..new_world)
            .map(|_| (0..len).map(|_| gen.next_f32()).collect())
            .collect();
        let expect: Vec<u32> = reference_sum(&inputs)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let results: Vec<Vec<u32>> = thread::scope(|s| {
            let handles: Vec<_> = (0..new_world)
                .map(|w| {
                    let group = &group;
                    let input = &inputs[w];
                    s.spawn(move || match group.allreduce(WorkerId(w as u32), input) {
                        AllreduceOutcome::Sum { sum, .. } => {
                            sum.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
                        }
                        other => panic!("unexpected outcome {other:?}"),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("allreduce thread"))
                .collect()
        });
        for (w, got) in results.iter().enumerate() {
            prop_assert_eq!(
                got,
                &expect,
                "worker {} diverged after reconfigure (world={}, len={})",
                w,
                new_world,
                len
            );
        }
    }
}
