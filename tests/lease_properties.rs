//! Property-based tests for the AM lease (the liveness primitive behind
//! watchdog-driven agent-master failover, §V-D).
//!
//! The invariants the runtime's correctness rests on:
//!
//! - a lease is never simultaneously alive and expired at one instant;
//! - expiry is monotone in the refresh time: refreshing *later* never
//!   makes the lease expire *earlier*;
//! - `keep_alive` succeeds exactly when the lease is still alive, and a
//!   successful refresh extends expiry to `refresh + ttl`.

use proptest::prelude::*;

use elan::core::lease::{LeaseManager, LeaseState};
use elan::sim::{SimDuration, SimTime};

fn t(nanos: u64) -> SimTime {
    SimTime::from_nanos(nanos)
}

proptest! {
    /// At any probe instant, the lease is in exactly one of {Alive,
    /// Expired} — never both views at once, and the boundary is exact:
    /// Alive strictly before `grant + ttl`, Expired from it on.
    #[test]
    fn never_alive_and_expired_at_once(
        ttl in 1u64..10_000_000,
        granted_at in 0u64..10_000_000,
        probe_offsets in prop::collection::vec(0u64..20_000_000, 1..20),
    ) {
        let mut mgr = LeaseManager::new(SimDuration::from_nanos(ttl));
        let id = mgr.grant(t(granted_at));
        for &off in &probe_offsets {
            let now = t(granted_at + off);
            let state = mgr.state(id, now).expect("granted lease is known");
            let alive = matches!(state, LeaseState::Alive { .. });
            let expired = matches!(state, LeaseState::Expired { .. });
            prop_assert!(alive ^ expired, "lease is both or neither at {now:?}");
            // The boundary itself is deterministic.
            prop_assert_eq!(alive, off < ttl, "wrong side of the ttl boundary");
            match state {
                LeaseState::Alive { expires_at } =>
                    prop_assert_eq!(expires_at, t(granted_at + ttl)),
                LeaseState::Expired { expired_at } =>
                    prop_assert_eq!(expired_at, t(granted_at + ttl)),
            }
        }
    }

    /// Expiry is monotone in refresh time: for two refresh instants
    /// `a <= b` (both while alive), the expiry after refreshing at `b` is
    /// `>=` the expiry after refreshing at `a`.
    #[test]
    fn expiry_is_monotone_in_refresh_time(
        ttl in 1u64..10_000_000,
        granted_at in 0u64..10_000_000,
        raw_a in 0u64..10_000_000,
        raw_b in 0u64..10_000_000,
    ) {
        // Keep both refreshes inside the alive window, ordered a <= b.
        let (offset_a, offset_b) = ((raw_a % ttl).min(raw_b % ttl), (raw_a % ttl).max(raw_b % ttl));

        let expiry_after = |off: u64| -> SimTime {
            let mut mgr = LeaseManager::new(SimDuration::from_nanos(ttl));
            let id = mgr.grant(t(granted_at));
            mgr.keep_alive(id, t(granted_at + off)).expect("refresh while alive");
            match mgr.state(id, t(granted_at + off)).unwrap() {
                LeaseState::Alive { expires_at } => expires_at,
                LeaseState::Expired { .. } => unreachable!("just refreshed"),
            }
        };
        let ea = expiry_after(offset_a);
        let eb = expiry_after(offset_b);
        prop_assert!(eb >= ea, "later refresh expired earlier: {eb:?} < {ea:?}");
        // And the refresh is exact: expiry == refresh + ttl.
        prop_assert_eq!(ea, t(granted_at + offset_a + ttl));
        prop_assert_eq!(eb, t(granted_at + offset_b + ttl));
    }

    /// `keep_alive` succeeds iff the lease is alive at that instant, and
    /// a chain of in-window refreshes keeps the lease alive indefinitely
    /// while a single missed window kills it for good.
    #[test]
    fn keep_alive_agrees_with_state(
        ttl in 1u64..1_000_000,
        granted_at in 0u64..1_000_000,
        advances in prop::collection::vec(0u64..2_000_000, 1..30),
        refresh_bits in prop::collection::vec(prop::bool::ANY, 30..31),
    ) {
        let mut mgr = LeaseManager::new(SimDuration::from_nanos(ttl));
        let id = mgr.grant(t(granted_at));
        let mut now = granted_at;
        for (i, &advance) in advances.iter().enumerate() {
            let refresh = refresh_bits[i];
            now += advance;
            let alive_before =
                matches!(mgr.state(id, t(now)), Some(LeaseState::Alive { .. }));
            if refresh {
                let ok = mgr.keep_alive(id, t(now)).is_ok();
                prop_assert_eq!(
                    ok, alive_before,
                    "keep_alive result disagrees with state at {now}"
                );
            }
        }
    }

    /// Revocation is terminal: a revoked lease has no state and refuses
    /// refreshes, at every later instant.
    #[test]
    fn revoked_leases_stay_dead(
        ttl in 1u64..1_000_000,
        granted_at in 0u64..1_000_000,
        probe in 0u64..2_000_000,
    ) {
        let mut mgr = LeaseManager::new(SimDuration::from_nanos(ttl));
        let id = mgr.grant(t(granted_at));
        prop_assert!(mgr.revoke(id));
        prop_assert!(!mgr.revoke(id), "double revoke must be a no-op");
        prop_assert!(mgr.state(id, t(granted_at + probe)).is_none());
        prop_assert!(mgr.keep_alive(id, t(granted_at + probe)).is_err());
    }
}
