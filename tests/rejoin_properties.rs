//! Property-based tests for the `Rejoin` handshake's idempotency.
//!
//! The rejoin announce is client-driven: a restarted worker re-sends
//! `Rejoin` every heartbeat period until it holds state again, and the
//! chaos engine here *guarantees* duplication on top of that —
//! `duplicate(1.0)` copies every envelope and `delay` shuffles the
//! copies, so the AM provably sees the announce many times, out of
//! order, across arbitrary seeds. The property:
//!
//! - the worker is **admitted exactly once** (one `worker_rejoin` event),
//! - state is **transferred to it exactly once** (one `snapshot_applied`
//!   for the victim) — duplicated announces never double-issue a
//!   replication wave,
//! - and the run still converges to a consistent, full-strength job.
//!
//! Live runs spawn real threads, so the case count is deliberately
//! small; the seed reshuffles the duplicate/delay schedule, which is the
//! interesting degree of freedom. Each case rides its own
//! [`TimeSource::virtual_seeded`] clock and is wall-clock-free.

use proptest::prelude::*;

use elan::rt::{ChaosPolicy, ElasticRuntime, EventKind, RuntimeConfig, TimeSource};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    #[test]
    fn duplicated_rejoin_admits_exactly_once(seed in 0u64..1_000_000) {
        let mut cfg = RuntimeConfig::small(3);
        cfg.retry_max_attempts = 12;
        // Every message duplicated, a fifth of them delayed and thereby
        // reordered against their copies — the dedup filter and the AM's
        // rejoining-set idempotency both stay load-bearing all run.
        let chaos = ChaosPolicy::new(seed).duplicate(1.0).delay(0.20, 3);
        let mut rt = ElasticRuntime::builder()
            .config(cfg)
            .chaos(chaos)
            .time(TimeSource::virtual_seeded(seed))
            .start()
            .unwrap();
        rt.run_until_iteration(6);
        let victim = rt.members()[1];
        rt.crash_worker_at(victim, 10);
        rt.restart_worker(victim);
        rt.run_until_iteration(18);
        let report = rt.shutdown();

        let admissions = report
            .events
            .iter()
            .filter(|e| matches!(
                e.kind,
                EventKind::WorkerRejoin { worker, .. } if worker == victim
            ))
            .count();
        prop_assert_eq!(
            admissions, 1,
            "rejoin admitted {} times: {:?}", admissions, report.journal
        );
        let snapshots = report
            .events
            .iter()
            .filter(|e| matches!(
                e.kind,
                EventKind::SnapshotApplied { worker, .. } if worker == victim
            ))
            .count();
        prop_assert_eq!(
            snapshots, 1,
            "state streamed to the rejoiner {} times: {:?}", snapshots, report.journal
        );
        prop_assert_eq!(report.final_world_size, 3);
        prop_assert!(report.states_consistent(), "rejoin diverged");
    }
}
