//! Integration: the full adjustment pipeline across crates —
//! topology planning → cost models → Elan vs. baselines — asserting the
//! paper's headline comparisons (Fig. 15).

use elan::baselines::{Litz, ShutdownRestart};
use elan::core::{AdjustmentContext, AdjustmentRequest, ElanSystem, ElasticitySystem};
use elan::models::{perf::PerfModel, zoo};
use elan::topology::{BandwidthModel, ClusterSpec, Topology};

struct Fixtures {
    topology: Topology,
    bandwidth: BandwidthModel,
    perf: PerfModel,
}

fn fixtures() -> Fixtures {
    Fixtures {
        topology: ClusterSpec::paper_testbed().build(),
        bandwidth: BandwidthModel::paper_default(),
        perf: PerfModel::paper_default(),
    }
}

fn ctx<'a>(f: &'a Fixtures, model: &'a elan::models::ModelSpec) -> AdjustmentContext<'a> {
    AdjustmentContext {
        topology: &f.topology,
        bandwidth: &f.bandwidth,
        perf: &f.perf,
        model,
        total_batch: 512,
        coordination_interval: 10,
        seed: 42,
    }
}

#[test]
fn elan_pause_is_seconds_scale_everywhere() {
    // Fig. 15: ~1s adjustments across kinds, scales, and models.
    let f = fixtures();
    let elan = ElanSystem::new();
    for model in zoo::evaluation_models() {
        let c = ctx(&f, &model);
        for req in [
            AdjustmentRequest::contiguous(8, 16),
            AdjustmentRequest::contiguous(16, 32),
            AdjustmentRequest::contiguous(32, 64),
            AdjustmentRequest::contiguous(64, 32),
            AdjustmentRequest::contiguous(16, 8),
            AdjustmentRequest::migration(16, 16),
            AdjustmentRequest::migration(32, 32),
        ] {
            let pause = elan.adjust(&req, &c).pause.as_secs_f64();
            assert!(
                (0.1..4.0).contains(&pause),
                "{} {req}: pause {pause:.2}s",
                model.name
            );
        }
    }
}

#[test]
fn snr_scaling_band_matches_paper() {
    // Fig. 15: S&R is 10-80x slower on scaling in/out.
    let f = fixtures();
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();
    let mut ratios = Vec::new();
    for model in zoo::evaluation_models() {
        let c = ctx(&f, &model);
        for req in [
            AdjustmentRequest::contiguous(16, 32),
            AdjustmentRequest::contiguous(32, 64),
            AdjustmentRequest::contiguous(32, 16),
            AdjustmentRequest::contiguous(64, 32),
        ] {
            let r = snr.adjust(&req, &c).pause.as_secs_f64()
                / elan.adjust(&req, &c).pause.as_secs_f64();
            ratios.push(r);
        }
    }
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    assert!(min > 8.0, "weakest scaling advantage only {min:.1}x");
    assert!(max < 150.0, "strongest advantage implausible: {max:.1}x");
    assert!(
        ratios.iter().any(|r| *r > 30.0),
        "some configuration should show large (10-80x) gains"
    );
}

#[test]
fn snr_migration_band_matches_paper() {
    // Fig. 15: migration advantage is smaller (up to ~4x), because S&R
    // also benefits from asynchronous start there.
    let f = fixtures();
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();
    for model in zoo::evaluation_models() {
        let c = ctx(&f, &model);
        let req = AdjustmentRequest::migration(16, 16);
        let r =
            snr.adjust(&req, &c).pause.as_secs_f64() / elan.adjust(&req, &c).pause.as_secs_f64();
        assert!(
            (1.0..12.0).contains(&r),
            "{}: migration ratio {r:.1}",
            model.name
        );
    }
}

#[test]
fn litz_throughput_is_far_below_elan() {
    // Fig. 16.
    let f = fixtures();
    for model in zoo::evaluation_models() {
        let c = ctx(&f, &model);
        let r2 = Litz::litz2().relative_throughput(&c, 16);
        let r4 = Litz::litz4().relative_throughput(&c, 16);
        assert!(r2 < 0.75, "{}: Litz-2 rel {r2:.2}", model.name);
        assert!(
            r4 <= r2 * 1.05,
            "{}: Litz-4 should not beat Litz-2",
            model.name
        );
    }
    // Transformer: reduction exceeds 90%.
    let transformer = zoo::transformer();
    let c = ctx(&f, &transformer);
    assert!(Litz::litz4().relative_throughput(&c, 16) < 0.10);
}

#[test]
fn overheads_are_negligible_for_elan_and_snr_but_not_litz() {
    // Fig. 14 vs Fig. 16, as overhead fractions.
    let f = fixtures();
    let model = zoo::resnet50();
    let c = ctx(&f, &model);
    let elan = ElanSystem::new().runtime_overhead(&c, 32);
    let snr = ShutdownRestart::new().runtime_overhead(&c, 32);
    let litz = Litz::litz2().runtime_overhead(&c, 32);
    assert!(elan < 0.003);
    assert_eq!(elan, snr);
    assert!(litz > 0.3);
}

#[test]
fn replication_dominates_scale_out_pause_for_large_models() {
    // VGG-19's 1.1 GiB payload makes replication the dominant pause
    // component, validating the topology-aware transfer path matters.
    let f = fixtures();
    let vgg = zoo::vgg19();
    let c = ctx(&f, &vgg);
    let sys = ElanSystem::new();
    let req = AdjustmentRequest::contiguous(16, 32);
    let repl = sys.replication_time(&req, &c);
    let state = sys.state_adjustment_time(32);
    assert!(repl > state, "replication {repl} vs state adj {state}");
}
