//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;

use elan::core::coordination::{run_coordination, CoordinationConfig};
use elan::core::data::{ChunkSampler, SerialSampler};
use elan::core::elasticity::AdjustmentRequest;
use elan::core::scaling::{hybrid_scale, ProgressiveLrRamp, ScalingMode};
use elan::sim::{Scheduler, SimDuration, SimTime};
use elan::topology::{ClusterSpec, GpuId, LinkLevel, ReplicationPlanner};

proptest! {
    /// Every joining worker is served exactly once, waves partition the
    /// transfers, and no wave contains a conflicting pair.
    #[test]
    fn replication_plan_is_sound(
        existing_mask in 1u64..(1 << 24),
        joining_mask in 1u64..(1 << 24),
    ) {
        let topo = ClusterSpec::paper_testbed().build();
        let existing: Vec<GpuId> =
            (0..24).filter(|i| existing_mask & (1 << i) != 0).map(GpuId).collect();
        let joining: Vec<GpuId> = (24..48)
            .filter(|i| joining_mask & (1 << (i - 24)) != 0)
            .map(GpuId)
            .collect();
        prop_assume!(!existing.is_empty() && !joining.is_empty());

        let plan = ReplicationPlanner::new(&topo).plan(&existing, &joining).unwrap();

        // Exactly one transfer per joining worker, sourced from existing.
        let mut dsts: Vec<GpuId> = plan.transfers().iter().map(|t| t.dst).collect();
        dsts.sort_unstable();
        let mut expect = joining.clone();
        expect.sort_unstable();
        prop_assert_eq!(dsts, expect);
        for t in plan.transfers() {
            prop_assert!(existing.contains(&t.src));
            // Source selection is level-optimal: no existing worker sits
            // on a strictly nearer link.
            let best = existing
                .iter()
                .map(|&s| topo.link_level(s, t.dst))
                .min()
                .unwrap();
            prop_assert_eq!(t.level, best);
        }

        // Waves partition the transfer set.
        let mut covered: Vec<usize> = plan.waves().iter().flatten().copied().collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..plan.transfers().len()).collect::<Vec<_>>());

        // No conflicting pair shares a wave (re-check independently).
        for wave in plan.waves() {
            for (i, &a) in wave.iter().enumerate() {
                for &b in &wave[i + 1..] {
                    let (ta, tb) = (&plan.transfers()[a], &plan.transfers()[b]);
                    prop_assert!(ta.src != tb.src && ta.dst != tb.dst);
                    if ta.level == LinkLevel::L3 && tb.level == LinkLevel::L3 {
                        prop_assert!(topo.node_of(ta.src) != topo.node_of(tb.src));
                    }
                    if ta.level == LinkLevel::L4 && tb.level == LinkLevel::L4 {
                        prop_assert!(topo.node_of(ta.src) != topo.node_of(tb.src));
                        prop_assert!(topo.node_of(ta.dst) != topo.node_of(tb.dst));
                    }
                }
            }
        }
    }

    /// Hybrid scaling returns a batch within `[TBS, TBS * ceil(N'/N)]`,
    /// and its learning-rate factor always equals the batch growth.
    #[test]
    fn hybrid_scaling_bounds(
        tbs in 32u32..4096,
        n_before in 1u32..64,
        grow in 1u32..8,
        opt_divisor in 8u32..128,
    ) {
        let n_after = n_before * grow;
        let d = hybrid_scale(tbs, n_before, n_after, |b| (b / opt_divisor).max(1));
        prop_assert!(d.new_total_batch >= tbs);
        let ratio = n_after as f64 / n_before as f64;
        prop_assert!(d.new_total_batch as f64 <= tbs as f64 * ratio + 1.0);
        let lr_growth = d.new_total_batch as f64 / tbs as f64;
        prop_assert!((d.lr_factor - lr_growth).abs() < 1e-9);
        match d.mode {
            ScalingMode::Strong => prop_assert_eq!(d.new_total_batch, tbs),
            ScalingMode::Weak { factor } => prop_assert!(factor > 1.0),
        }
    }

    /// The progressive LR ramp is monotone and clamped to its target.
    #[test]
    fn lr_ramp_monotone(
        lr0 in 0.001f64..1.0,
        k in 1.0f64..16.0,
        t0 in 0u64..10_000,
        ramp in 1u32..10_000,
    ) {
        let r = ProgressiveLrRamp::new(lr0, k, t0, ramp);
        let mut prev = 0.0;
        for t in (0..t0 + ramp as u64 + 100).step_by((ramp as usize / 7).max(1)) {
            let lr = r.lr_at(t);
            prop_assert!(lr >= prev - 1e-12);
            prop_assert!(lr <= lr0 * k + 1e-12);
            prev = lr;
        }
        prop_assert!((r.lr_at(t0 + ramp as u64) - lr0 * k).abs() < 1e-9);
    }

    /// Serial and chunk samplers serve exactly the same sample set per
    /// epoch, across arbitrary repartition points.
    #[test]
    fn samplers_conserve_samples(
        dataset in 50u64..2000,
        chunk in 1u64..64,
        workers in 1u32..12,
        new_workers in 1u32..12,
        consumed_batches in 0u32..10,
    ) {
        // Chunk sampler: consume a bit, repartition, then drain.
        let mut cs = ChunkSampler::new(dataset, chunk, workers);
        let mut seen = Vec::new();
        for w in 0..workers {
            for _ in 0..consumed_batches {
                seen.extend(cs.next_for_worker(w, 3));
            }
        }
        cs.repartition(new_workers);
        for w in 0..new_workers {
            loop {
                let got = cs.next_for_worker(w, 64);
                if got.is_empty() { break; }
                seen.extend(got);
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..dataset).collect::<Vec<_>>());

        // Serial sampler: cursor restore mid-epoch conserves the epoch.
        let mut ss = SerialSampler::new(dataset);
        let mut serial_seen = Vec::new();
        for _ in 0..consumed_batches {
            if ss.epoch() > 0 { break; }
            serial_seen.extend(ss.next_batch(7));
        }
        let restored = SerialSampler::restore(dataset, ss.cursor(), ss.epoch());
        prop_assert_eq!(restored, ss);
    }

    /// The event queue pops in non-decreasing time order with FIFO ties.
    #[test]
    fn scheduler_orders_events(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = s.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO tie-break violated");
                }
            }
            last = Some((at, idx));
        }
    }

    /// Duration arithmetic: associativity of sums and scaling bounds.
    #[test]
    fn duration_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        prop_assert_eq!(da.max(db).min(da), da.min(db).max(da));
    }
}

proptest! {
    /// Scheduling policies never oversubscribe the cluster, never admit a
    /// job twice, and elastic allocations respect min/max bounds.
    #[test]
    fn policies_respect_resource_bounds(
        total in 8u32..200,
        n_pending in 0usize..12,
        n_running in 0usize..12,
        seed in 0u64..10_000,
    ) {
        use elan::sched::policy::{
            schedule, Action, GainOracle, PendingView, PolicyKind, RunningView,
        };
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        struct O;
        impl GainOracle for O {
            fn throughput(&self, _j: u32, w: u32) -> f64 {
                w as f64 / (1.0 + 0.02 * w as f64)
            }
            fn remaining(&self, _j: u32) -> f64 {
                500.0
            }
        }

        let pending: Vec<PendingView> = (0..n_pending)
            .map(|i| {
                let min = rng.gen_range(1..=4u32);
                let req = min + rng.gen_range(0..8u32);
                PendingView {
                    id: i as u32,
                    req_res: req,
                    min_res: min,
                    max_res: req + rng.gen_range(0..16u32),
                    est_duration: rng.gen_range(10.0..5000.0),
                }
            })
            .collect();
        let mut used = 0u32;
        let running: Vec<RunningView> = (0..n_running)
            .map(|i| {
                let min = rng.gen_range(1..=4u32);
                let alloc = min + rng.gen_range(0..6u32);
                used += alloc;
                RunningView {
                    id: 100 + i as u32,
                    allocation: alloc,
                    min_res: min,
                    max_res: alloc + rng.gen_range(0..16u32),
                    est_remaining: rng.gen_range(10.0..5000.0),
                    in_transition: rng.gen_bool(0.2),
                }
            })
            .collect();
        prop_assume!(used <= total);

        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Backfill,
            PolicyKind::ElasticFifo,
            PolicyKind::ElasticBackfill,
        ] {
            let actions = schedule(kind, total, &pending, &running, &O);
            // Apply actions and verify the invariants.
            let mut allocations: std::collections::BTreeMap<u32, u32> = running
                .iter()
                .map(|r| (r.id, r.allocation))
                .collect();
            let mut admitted = std::collections::BTreeSet::new();
            for action in &actions {
                match *action {
                    Action::Admit { job, workers } => {
                        prop_assert!(admitted.insert(job), "{kind:?} admitted {job} twice");
                        let p = pending.iter().find(|p| p.id == job).expect("pending job");
                        if kind.is_elastic() {
                            prop_assert!(workers >= p.min_res && workers <= p.max_res);
                        } else {
                            prop_assert_eq!(workers, p.req_res);
                        }
                        allocations.insert(job, workers);
                    }
                    Action::Reallocate { job, workers } => {
                        let r = running.iter().find(|r| r.id == job).expect("running job");
                        prop_assert!(!r.in_transition, "{kind:?} touched a transitioning job");
                        prop_assert!(workers >= r.min_res && workers <= r.max_res);
                        allocations.insert(job, workers);
                    }
                }
            }
            let sum: u32 = allocations.values().sum();
            prop_assert!(sum <= total, "{kind:?} oversubscribed: {sum}/{total}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Protocol liveness: across worker counts, adjustment shapes, and
    /// message-loss rates, the coordination protocol always completes the
    /// adjustment and every staying worker finishes all rounds.
    #[test]
    fn coordination_protocol_is_live_under_loss(
        n_existing in 2u32..8,
        n_delta in 1u32..6,
        grow in proptest::bool::ANY,
        loss_centi in 0u32..25,
        seed in 0u64..1000,
    ) {
        let n_after = if grow {
            n_existing + n_delta
        } else {
            (n_existing.saturating_sub(n_delta)).max(1)
        };
        prop_assume!(n_after != n_existing);
        let mut cfg = CoordinationConfig::baseline(n_existing, 20);
        cfg.request = Some(AdjustmentRequest::contiguous(n_existing, n_after));
        cfg.loss_prob = loss_centi as f64 / 100.0;
        cfg.seed = seed;
        let out = run_coordination(&cfg);
        prop_assert!(out.am.adjustment_completed_at.is_some());
        // Stayers complete every round.
        for g in 0..n_existing.min(n_after) {
            prop_assert_eq!(out.workers[&GpuId(g)].rounds_completed, 20);
        }
        // Joiners joined; leavers left.
        if n_after > n_existing {
            for g in n_existing..n_after {
                prop_assert!(out.workers[&GpuId(g)].joined);
            }
        } else {
            for g in n_after..n_existing {
                prop_assert!(out.workers[&GpuId(g)].left);
            }
        }
    }
}
