//! Integration: the chaos-hardened live runtime (§V-D fault tolerance).
//!
//! Five failure regimes, end to end:
//!
//! 1. A **lossy bus** — every control-plane edge drops, delays, and
//!    duplicates messages, and the reliable-messaging layer (msg ids,
//!    acks, resend-on-timeout, dedup) must mask all of it while the job
//!    scales out live.
//! 2. An **AM crash mid-adjustment** — the agent-master dies between
//!    persisting its durable record and acting on it; the watchdog must
//!    elect a replacement that recovers the half-done adjustment from the
//!    replicated store and completes it.
//! 3. A **worker crash** — a worker silently stops heartbeating and
//!    responding; the AM's failure detector must notice and execute a
//!    failure-driven scale-in (evict from the allreduce group, rebuild the
//!    comm group, repartition) without deadlocking the survivors.
//! 4. A **network partition isolating the AM** — the old AM stays alive
//!    but unreachable; a successor is elected at a higher fencing term,
//!    and the old AM's first post-partition action must bounce off the
//!    store (`StaleTermRejected`) instead of split-braining the job.
//! 5. A **worker crash–restart–rejoin** — the crashed worker comes back,
//!    runs the `Rejoin` handshake, re-fetches state over the chunked
//!    replication path, and resumes *bit-identically* to a run that never
//!    crashed.
//!
//! Since the observability overhaul these tests assert on the **event
//! journal**: the exact sequence the runtime *says* happened (adjustment
//! requested → phases → completed, chaos injections, resends, elections,
//! dead-worker declarations) rather than polling runtime state and
//! inferring. The journal and trace spans ride the shutdown report, so
//! none of the assertions race shutdown.

//! Since the deterministic-time overhaul the whole suite runs on a
//! [`TimeSource::virtual_seeded`] clock: every heartbeat period, lease
//! TTL, retry timeout and watchdog poll elapses on *virtual* nanoseconds
//! that advance only when all runtime threads are quiescent, so a
//! scenario that "waits" tens of virtual seconds completes in
//! milliseconds of wall time — and replays bit-identically per seed.

use std::time::Duration;

use elan::core::obs::AdjustmentPhase;
use elan::core::protocol::EpochPhase;
use elan::core::state::WorkerId;
use elan::rt::{
    check_epoch_safety, check_term_safety, shard_checksum, ChaosPolicy, CrashPoint, ElasticRuntime,
    EndpointId, EpochConfig, EventKind, RuntimeConfig, ShutdownReport, TimeSource, TraceKind,
};

/// Writes the run's retained event journal to
/// `target/chaos-journals/<name>.json` (one JSON object per line) so CI
/// can upload the forensic trail as an artifact when the suite fails.
/// Best-effort: a read-only target dir must not fail the test itself.
fn dump_journal(name: &str, report: &ShutdownReport) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("chaos-journals");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let lines: Vec<String> = report.events.iter().map(|e| e.to_json()).collect();
    let _ = std::fs::write(dir.join(format!("{name}.json")), lines.join("\n") + "\n");
}

/// The issue's canonical chaos mix: 20% drop, 20% delay (plus a little
/// duplication so the dedup path is provably exercised every run).
fn lossy(seed: u64) -> ChaosPolicy {
    ChaosPolicy::new(seed)
        .drop(0.20)
        .delay(0.20, 3)
        .duplicate(0.10)
}

/// A config whose AM retry budget keeps the probability of a *spurious*
/// dead-worker declaration (all attempts dropped both ways) negligible at
/// 20% loss: 0.36^12 ≈ 5e-6 per tracked message.
fn lossy_cfg(n: u32) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::small(n);
    cfg.retry_max_attempts = 12;
    cfg
}

/// Asserts the journal recorded a complete 5-phase pipeline for `kind`:
/// requested, every phase opened *and* closed in order, then completed —
/// the event-sequence formulation of "the adjustment worked".
fn assert_pipeline_events(report: &ShutdownReport, kind: TraceKind) {
    let trace = report
        .traces
        .iter()
        .find(|t| t.kind == kind && t.completed)
        .unwrap_or_else(|| panic!("no completed {kind:?} trace: {:?}", report.traces));
    assert!(trace.is_well_formed(), "trace not well-formed: {trace:?}");
    let id = trace.id;
    // Project this trace's pipeline events out of the journal, in order.
    let mut seq: Vec<String> = Vec::new();
    for e in &report.events {
        match &e.kind {
            EventKind::AdjustmentRequested { trace, .. } if *trace == id => {
                seq.push("requested".into());
            }
            EventKind::PhaseStarted { trace, phase } if *trace == id => {
                seq.push(format!("start:{}", phase.name()));
            }
            EventKind::PhaseEnded { trace, phase } if *trace == id => {
                seq.push(format!("end:{}", phase.name()));
            }
            EventKind::AdjustmentCompleted { trace, .. } if *trace == id => {
                seq.push("completed".into());
            }
            _ => {}
        }
    }
    assert_eq!(
        seq.first().map(String::as_str),
        Some("requested"),
        "{seq:?}"
    );
    assert_eq!(seq.last().map(String::as_str), Some("completed"), "{seq:?}");
    for phase in [
        AdjustmentPhase::Request,
        AdjustmentPhase::Report,
        AdjustmentPhase::Coordinate,
        AdjustmentPhase::Replicate,
        AdjustmentPhase::Adjust,
    ] {
        let start = format!("start:{}", phase.name());
        let end = format!("end:{}", phase.name());
        let si = seq.iter().position(|s| *s == start);
        let ei = seq.iter().rposition(|s| *s == end);
        match (si, ei) {
            (Some(s), Some(e)) => assert!(s <= e, "phase {phase:?} ends before it starts: {seq:?}"),
            _ => panic!("phase {phase:?} missing from sequence {seq:?}"),
        }
    }
}

#[test]
fn scale_out_completes_on_a_lossy_bus() {
    let mut rt = ElasticRuntime::builder()
        .config(lossy_cfg(2))
        .chaos(lossy(42))
        .time(TimeSource::virtual_seeded(42))
        .start()
        .unwrap();
    rt.run_until_iteration(10);
    rt.scale_out(2);
    assert_eq!(rt.members().len(), 4, "scale-out must complete");
    rt.run_until_iteration(30);
    let report = rt.shutdown();

    assert_eq!(report.final_world_size, 4);
    assert!(report.states_consistent(), "replicas diverged: {report:?}");
    assert_eq!(report.adjustments, 1);

    // The journal must tell the full story of the adjustment...
    assert_pipeline_events(&report, TraceKind::ScaleOut);
    // ...and of the chaos the reliability layer masked — not a vacuous
    // pass. Fault injection, resends, and dedup are all *recorded events*.
    let j = &report.journal;
    assert!(
        j.count("chaos_injected") > 0,
        "chaos injected nothing: {j:?}"
    );
    assert!(
        j.count("message_resent") > 0,
        "drops never forced a resend: {j:?}"
    );
    assert!(
        j.count("duplicate_suppressed") > 0,
        "dup'd deliveries never hit the dedup filter: {j:?}"
    );
    // Joiners streamed and applied snapshots through the replication path.
    assert!(j.count("replication_planned") >= 1, "{j:?}");
    assert!(
        j.count("snapshot_applied") >= 2,
        "two joiners must apply: {j:?}"
    );
    // The legacy counters still agree with the journal's view.
    let chaos = report.chaos.expect("job ran on a chaotic bus");
    assert!(chaos.dropped > 0, "chaos dropped nothing: {chaos:?}");
    assert!(chaos.delayed > 0, "chaos delayed nothing: {chaos:?}");
    assert!(chaos.duplicated > 0, "chaos duplicated nothing: {chaos:?}");
    assert!(report.metrics.resends > 0, "{:?}", report.metrics);
    assert!(report.metrics.duplicates > 0, "{:?}", report.metrics);
    // Give-ups can only stem from departed workers (a dropped ack on a
    // final `Leave` makes the AM — correctly — presume the peer dead);
    // they must never have cost the job a live member.
    assert!(
        report.metrics.give_ups <= u64::from(report.final_world_size),
        "unexpected give-ups: {:?}",
        report.metrics
    );
}

/// One seeded chaos scenario under virtual time; returns the full event
/// journal rendered line-by-line (timestamps included).
fn chaos_scenario_journal(seed: u64) -> Vec<String> {
    let mut rt = ElasticRuntime::builder()
        .config(lossy_cfg(2))
        .chaos(lossy(seed))
        .time(TimeSource::virtual_seeded(seed))
        .start()
        .unwrap();
    rt.run_until_iteration(8);
    rt.scale_out(1);
    assert_eq!(rt.members().len(), 3);
    rt.run_until_iteration(16);
    let report = rt.shutdown();
    assert!(report.states_consistent());
    assert_pipeline_events(&report, TraceKind::ScaleOut);
    report.events.iter().map(|e| format!("{e:?}")).collect()
}

#[test]
fn lossy_bus_is_deterministic_per_seed() {
    // Under the virtual clock determinism is total: the same seed drives
    // the same thread schedule, the same message order, the same chaos
    // fates — so two in-process runs must produce *byte-identical*
    // journals, virtual timestamps and all.
    let a = chaos_scenario_journal(7);
    let b = chaos_scenario_journal(7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, divergent journals");
}

#[test]
fn different_seeds_reach_the_same_outcome_by_different_paths() {
    // Chaos decisions and the schedule differ per seed (each run is
    // internally asserted consistent); at least one pair of seeds should
    // actually exhibit a different history, or the sweep is vacuous.
    let journals: Vec<Vec<String>> = [7u64, 8, 9]
        .iter()
        .map(|&s| chaos_scenario_journal(s))
        .collect();
    assert!(
        journals.iter().any(|j| j != &journals[0]),
        "three seeds produced one identical history"
    );
}

#[test]
fn am_crash_mid_adjustment_is_recovered_by_watchdog() {
    let mut rt = ElasticRuntime::builder()
        .workers(2)
        .time(TimeSource::virtual_seeded(1))
        .start()
        .unwrap();
    rt.run_until_iteration(10);

    // The AM will die right after persisting `Transferring` — before any
    // transfer order goes out. The watchdog must elect a replacement that
    // finds the half-done adjustment in the store and finishes it.
    rt.arm_am_crash(CrashPoint::OnAdjustStart);
    rt.scale_out(2);
    assert_eq!(rt.members().len(), 4, "recovered AM must finish the op");

    rt.run_until_iteration(30);
    let report = rt.shutdown();
    assert_eq!(report.final_world_size, 4);
    assert!(report.states_consistent(), "recovery diverged: {report:?}");
    // The election is itself a journal event, and the trace the dead AM
    // opened must still close well-formed under its replacement.
    assert!(
        report.journal.count("am_elected") >= 1,
        "watchdog never fired: {:?}",
        report.journal
    );
    assert!(report.metrics.am_recoveries >= 1);
    assert_pipeline_events(&report, TraceKind::ScaleOut);
}

#[test]
fn am_crash_before_resume_is_recovered_by_watchdog() {
    let mut rt = ElasticRuntime::builder()
        .workers(2)
        .time(TimeSource::virtual_seeded(2))
        .start()
        .unwrap();
    rt.run_until_iteration(10);

    // Later crash point: state transfers are done and `Resuming` is
    // persisted, but the resume wave never goes out. The replacement must
    // re-establish the boundary (via AmReset) and replay the resume.
    rt.arm_am_crash(CrashPoint::OnResume);
    rt.scale_out(1);
    assert_eq!(rt.members().len(), 3);

    rt.run_until_iteration(30);
    let report = rt.shutdown();
    assert_eq!(report.final_world_size, 3);
    assert!(report.states_consistent(), "recovery diverged: {report:?}");
    assert!(report.journal.count("am_elected") >= 1);
    assert!(report.metrics.am_recoveries >= 1);
    assert_pipeline_events(&report, TraceKind::ScaleOut);
}

#[test]
fn am_crash_under_lossy_bus_still_recovers() {
    // The acceptance gauntlet: kill the AM mid-adjustment *while* the bus
    // is dropping a fifth of all traffic.
    let mut rt = ElasticRuntime::builder()
        .config(lossy_cfg(2))
        .chaos(lossy(11))
        .time(TimeSource::virtual_seeded(11))
        .start()
        .unwrap();
    rt.run_until_iteration(8);
    rt.arm_am_crash(CrashPoint::OnAdjustStart);
    rt.scale_out(1);
    assert_eq!(rt.members().len(), 3);
    rt.run_until_iteration(20);
    let report = rt.shutdown();
    assert!(report.states_consistent(), "diverged: {report:?}");
    assert!(report.journal.count("am_elected") >= 1);
    assert!(report.journal.count("message_resent") > 0);
    assert!(report.metrics.am_recoveries >= 1);
    assert!(report.metrics.resends > 0);
    assert_pipeline_events(&report, TraceKind::ScaleOut);
}

#[test]
fn worker_crash_triggers_failure_scale_in() {
    let rt = ElasticRuntime::builder()
        .workers(3)
        .time(TimeSource::virtual_seeded(3))
        .start()
        .unwrap();
    rt.run_until_iteration(10);
    let victim = rt.members()[2];

    // The victim goes silent: no goodbye, no final telemetry. Detection
    // has to come from missed heartbeats (or resend give-ups at the AM).
    rt.crash_worker(victim);
    assert!(
        rt.wait_for_members(2, Duration::from_secs(20)),
        "AM never scaled the job in around the dead worker"
    );
    assert!(!rt.members().contains(&victim));

    // The survivors keep training — the eviction must have unblocked any
    // allreduce the victim was absent from.
    rt.run_until_iteration(30);
    let report = rt.shutdown();
    assert_eq!(report.final_world_size, 2);
    assert!(report.states_consistent(), "survivors diverged: {report:?}");
    // The journal names the victim and records the failure-driven
    // adjustment as a first-class 5-phase pipeline of its own.
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::WorkerDeclaredDead { worker, .. } if worker == victim
        )),
        "no worker_declared_dead event for {victim:?}"
    );
    assert_pipeline_events(&report, TraceKind::FailureScaleIn);
    assert!(
        report.metrics.failure_scale_ins >= 1,
        "failure path not taken: {:?}",
        report.metrics
    );
}

#[test]
fn worker_crash_during_lossy_run_is_survived() {
    let rt = ElasticRuntime::builder()
        .config(RuntimeConfig::small(3))
        .chaos(ChaosPolicy::new(23).drop(0.10).delay(0.10, 2))
        .time(TimeSource::virtual_seeded(23))
        .start()
        .unwrap();
    rt.run_until_iteration(8);
    let victim = rt.members()[0];
    rt.crash_worker(victim);
    assert!(
        rt.wait_for_members(2, Duration::from_secs(30)),
        "failure scale-in never completed under loss"
    );
    rt.run_until_iteration(20);
    let report = rt.shutdown();
    assert_eq!(report.final_world_size, 2);
    assert!(report.states_consistent());
    assert!(report.journal.count("worker_declared_dead") >= 1);
    assert!(report.metrics.failure_scale_ins >= 1);
    assert_pipeline_events(&report, TraceKind::FailureScaleIn);
}

#[test]
fn partitioned_am_is_fenced_and_the_adjustment_completes() {
    // The acceptance scenario for term fencing: cut the acting AM off
    // from *everyone* — workers, controller, and (by the isolated-AM
    // model) the replicated store — for longer than its lease. The
    // timeline inside the 500ms window is deterministic under the
    // virtual clock:
    //
    //   ~240ms  watchdog sees the lapsed lease, elects a successor,
    //           which CASes the fencing term up (term_bump #2);
    //   ~400ms  the *old* AM's failure detector fires (hb_timeout) on
    //           the silent workers; its persist-before-act probe hits
    //           the store, finds the higher term, journals
    //           `stale_term_rejected`, and abdicates without evicting
    //           anyone;
    //    500ms  the window heals; the controller's scale-out (re-issued
    //           at the app level all along) lands on the successor and
    //           completes under the new term.
    let mut rt = ElasticRuntime::builder()
        .config(RuntimeConfig::small(3))
        // No probabilistic fates: the policy exists purely so the chaos
        // engine is mounted and can script the partition window.
        .chaos(ChaosPolicy::new(17))
        .time(TimeSource::virtual_seeded(17))
        .start()
        .unwrap();
    rt.run_until_iteration(10);

    assert!(
        rt.partition(
            "am-isolated",
            vec![vec![EndpointId::Am]],
            Duration::from_millis(500),
        ),
        "partition scripting needs a chaos engine"
    );
    rt.scale_out(1);
    assert_eq!(rt.members().len(), 4, "adjustment must survive the cut");
    rt.run_until_iteration(30);
    let report = rt.shutdown();
    dump_journal("partitioned_am_is_fenced", &report);

    assert_eq!(report.final_world_size, 4);
    assert!(
        report.states_consistent(),
        "split brain diverged: {report:?}"
    );
    let j = &report.journal;
    assert!(
        j.count("partition_start") >= 1,
        "window never opened: {j:?}"
    );
    assert!(j.count("partition_heal") >= 1, "window never healed: {j:?}");
    assert!(j.count("am_elected") >= 1, "no successor elected: {j:?}");
    assert!(
        j.count("term_bump") >= 2,
        "successor never bumped the term: {j:?}"
    );
    assert!(
        j.count("stale_term_rejected") >= 1,
        "the old AM was never fenced: {j:?}"
    );
    // The adjustment's effects must carry the *new* term — the highest
    // bump in the journal, not the term the partitioned AM held.
    let max_term = report
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TermBump { term } => Some(term),
            _ => None,
        })
        .max()
        .expect("term_bump events exist");
    assert!(max_term >= 2);
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::BoundaryReleased { term, .. } if term == max_term
        )),
        "no boundary released under the new term"
    );
    // And the journal as a whole must replay clean through the safety
    // checker: ≤1 AM acting per term, no post-fence effects.
    let safety = check_term_safety(&report.events);
    assert!(safety.is_safe(), "{safety}");
    assert_pipeline_events(&report, TraceKind::ScaleOut);
    let chaos = report.chaos.expect("job ran with a chaos engine");
    assert!(chaos.partitioned > 0, "the cut dropped nothing: {chaos:?}");
}

#[test]
fn crashed_worker_rejoins_bit_identical() {
    let cfg = RuntimeConfig::small(3);
    let (elems, lr, batch) = (cfg.param_elems, cfg.learning_rate, cfg.total_batch);
    let mut rt = ElasticRuntime::builder()
        .config(cfg)
        .time(TimeSource::virtual_seeded(29))
        .start()
        .unwrap();
    rt.run_until_iteration(8);
    let victim = rt.members()[2];

    // The victim dies at its next coordination boundary — after the SGD
    // step, before sending `Coordinate` — so the survivors park and the
    // boundary hangs on it. The restart reaps the corpse and spawns a
    // `Rejoin` incarnation that presents the crash credentials, gets
    // re-admitted, and streams boundary state back over the chunked
    // replication path.
    rt.crash_worker_at(victim, 10);
    rt.restart_worker(victim);
    rt.run_until_iteration(24);
    let cp = rt.checkpoint();
    let report = rt.shutdown();
    dump_journal("crashed_worker_rejoins_bit_identical", &report);

    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::WorkerRejoin { worker, .. } if worker == victim
        )),
        "no worker_rejoin event for {victim:?}: {:?}",
        report.journal
    );
    // Rejoin must beat the failure detector: nobody was declared dead
    // and the job never shrank.
    assert_eq!(
        report.journal.count("worker_declared_dead"),
        0,
        "rejoin lost the race to the failure detector: {:?}",
        report.journal
    );
    assert_eq!(report.final_world_size, 3);
    assert!(report.states_consistent(), "rejoin diverged: {report:?}");
    // The rejoiner re-fetched state like any joiner: a planned
    // replication and an applied snapshot are journal facts.
    assert!(report.journal.count("replication_planned") >= 1);
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::SnapshotApplied { worker, .. } if worker == victim
        )),
        "rejoiner never applied a snapshot: {:?}",
        report.journal
    );
    let safety = check_term_safety(&report.events);
    assert!(safety.is_safe(), "{safety}");

    // The acceptance bar: the post-rejoin job is *bit-identical* to a
    // never-crashed run — checked against the single-threaded reference
    // replay of the same deterministic workload.
    let (ref_params, ref_momentum, ref_cursor) =
        elan::rt::worker::simulate_training(3, cp.iteration, elems, lr, batch);
    assert_eq!(
        cp.params.as_slice(),
        ref_params.as_slice(),
        "parameters diverged from the never-crashed replay at iteration {}",
        cp.iteration
    );
    assert_eq!(
        cp.momentum.as_slice(),
        ref_momentum.as_slice(),
        "momentum diverged from the never-crashed replay"
    );
    assert_eq!(cp.data_cursor, ref_cursor, "serial data cursor diverged");
}

// ---------------------------------------------------------------------------
// Epoch-based open membership (DESIGN.md §17)
// ---------------------------------------------------------------------------

/// Epoch config for the open-membership scenarios: a short join window,
/// three-boundary epochs, and two-witness digest audits.
fn open_epochs(seed: u64) -> EpochConfig {
    EpochConfig {
        min_members: 3,
        max_members: 8,
        join_window_ms: 200,
        train_boundaries: 3,
        witness_sample: 2,
        shard_count: 64,
        seed,
    }
}

/// Asserts every `JoinAdmitted` in the journal landed while the epoch
/// machine was in `Warmup` of the same epoch — the event-sequence
/// formulation of "admitted at an epoch boundary, never mid-epoch".
fn assert_admissions_at_boundaries(report: &ShutdownReport) {
    let mut current: Option<(u64, EpochPhase)> = None;
    for e in &report.events {
        match e.kind {
            EventKind::EpochPhaseEntered { epoch, phase, .. } => {
                current = Some((epoch, phase));
            }
            EventKind::JoinAdmitted { worker, epoch, .. } => {
                assert_eq!(
                    current,
                    Some((epoch, EpochPhase::Warmup)),
                    "{worker:?} admitted outside epoch {epoch}'s warmup (machine was at {current:?})"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn open_join_is_admitted_at_an_epoch_boundary() {
    let mut rt = ElasticRuntime::builder()
        .workers(3)
        .time(TimeSource::virtual_seeded(31))
        .compute_us(500)
        .open_membership(open_epochs(31))
        .start()
        .unwrap();
    rt.run_until_iteration(10);
    // Two cold joiners announce themselves; nobody asked the controller.
    // The epoch machine defers them to the next join window, warms them
    // up over the chunked replication path, audits their digests with
    // two witnesses each, and folds them in at the boundary.
    let joiners = rt.open_join(2);
    assert!(
        rt.wait_for_members(5, Duration::from_secs(120)),
        "joiners were never admitted"
    );
    rt.run_until_iteration(40);
    let report = rt.shutdown();
    dump_journal("open_join_is_admitted_at_an_epoch_boundary", &report);

    assert_eq!(report.final_world_size, 5);
    assert!(report.states_consistent(), "join diverged: {report:?}");
    for w in &joiners {
        assert!(
            report.events.iter().any(|e| matches!(
                e.kind,
                EventKind::JoinAdmitted { worker, .. } if worker == *w
            )),
            "no join_admitted for {w:?}: {:?}",
            report.journal
        );
    }
    // Each admission was witnessed: two votes per joiner, minimum.
    assert!(
        report.journal.count("witness_vote_cast") >= 4,
        "missing witness votes: {:?}",
        report.journal
    );
    assert_admissions_at_boundaries(&report);
    let es = check_epoch_safety(&report.events);
    assert!(es.is_safe(), "{es}");
    let ts = check_term_safety(&report.events);
    assert!(ts.is_safe(), "{ts}");
}

#[test]
fn partition_swallowed_join_is_admitted_at_the_next_boundary() {
    let mut rt = ElasticRuntime::builder()
        .workers(3)
        .chaos(ChaosPolicy::new(37)) // no scripted faults: engine only
        .time(TimeSource::virtual_seeded(37))
        .compute_us(500)
        .open_membership(open_epochs(37))
        .start()
        .unwrap();
    rt.run_until_iteration(10);
    // Cut the joiner's endpoint off from the whole job *before* it is
    // spawned, for long enough to swallow several join windows: its
    // announces vanish into the partition, so the AM has never heard of
    // it when those windows close.
    let predicted = WorkerId(3);
    assert!(
        rt.partition(
            "join-blackout",
            vec![vec![EndpointId::Worker(predicted)]],
            Duration::from_secs(5),
        ),
        "no chaos engine to script the partition"
    );
    let joiner = rt.open_join(1)[0];
    assert_eq!(joiner, predicted, "worker id allocation changed");
    // After the heal, the joiner's heartbeat-cadence re-announce lands,
    // and it is admitted at the *next* epoch boundary — never mid-epoch.
    assert!(
        rt.wait_for_members(4, Duration::from_secs(120)),
        "joiner was never admitted after the partition healed"
    );
    rt.run_until_iteration(60);
    let report = rt.shutdown();
    dump_journal(
        "partition_swallowed_join_is_admitted_at_the_next_boundary",
        &report,
    );

    assert_eq!(report.final_world_size, 4);
    assert!(report.states_consistent(), "join diverged: {report:?}");
    let admitted_epoch = report
        .events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::JoinAdmitted { worker, epoch, .. } if worker == joiner => Some(epoch),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no join_admitted for {joiner:?}: {:?}", report.journal));
    // Five virtual seconds of blackout outlast the genesis window by an
    // order of magnitude: the admission provably used a later epoch.
    assert!(
        admitted_epoch >= 1,
        "joiner admitted in the genesis window it was partitioned through"
    );
    assert_admissions_at_boundaries(&report);
    let es = check_epoch_safety(&report.events);
    assert!(es.is_safe(), "{es}");
    let ts = check_term_safety(&report.events);
    assert!(ts.is_safe(), "{ts}");
}

#[test]
fn corrupt_warmup_digest_is_evicted_by_witness_vote() {
    let mut rt = ElasticRuntime::builder()
        .workers(3)
        .time(TimeSource::virtual_seeded(41))
        .compute_us(500)
        .open_membership(open_epochs(41))
        .start()
        .unwrap();
    rt.run_until_iteration(10);
    // Two joiners share a join window; one lies about its warmup digest.
    let honest = rt.open_join(1)[0];
    let corrupt = rt.open_join_corrupt();
    assert!(
        rt.wait_for_members(4, Duration::from_secs(120)),
        "honest joiner was never admitted"
    );
    // The liar is dismissed with a `Leave`; wait for its exit to land in
    // telemetry so the journal assertions below cannot race it.
    let deadline = Duration::from_secs(60);
    let t0 = rt.time().now();
    while rt.time().now().saturating_duration_since(t0) < elan::rt::time::std_to_sim(deadline) {
        if rt.snapshot().get(&corrupt).is_some_and(|v| !v.alive) {
            break;
        }
        rt.time().sleep(Duration::from_millis(2));
    }
    rt.run_until_iteration(40);
    let report = rt.shutdown();
    dump_journal("corrupt_warmup_digest_is_evicted_by_witness_vote", &report);

    assert_eq!(report.final_world_size, 4, "liar ended up a member");
    assert!(report.states_consistent(), "{report:?}");
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::WitnessEvicted { worker, .. } if worker == corrupt
        )),
        "no witness_evicted for {corrupt:?}: {:?}",
        report.journal
    );
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::JoinAdmitted { worker, .. } if worker == honest
        )),
        "no join_admitted for honest {honest:?}: {:?}",
        report.journal
    );
    // The evicted joiner's would-be shards were re-assigned over the
    // surviving membership by the seeded pure function: the journalled
    // checksum must match an independent recomputation.
    let (epoch, members, checksum) = report
        .events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            EventKind::ShardsReassigned {
                epoch,
                members,
                checksum,
            } => Some((epoch, members, checksum)),
            _ => None,
        })
        .expect("no shards_reassigned event");
    assert_eq!(members, 4, "last shard map not over the final membership");
    let survivors = [WorkerId(0), WorkerId(1), WorkerId(2), honest];
    assert_eq!(
        checksum,
        shard_checksum(41, epoch, 64, &survivors),
        "shard re-assignment diverged from the seeded pure function"
    );
    assert_admissions_at_boundaries(&report);
    let es = check_epoch_safety(&report.events);
    assert!(es.is_safe(), "{es}");
    let ts = check_term_safety(&report.events);
    assert!(ts.is_safe(), "{ts}");
}
