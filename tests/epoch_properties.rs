//! Property-based tests for the open-membership epoch machine
//! (DESIGN.md §17), driven through the scripted churn storm
//! ([`run_churn`]) — a pure function of its config, so hundreds of
//! randomized storms cost milliseconds, not threads.
//!
//! The properties, over arbitrary seeds, populations, and fault dials:
//!
//! - **determinism** — the journal (hashed) and every counter are pure
//!   functions of the seed: two runs of the same storm are identical;
//! - **membership bounds** — every `Train` entry seats between
//!   `min_members` and `max_members` members;
//! - **no un-warmed member trains** — `Train` is only ever entered from
//!   `Warmup`, and every admission carries at least one admit vote from
//!   the witness round (the auditor's vote-presence check);
//! - **monotonic epochs** — phase entries never decrease the epoch, and
//!   each `WaitingForMembers` entry (the epoch roll) strictly increases
//!   it.
//!
//! The epoch-safety auditor ([`check_epoch_safety`]) is asserted on
//! every storm too — the same auditor CI runs over seedsweep and chaos
//! e2e journals — plus direct event-scan assertions below so a bug in
//! the auditor itself cannot silently weaken the properties.

use std::collections::BTreeSet;

use proptest::prelude::*;

use elan::core::protocol::EpochPhase;
use elan::core::state::WorkerId;
use elan::rt::epoch::{run_churn, ChurnConfig};
use elan::rt::{check_epoch_safety, EventKind};

/// A storm config over the randomized degrees of freedom. Fault dials
/// ride the strategy so shrinking finds the *simplest* storm that
/// breaks a property, not just the smallest seed.
fn storm(
    population: u32,
    seed: u64,
    join: u32,
    leave: u32,
    crash: u32,
    corrupt: u32,
) -> ChurnConfig {
    let mut cfg = ChurnConfig::sized(population, seed);
    cfg.join_permille = join;
    cfg.leave_permille = leave;
    cfg.crash_permille = crash;
    cfg.corrupt_permille = corrupt;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn churn_storm_is_deterministic_and_epoch_safe(
        seed in 0u64..1_000_000,
        population in 40u32..240,
        join in 20u32..120,
        leave in 0u32..20,
        crash in 0u32..12,
        corrupt in 0u32..200,
    ) {
        let cfg = storm(population, seed, join, leave, crash, corrupt);
        let a = run_churn(&cfg);
        let b = run_churn(&cfg);

        // Determinism: the journal is a pure function of the config.
        prop_assert_eq!(
            a.journal_hash, b.journal_hash,
            "two runs of seed {} hashed differently", seed
        );
        prop_assert_eq!(a.admitted, b.admitted);
        prop_assert_eq!(a.evicted, b.evicted);
        prop_assert_eq!(a.deferred, b.deferred);
        prop_assert_eq!(a.epochs_trained, b.epochs_trained);
        prop_assert_eq!(a.peak_members, b.peak_members);

        // The auditor: legal phase transitions, vote-backed admissions,
        // bounded Train membership, monotonic epochs.
        let audit = check_epoch_safety(&a.events);
        prop_assert!(audit.is_safe(), "epoch safety violated: {}", audit);

        // Direct scans, independent of the auditor's bookkeeping.
        let (min, max) = (cfg.epoch.min_members as u64, cfg.epoch.max_members as u64);
        let mut last_epoch = 0u64;
        let mut last_waiting_epoch: Option<u64> = None;
        let mut prev_phase: Option<EpochPhase> = None;
        let mut admitted: BTreeSet<(WorkerId, u64)> = BTreeSet::new();
        let mut admit_votes: BTreeSet<(WorkerId, u64)> = BTreeSet::new();
        for e in &a.events {
            match e.kind {
                EventKind::EpochPhaseEntered { epoch, phase, members } => {
                    // Monotonic: entries never go back in epoch.
                    prop_assert!(
                        epoch >= last_epoch,
                        "epoch regressed {} -> {} at seq {}", last_epoch, epoch, e.seq
                    );
                    last_epoch = epoch;
                    if phase == EpochPhase::WaitingForMembers {
                        // Strictly monotonic across epoch rolls.
                        if let Some(prev) = last_waiting_epoch {
                            prop_assert!(
                                epoch > prev,
                                "epoch roll did not advance: {} -> {}", prev, epoch
                            );
                        }
                        last_waiting_epoch = Some(epoch);
                    }
                    if phase == EpochPhase::Train {
                        // Bounds: a training cohort is never under- or
                        // over-strength.
                        prop_assert!(
                            members >= min && members <= max,
                            "Train entered with {} members outside [{}, {}]",
                            members, min, max
                        );
                        // No un-warmed cohort: Train is only reachable
                        // from Warmup.
                        prop_assert_eq!(
                            prev_phase, Some(EpochPhase::Warmup),
                            "Train entered from {:?}", prev_phase
                        );
                    }
                    prev_phase = Some(phase);
                }
                EventKind::WitnessVoteCast { subject, epoch, admit, .. } if admit => {
                    admit_votes.insert((subject, epoch));
                }
                EventKind::JoinAdmitted { worker, epoch, .. } => {
                    admitted.insert((worker, epoch));
                }
                _ => {}
            }
        }
        // Every admission was vote-backed: an un-warmed worker (one that
        // never survived a witness round) cannot have been admitted.
        for (worker, epoch) in &admitted {
            prop_assert!(
                admit_votes.contains(&(*worker, *epoch)),
                "{:?} admitted in epoch {} without an admit vote", worker, epoch
            );
        }
    }

    /// Corrupt joiners claim a perturbed digest; with the corruption
    /// dial pinned high, evictions must actually happen (the witness
    /// round is load-bearing, not decorative) and no evicted (worker,
    /// epoch) pair may also be admitted.
    #[test]
    fn witness_round_evicts_corrupt_joiners(seed in 0u64..1_000_000) {
        // Leaves keep capacity opening up: a full-to-the-cap job defers
        // every join and would never run a witness round at all (the
        // genesis cohort is seated by the bootstrap path, vote-free).
        let cfg = storm(120, seed, 120, 100, 0, 1000);
        let report = run_churn(&cfg);
        prop_assert!(
            report.evicted >= 1,
            "all-corrupt storm evicted nobody: {:?}", report
        );
        let mut evicted: BTreeSet<(WorkerId, u64)> = BTreeSet::new();
        let mut admitted: BTreeSet<(WorkerId, u64)> = BTreeSet::new();
        for e in &report.events {
            match e.kind {
                EventKind::WitnessEvicted { worker, epoch, .. } => {
                    evicted.insert((worker, epoch));
                }
                EventKind::JoinAdmitted { worker, epoch, .. } => {
                    admitted.insert((worker, epoch));
                }
                _ => {}
            }
        }
        for pair in &evicted {
            prop_assert!(
                !admitted.contains(pair),
                "{:?} both admitted and evicted in the same epoch", pair
            );
        }
        let audit = check_epoch_safety(&report.events);
        prop_assert!(audit.is_safe(), "epoch safety violated: {}", audit);
    }
}
