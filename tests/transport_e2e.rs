//! Multi-process loopback e2e: the coordinator runs in this test process
//! over a Unix-domain [`SocketTransport`]; every worker is a real child
//! OS process running the `elan-worker` bin.
//!
//! The run exercises the full elastic lifecycle across the process
//! boundary — founding workers dial in, a joiner is admitted by a
//! scale-out, a worker process is killed outright (no goodbye — the
//! failure detector must notice the silence), and a fresh process
//! rejoins with the crashed incarnation's credentials — then asserts the
//! coordinator journal shows the same event-sequence shape the in-memory
//! chaos e2e produces for the equivalent in-process run.

use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use elan::core::state::WorkerId;
use elan::{ElasticRuntime, EventKind, RuntimeConfig, ShutdownReport, SocketTransport, Transport};

/// Writes the run's retained event journal to
/// `target/chaos-journals/<name>.json` (one JSON object per line) so CI
/// can upload the forensic trail as an artifact when the suite fails.
/// Best-effort: a read-only target dir must not fail the test itself.
fn dump_journal(name: &str, report: &ShutdownReport) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("chaos-journals");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let lines: Vec<String> = report.events.iter().map(|e| e.to_json()).collect();
    let _ = std::fs::write(dir.join(format!("{name}.json")), lines.join("\n") + "\n");
}

fn spawn_worker(addr: &str, id: u32, role: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_elan-worker"))
        .args(["--connect", addr, "--id", &id.to_string(), "--role", role])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn elan-worker process")
}

/// Polls `child` until it exits or `timeout` passes (no `wait_timeout`
/// in std).
fn exited_within(child: &mut Child, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        match child.try_wait() {
            Ok(Some(_)) => return true,
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => return false,
        }
    }
    false
}

#[test]
fn uds_multiprocess_scale_out_crash_rejoin() {
    let sock = std::env::temp_dir().join(format!("elan-transport-e2e-{}.sock", std::process::id()));
    let addr = format!("unix:{}", sock.display());
    let transport = SocketTransport::listen(&addr).expect("listen on temp UDS path");
    let transport: Arc<dyn Transport> = Arc::new(transport);
    let mut rt = ElasticRuntime::builder()
        .config(RuntimeConfig::small(2))
        .transport(transport)
        .remote_workers(true)
        .start()
        .expect("start coordinator");

    // (id, process) for every worker ever spawned; all of them must exit
    // on their own Leave by the end.
    let mut children: Vec<(u32, Child)> = Vec::new();
    children.push((0, spawn_worker(&addr, 0, "founding")));
    children.push((1, spawn_worker(&addr, 1, "founding")));
    rt.run_until_iteration(10);

    // Scale out to 3. The joiner process starts first — its announce is
    // re-sent at heartbeat cadence until an AM admits it, so the order
    // doesn't race the adjustment.
    children.push((2, spawn_worker(&addr, 2, "joining")));
    rt.scale_out(1);
    assert!(
        rt.wait_for_members(3, Duration::from_secs(60)),
        "joiner process was never admitted"
    );
    rt.run_until_iteration(20);

    // Kill worker 1's OS process outright: its heartbeats stop, the AM's
    // failure detector declares it dead, and a failure scale-in shrinks
    // the job — the remote equivalent of a chaos-injected crash.
    let (victim_id, mut victim) = children.remove(1);
    assert_eq!(victim_id, 1);
    victim.kill().expect("kill worker 1");
    let _ = victim.wait();
    assert!(
        rt.wait_for_members(2, Duration::from_secs(60)),
        "killed worker was never declared dead"
    );

    // A fresh process rejoins with the crashed incarnation's credentials
    // and re-enters through the chunked state-replication path.
    children.push((1, spawn_worker(&addr, 1, "rejoin:0:0")));
    assert!(
        rt.wait_for_members(3, Duration::from_secs(60)),
        "rejoining process was never re-admitted"
    );
    rt.run_until_iteration(30);

    let report = rt.shutdown();
    dump_journal("uds_multiprocess_scale_out_crash_rejoin", &report);
    let _ = std::fs::remove_file(&sock);

    // The shutdown's Leave broadcast must release every worker process.
    for (id, mut child) in children {
        assert!(
            exited_within(&mut child, Duration::from_secs(60)),
            "worker process {id} did not exit after shutdown"
        );
    }

    assert_eq!(report.final_world_size, 3, "{report:?}");
    assert_eq!(report.adjustments, 1, "one controller-requested scale-out");

    // Event-sequence shape: identical to the in-memory chaos e2e for the
    // equivalent scale-out + crash + rejoin run, just over a socket.
    let j = &report.journal;
    assert!(j.count("worker_reported") >= 1, "no reports: {j:?}");
    assert!(
        j.count("adjustment_requested") >= 2,
        "scale-out + failure scale-in both adjust: {j:?}"
    );
    assert!(
        j.count("adjustment_completed") >= 2,
        "adjustments never completed: {j:?}"
    );
    assert!(
        j.count("replication_planned") >= 2,
        "joiner and rejoiner each need a plan: {j:?}"
    );
    assert!(
        j.count("transfer_done") >= 2,
        "joiner and rejoiner each receive state: {j:?}"
    );
    assert!(j.count("boundary_released") >= 1, "no boundaries: {j:?}");
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::WorkerDeclaredDead { worker } if worker == WorkerId(1)
        )),
        "worker 1's death was never detected"
    );
    assert!(
        report.events.iter().any(|e| matches!(
            e.kind,
            EventKind::WorkerRejoin { worker, .. } if worker == WorkerId(1)
        )),
        "worker 1 never rejoined"
    );
    // Every adjustment ran the five-phase pipeline.
    assert!(
        j.count("phase_started") >= 2 && j.count("phase_ended") >= 2,
        "pipeline phases missing: {j:?}"
    );
}
