//! Integration: the §VI-B elastic-training experiment shapes
//! (Figs. 18/19, Table IV).

use elan::baselines::ShutdownRestart;
use elan::core::job::{resnet50_configs, run_elastic_training, ElasticRunConfig, ElasticRunResult};
use elan::core::{ElanSystem, ElasticitySystem};
use elan::models::convergence::ScalingRule;
use elan::models::{perf::PerfModel, zoo, AccuracyModel};
use elan::topology::{BandwidthModel, ClusterSpec, Topology};

struct Env {
    topology: Topology,
    bandwidth: BandwidthModel,
    perf: PerfModel,
    model: elan::models::ModelSpec,
    accuracy: AccuracyModel,
}

fn env() -> Env {
    Env {
        topology: ClusterSpec::paper_testbed().build(),
        bandwidth: BandwidthModel::paper_default(),
        perf: PerfModel::paper_default(),
        model: zoo::resnet50(),
        accuracy: AccuracyModel::resnet50_imagenet(),
    }
}

fn run(
    env: &Env,
    system: &dyn ElasticitySystem,
    phases: Vec<elan::core::job::ElasticPhase>,
) -> ElasticRunResult {
    run_elastic_training(&ElasticRunConfig {
        model: &env.model,
        perf: &env.perf,
        accuracy: &env.accuracy,
        rule: ScalingRule::ProgressiveLinear { ramp_iters: 100 },
        phases,
        total_epochs: 90,
        topology: &env.topology,
        bandwidth: &env.bandwidth,
        system,
        coordination_interval: 10,
        seed: 42,
    })
}

#[test]
fn table4_shapes_hold() {
    let e = env();
    let elan = ElanSystem::new();
    let s = run(&e, &elan, resnet50_configs::static_512_16());
    let el = run(&e, &elan, resnet50_configs::elastic_512_2048());
    let f64c = run(&e, &elan, resnet50_configs::fixed64_512_2048());

    for target in [0.745, 0.750, 0.755] {
        let ts = s.time_to_accuracy(target).expect("static reaches target");
        let te = el.time_to_accuracy(target).expect("elastic reaches target");
        let speedup = ts.as_secs_f64() / te.as_secs_f64();
        // Paper: ~1.2x. Our interconnect model scales better, so the band
        // is wider — but the win must be real and not absurd.
        assert!(
            (1.05..2.5).contains(&speedup),
            "target {target}: speedup {speedup:.2}"
        );
    }
    // Dynamic batches on fixed 64 workers: wall-clock may be fine but the
    // GPU-time cost explodes vs. elastic — elasticity is necessary.
    let gpu_time = |r: &ElasticRunResult, workers: &[(usize, u32)]| -> f64 {
        r.epoch_times
            .iter()
            .enumerate()
            .map(|(i, dt)| {
                let n = workers
                    .iter()
                    .rev()
                    .find(|(start, _)| *start <= i)
                    .expect("covered")
                    .1;
                dt.as_secs_f64() * n as f64
            })
            .sum()
    };
    let elastic_cost = gpu_time(&el, &[(0, 16), (30, 32), (60, 64)]);
    let fixed_cost = gpu_time(&f64c, &[(0, 64)]);
    assert!(elastic_cost < 0.8 * fixed_cost);
}

#[test]
fn accuracy_is_preserved_by_hybrid_scaling() {
    // Fig. 18: 75.89% vs 75.87%.
    let e = env();
    let elan = ElanSystem::new();
    let s = run(&e, &elan, resnet50_configs::static_512_16());
    let el = run(&e, &elan, resnet50_configs::elastic_512_2048());
    assert!((s.final_accuracy - el.final_accuracy).abs() < 0.001);
}

#[test]
fn snr_adjustments_eat_into_the_speedup() {
    // The same elastic schedule pays ~40s pauses under S&R instead of ~1s
    // under Elan — the reason high-performance elasticity matters.
    let e = env();
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();
    let with_elan = run(&e, &elan, resnet50_configs::elastic_512_2048());
    let with_snr = run(&e, &snr, resnet50_configs::elastic_512_2048());
    let pe: f64 = with_elan
        .adjustments
        .iter()
        .map(|a| a.pause.as_secs_f64())
        .sum();
    let ps: f64 = with_snr
        .adjustments
        .iter()
        .map(|a| a.pause.as_secs_f64())
        .sum();
    assert!(ps > 10.0 * pe, "snr pauses {ps:.1}s vs elan {pe:.1}s");
    assert!(with_snr.total_time() > with_elan.total_time());
}

#[test]
fn speedup_grows_with_target() {
    let e = env();
    let elan = ElanSystem::new();
    let s = run(&e, &elan, resnet50_configs::static_512_16());
    let el = run(&e, &elan, resnet50_configs::elastic_512_2048());
    let speedup = |t: f64| {
        s.time_to_accuracy(t).expect("static").as_secs_f64()
            / el.time_to_accuracy(t).expect("elastic").as_secs_f64()
    };
    assert!(speedup(0.755) > speedup(0.745));
}

#[test]
fn accuracy_curves_are_plausible_imagenet_curves() {
    let e = env();
    let elan = ElanSystem::new();
    let r = run(&e, &elan, resnet50_configs::static_512_16());
    // Characteristic staircase: big boost right after each LR decay.
    let c = &r.curve;
    assert!(c.accuracy_at(31.0) - c.accuracy_at(30.0) > c.accuracy_at(30.0) - c.accuracy_at(29.0));
    assert!(c.accuracy_at(29.0) > 0.4 && c.accuracy_at(29.0) < 0.7);
    assert!(c.accuracy_at(90.0) > 0.75);
}
