//! Explore how cluster topology shapes replication plans (§IV).
//!
//! Prints the topology tree, then shows how the planner's source
//! selection and wave structure change as the joining workers move
//! farther from the existing ones.
//!
//! ```sh
//! cargo run --example topology_explorer
//! ```

use elan::models::zoo;
use elan::sim::Bytes;
use elan::topology::{
    BandwidthModel, ClusterSpec, GpuId, NodeId, ReplicationPlanner, TopologyTree,
};

fn main() {
    let topo = ClusterSpec::new(4, 2, 2, 2).build();
    let tree = TopologyTree::build(&topo);
    println!("topology (4 nodes x 2 sockets x 2 switches x 2 GPUs):\n");
    println!("{}", tree.render());

    let bw = BandwidthModel::paper_default();
    let model = zoo::resnet50();
    let payload = Bytes::new(model.parameters * 4 * 2);

    let existing: Vec<GpuId> = (0..4).map(GpuId).collect(); // node0, socket0
    let scenarios: [(&str, Vec<GpuId>); 3] = [
        (
            "joiners on the same socket (P2P/SHM)",
            (4..8).map(GpuId).collect(),
        ),
        (
            "joiners on the next node (NET)",
            (8..12).map(GpuId).collect(),
        ),
        (
            "joiners spread over two nodes",
            vec![
                topo.gpu_at(NodeId(2), 0, 0, 0),
                topo.gpu_at(NodeId(2), 1, 0, 0),
                topo.gpu_at(NodeId(3), 0, 0, 0),
                topo.gpu_at(NodeId(3), 1, 0, 0),
            ],
        ),
    ];

    for (label, joining) in scenarios {
        let plan = ReplicationPlanner::new(&topo)
            .plan(&existing, &joining)
            .expect("valid placements");
        println!("== {label}");
        for t in plan.transfers() {
            println!(
                "   {} -> {}  ({} via {})",
                t.src, t.dst, t.level, t.transport
            );
        }
        println!(
            "   waves: {}   replication of {}: {}\n",
            plan.waves().len(),
            payload,
            plan.duration(&bw, payload, model.cpu_state_bytes())
        );
    }
}
