//! Elastic job scheduling on a two-day synthetic production trace —
//! the §VI-C experiment (Figs. 20/21).
//!
//! ```sh
//! cargo run --release --example elastic_scheduling
//! ```

use elan::core::ElanSystem;
use elan::sched::{generate_trace, run_trace, PolicyKind, SimConfig, TraceConfig};
use elan::sim::SimDuration;

fn main() {
    let trace_cfg = TraceConfig::paper_two_day(11);
    let jobs = generate_trace(&trace_cfg);
    println!(
        "two-day trace: {} jobs on {} GPUs\n",
        jobs.len(),
        trace_cfg.total_gpus
    );

    let elan = ElanSystem::new();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "policy", "avg JPT (s)", "avg JCT (s)", "makespan(s)", "util (%)", "adjusts"
    );
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::ElasticFifo,
        PolicyKind::Backfill,
        PolicyKind::ElasticBackfill,
    ] {
        let cfg = SimConfig {
            total_gpus: trace_cfg.total_gpus,
            policy,
            system: &elan,
            coordination_interval: 10,
            startup: SimDuration::from_secs(30),
            seed: 11,
            capacity: None,
        };
        let result = run_trace(&cfg, &jobs);
        let m = result.metrics();
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>10.1} {:>8}",
            policy.name(),
            m.avg_jpt(),
            m.avg_jct(),
            m.makespan.as_secs_f64(),
            m.mean_utilization * 100.0,
            result.total_adjustments,
        );
    }
    println!("\n(paper: elasticity reduces JPT by 43%+, JCT by 25%+, makespan by 21%+)");
}
