//! Fault tolerance end to end (§V-D): message loss with retries, and an
//! application-master crash recovered from the replicated store — all
//! while a scale-out adjustment is in flight.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use elan::core::coordination::{run_coordination, CoordinationConfig};
use elan::core::elasticity::AdjustmentRequest;
use elan::sim::SimDuration;

fn main() {
    let mut cfg = CoordinationConfig::baseline(6, 40);
    cfg.request = Some(AdjustmentRequest::contiguous(6, 10));
    cfg.loss_prob = 0.15; // 15% of control messages vanish
    cfg.am_crash = Some((SimDuration::from_secs(12), SimDuration::from_secs(5)));

    println!(
        "6 workers training, scaling out to 10; 15% message loss; the AM\n\
         crashes at t=12s for 5s while new workers are still initializing.\n"
    );
    let out = run_coordination(&cfg);

    println!("AM recoveries survived : {}", out.am.recoveries);
    println!(
        "adjustment completed at: {}",
        out.am
            .adjustment_completed_at
            .map_or("never".to_string(), |t| t.to_string())
    );
    println!("message resends        : {}", out.total_resends());
    println!("duplicates suppressed  : {}", out.am.duplicates);
    println!("worst training stall   : {}", out.max_stall());
    println!();
    for (gpu, w) in &out.workers {
        println!(
            "  {gpu}: rounds {:>2}  stalled {:>10}  joined {}  left {}",
            w.rounds_completed,
            w.stalled.to_string(),
            w.joined,
            w.left
        );
    }

    assert!(out.am.adjustment_completed_at.is_some());
    assert_eq!(out.am.recoveries, 1);
    println!("\nall invariants held: the adjustment completed despite loss and crash");
}
