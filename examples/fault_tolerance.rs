//! Fault tolerance end to end (§V-D), three times over:
//!
//! 1. in the **simulated** coordination protocol: message loss with
//!    retries, and an application-master crash recovered from the
//!    replicated store — all while a scale-out adjustment is in flight;
//! 2. in the **live multi-threaded runtime**: the same crash, but as a
//!    real dead thread on a fault-injecting bus, with a watchdog electing
//!    a replacement AM that recovers the half-done adjustment and a
//!    reliable-messaging layer masking 20% message loss;
//! 3. a **network partition and a worker rejoin**, on virtual time: a
//!    scripted 500ms window isolates the acting AM mid-scale-out, a
//!    term-fenced successor takes over and completes the op, the window
//!    heals — then a worker crashes at a coordination boundary, restarts,
//!    and is re-admitted through the `Rejoin` handshake, resuming
//!    bit-identically.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use std::time::Duration;

use elan::core::coordination::{run_coordination, CoordinationConfig};
use elan::core::elasticity::AdjustmentRequest;
use elan::rt::{
    check_term_safety, ChaosPolicy, CrashPoint, ElasticRuntime, EndpointId, RuntimeConfig,
    TimeSource,
};
use elan::sim::SimDuration;

fn simulated() {
    let mut cfg = CoordinationConfig::baseline(6, 40);
    cfg.request = Some(AdjustmentRequest::contiguous(6, 10));
    cfg.loss_prob = 0.15; // 15% of control messages vanish
    cfg.am_crash = Some((SimDuration::from_secs(12), SimDuration::from_secs(5)));

    println!(
        "== simulated protocol ==\n\
         6 workers training, scaling out to 10; 15% message loss; the AM\n\
         crashes at t=12s for 5s while new workers are still initializing.\n"
    );
    let out = run_coordination(&cfg);

    println!("AM recoveries survived : {}", out.am.recoveries);
    println!(
        "adjustment completed at: {}",
        out.am
            .adjustment_completed_at
            .map_or("never".to_string(), |t| t.to_string())
    );
    println!("message resends        : {}", out.total_resends());
    println!("duplicates suppressed  : {}", out.am.duplicates);
    println!("worst training stall   : {}", out.max_stall());
    println!();
    for (gpu, w) in &out.workers {
        println!(
            "  {gpu}: rounds {:>2}  stalled {:>10}  joined {}  left {}",
            w.rounds_completed,
            w.stalled.to_string(),
            w.joined,
            w.left
        );
    }

    assert!(out.am.adjustment_completed_at.is_some());
    assert_eq!(out.am.recoveries, 1);
    println!("\nall invariants held: the adjustment completed despite loss and crash\n");
}

fn live() {
    println!(
        "== live runtime ==\n\
         2 worker threads training on a bus that drops 20%, delays 20%,\n\
         and duplicates 10% of every control message. Mid-scale-out the AM\n\
         thread is killed right after persisting its durable record; the\n\
         watchdog detects the lapsed lease and elects a replacement that\n\
         finishes the adjustment from the replicated store.\n"
    );
    let chaos = ChaosPolicy::new(2020)
        .drop(0.20)
        .delay(0.20, 3)
        .duplicate(0.10);
    let mut rt = ElasticRuntime::builder()
        .config(RuntimeConfig::small(2))
        .chaos(chaos)
        .start()
        .expect("valid runtime configuration");
    rt.run_until_iteration(10);
    rt.arm_am_crash(CrashPoint::OnAdjustStart);
    rt.scale_out(2); // blocks until the (recovered) adjustment completes
    rt.run_until_iteration(25);
    let report = rt.shutdown();

    let m = report.metrics;
    println!("final world size       : {}", report.final_world_size);
    println!("AM recoveries survived : {}", m.am_recoveries);
    println!("message resends        : {}", m.resends);
    println!("duplicates suppressed  : {}", m.duplicates);
    println!("bus dead letters       : {}", m.dead_letters);
    if let Some(c) = report.chaos {
        println!(
            "chaos verdicts         : {} delivered / {} dropped / {} duplicated / {} delayed",
            c.delivered, c.dropped, c.duplicated, c.delayed
        );
    }
    for (w, v) in &report.workers {
        println!(
            "  worker {:>2}: iteration {:>3}  checksum {:016x}  stalled {:>9?}",
            w.0, v.iteration, v.params_checksum, v.stalled
        );
    }

    // The adjustment-latency breakdown: every number below is read back
    // from the runtime's structured event journal (the AdjustmentTrace
    // spans), not from a stopwatch wrapped around the calls above.
    println!();
    println!("{}", report.trace_report());
    let scale_out = report
        .traces
        .iter()
        .find(|t| t.kind == elan::rt::TraceKind::ScaleOut && t.completed)
        .expect("the chaos-ridden scale-out must leave a completed trace");
    println!(
        "scale-out under chaos  : request={}us report={}us coordinate={}us replicate={}us adjust={}us (total {}us)",
        scale_out.phase_us(elan::core::obs::AdjustmentPhase::Request),
        scale_out.phase_us(elan::core::obs::AdjustmentPhase::Report),
        scale_out.phase_us(elan::core::obs::AdjustmentPhase::Coordinate),
        scale_out.phase_us(elan::core::obs::AdjustmentPhase::Replicate),
        scale_out.phase_us(elan::core::obs::AdjustmentPhase::Adjust),
        scale_out.total_us()
    );
    println!(
        "journal                : {} events recorded ({} chaos injections, {} resends, {} AM elections)",
        report.journal.total,
        report.journal.count("chaos_injected"),
        report.journal.count("message_resent"),
        report.journal.count("am_elected"),
    );

    assert_eq!(report.final_world_size, 4);
    assert!(
        report.metrics.am_recoveries >= 1,
        "the watchdog must have fired"
    );
    assert!(report.metrics.resends > 0, "loss must have forced resends");
    assert!(report.states_consistent(), "replicas diverged");
    assert!(
        scale_out.is_well_formed(),
        "the recovered adjustment trace must still be well-formed"
    );
    println!("\nall invariants held: bit-identical replicas despite chaos and a dead AM");
}

fn partitioned() {
    println!(
        "== partition & rejoin (virtual time) ==\n\
         3 worker threads training; a scripted 500ms partition cuts the\n\
         acting AM off from workers, controller, and store while a\n\
         scale-out is requested. Its lease lapses, a successor is elected\n\
         at a higher fencing term, the old AM's first write bounces off\n\
         the store, and the adjustment completes under the new term. After\n\
         the heal, a worker crashes at a coordination boundary, restarts,\n\
         and rejoins through the same replication path a joiner uses.\n"
    );
    let mut rt = ElasticRuntime::builder()
        .config(RuntimeConfig::small(3))
        // No probabilistic fates — the policy mounts the chaos engine so
        // the partition window can be scripted onto it.
        .chaos(ChaosPolicy::new(2021))
        .time(TimeSource::virtual_seeded(2021))
        .start()
        .expect("valid runtime configuration");
    rt.run_until_iteration(10);

    rt.partition(
        "am-isolated",
        vec![vec![EndpointId::Am]],
        Duration::from_millis(500),
    );
    rt.scale_out(1); // rides out the partition, completes on the successor
    rt.run_until_iteration(20);

    let victim = rt.members()[0];
    rt.crash_worker_at(victim, 25); // dies at its next boundary ≥ 25
    rt.restart_worker(victim); // reaps the corpse, spawns a Rejoin incarnation
    rt.run_until_iteration(35);
    let report = rt.shutdown();

    let j = &report.journal;
    println!("final world size       : {}", report.final_world_size);
    println!("partitions opened      : {}", j.count("partition_start"));
    println!("partitions healed      : {}", j.count("partition_heal"));
    println!("AM elections           : {}", j.count("am_elected"));
    println!("fencing term bumps     : {}", j.count("term_bump"));
    println!(
        "stale writes fenced    : {}",
        j.count("stale_term_rejected")
    );
    println!("workers rejoined       : {}", j.count("worker_rejoin"));
    for (w, v) in &report.workers {
        println!(
            "  worker {:>2}: iteration {:>3}  checksum {:016x}",
            w.0, v.iteration, v.params_checksum
        );
    }

    // Replay the journal through the term-safety checker: at most one AM
    // acted per term and nothing landed after its fence.
    let safety = check_term_safety(&report.events);
    println!("term safety            : {safety}");

    assert_eq!(report.final_world_size, 4);
    assert!(j.count("term_bump") >= 2, "successor never bumped the term");
    assert!(
        j.count("stale_term_rejected") >= 1,
        "the old AM was never fenced"
    );
    assert!(j.count("worker_rejoin") >= 1, "the victim never rejoined");
    assert!(safety.is_safe(), "term safety violated: {safety}");
    assert!(report.states_consistent(), "replicas diverged");
    println!("\nall invariants held: one AM per term, and the rejoiner is bit-identical\n");
}

fn main() {
    simulated();
    live();
    partitioned();
}
