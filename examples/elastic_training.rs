//! Elastic training of ResNet-50 on ImageNet with dynamic batch sizes —
//! the §VI-B experiment (Figs. 18/19, Table IV).
//!
//! ```sh
//! cargo run --example elastic_training
//! ```

use elan::core::job::{resnet50_configs, run_elastic_training, ElasticRunConfig};
use elan::core::ElanSystem;
use elan::models::convergence::ScalingRule;
use elan::models::{perf::PerfModel, zoo, AccuracyModel};
use elan::topology::{BandwidthModel, ClusterSpec};

fn main() {
    let topology = ClusterSpec::paper_testbed().build();
    let bandwidth = BandwidthModel::paper_default();
    let perf = PerfModel::paper_default();
    let model = zoo::resnet50();
    let accuracy = AccuracyModel::resnet50_imagenet();
    let system = ElanSystem::new();

    let configs = [
        ("512 (16)          ", resnet50_configs::static_512_16()),
        ("512-2048 (Elastic)", resnet50_configs::elastic_512_2048()),
        ("512-2048 (64)     ", resnet50_configs::fixed64_512_2048()),
    ];

    println!("AdaBatch ResNet-50/ImageNet, 90 epochs, batch doubling at 30/60\n");
    let mut static_time = None;
    for (name, phases) in configs {
        let result = run_elastic_training(&ElasticRunConfig {
            model: &model,
            perf: &perf,
            accuracy: &accuracy,
            rule: ScalingRule::ProgressiveLinear { ramp_iters: 100 },
            phases,
            total_epochs: 90,
            topology: &topology,
            bandwidth: &bandwidth,
            system: &system,
            coordination_interval: 10,
            seed: 42,
        });
        let t75 = result.time_to_accuracy(0.75).expect("reaches 75% top-1");
        if static_time.is_none() {
            static_time = Some(t75);
        }
        let speedup = static_time.expect("set above").as_secs_f64() / t75.as_secs_f64();
        println!(
            "{name}  final {:.2}%  total {:>7.0}s  time-to-75% {:>7.0}s  \
             speedup {speedup:.2}x  adjustments {}",
            result.final_accuracy * 100.0,
            result.total_time().as_secs_f64(),
            t75.as_secs_f64(),
            result.adjustments.len(),
        );
    }
    println!(
        "\n(paper: elastic reaches targets ~20% faster; dynamic batches on \
         fixed resources barely gain; accuracy within 0.02pt)"
    );
}
