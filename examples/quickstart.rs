//! Quickstart: the core Elan mechanisms in ~50 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use elan::core::scaling::hybrid_scale;
use elan::core::{AdjustmentContext, AdjustmentRequest, ElanSystem, ElasticitySystem};
use elan::models::{perf::PerfModel, zoo};
use elan::sim::Bytes;
use elan::topology::{BandwidthModel, ClusterSpec, GpuId, ReplicationPlanner};

fn main() {
    // The paper's testbed: 8 servers x 8 GPUs, PCIe + QPI + InfiniBand.
    let topology = ClusterSpec::paper_testbed().build();
    let bandwidth = BandwidthModel::paper_default();
    let perf = PerfModel::paper_default();
    let model = zoo::resnet50();

    // 1. Hybrid scaling (§III): what batch size should a 16-worker,
    //    TBS-512 ResNet-50 job use after scaling out to 32 workers?
    let decision = hybrid_scale(512, 16, 32, |tbs| perf.optimal_workers(&model, tbs, 256));
    println!(
        "hybrid scaling 16→32 workers: batch 512 → {} ({}), lr x{}",
        decision.new_total_batch, decision.mode, decision.lr_factor
    );

    // 2. Concurrent IO-free replication (§IV): plan the state transfers
    //    for 16 joining workers.
    let existing: Vec<GpuId> = (0..16).map(GpuId).collect();
    let joining: Vec<GpuId> = (16..32).map(GpuId).collect();
    let plan = ReplicationPlanner::new(&topology)
        .plan(&existing, &joining)
        .expect("valid placements");
    let payload = Bytes::new(model.parameters * 4 * 2);
    println!(
        "replication: {} transfers in {} concurrent waves, {} of state in {}",
        plan.transfers().len(),
        plan.waves().len(),
        payload,
        plan.duration(&bandwidth, payload, model.cpu_state_bytes()),
    );

    // 3. The full adjustment (§V): how long does training pause?
    let ctx = AdjustmentContext {
        topology: &topology,
        bandwidth: &bandwidth,
        perf: &perf,
        model: &model,
        total_batch: 512,
        coordination_interval: 10,
        seed: 42,
    };
    let cost = ElanSystem::new().adjust(&AdjustmentRequest::contiguous(16, 32), &ctx);
    println!(
        "scale-out 16→32: training pauses {} (completion {} — start/init hidden)",
        cost.pause, cost.completion
    );
}
