//! The live multi-threaded runtime: real worker threads scale out, in,
//! and migrate without ever restarting — state replicated by real memcpy
//! along the topology planner's sources.
//!
//! ```sh
//! cargo run --example live_runtime
//! ```

use elan::rt::{ElasticRuntime, RuntimeConfig};

fn main() {
    let mut rt = ElasticRuntime::builder()
        .config(RuntimeConfig::small(2))
        .start()
        .expect("valid runtime configuration");
    println!("started with {:?}", rt.members());

    rt.run_until_iteration(20);
    println!("iteration 20 reached; scaling out by 2...");
    rt.scale_out(2);
    println!("members now {:?}", rt.members());

    rt.run_until_iteration(40);
    println!("iteration 40; scaling in by 1...");
    rt.scale_in(1);
    println!("members now {:?}", rt.members());

    rt.run_until_iteration(60);
    println!("iteration 60; migrating to fresh workers...");
    rt.migrate();
    println!("members now {:?}", rt.members());

    rt.run_until_iteration(80);

    // The live S&R path, for contrast: checkpoint, stop, restore.
    let snapshot = rt.checkpoint();
    println!(
        "\ncheckpoint taken at iteration {} ({} params)",
        snapshot.iteration,
        snapshot.params.len()
    );
    let report = rt.shutdown();
    println!(
        "shutdown: {} workers, {} adjustments, states consistent: {}",
        report.final_world_size,
        report.adjustments,
        report.states_consistent()
    );
    println!();
    println!("{}", report.trace_report());
    for (id, view) in &report.workers {
        println!(
            "  {id}: iter {:>3}  cursor {:>6}  checksum {:#018x}  stalled {:>9?}  alive {}",
            view.iteration, view.data_cursor, view.params_checksum, view.stalled, view.alive
        );
    }
    assert!(report.states_consistent());

    let restored = elan::rt::ElasticRuntime::builder()
        .config(RuntimeConfig::small(2))
        .restore(&snapshot)
        .start()
        .expect("snapshot matches configuration");
    restored.run_until_iteration(snapshot.iteration + 10);
    let report2 = restored.shutdown();
    println!(
        "\nrestored from checkpoint and trained 10 more iterations; consistent: {}",
        report2.states_consistent()
    );
    assert!(report2.states_consistent());
}
