//! Coordinator process for multi-process mode: hosts the application
//! master, controller, and watchdog over a listening socket transport.
//!
//! Workers are separate OS processes started with `elan-worker`:
//!
//! ```text
//! elan-coordinator --listen unix:/tmp/elan.sock --workers 2 --until 20 &
//! elan-worker --connect unix:/tmp/elan.sock --id 0 &
//! elan-worker --connect unix:/tmp/elan.sock --id 1 &
//! ```
//!
//! The coordinator waits (via heartbeat progress) until every member has
//! reached `--until` iterations, then shuts the job down — the `Leave`
//! broadcast makes each worker process exit on its own.

use std::process::exit;
use std::sync::Arc;

use elan::{ElasticRuntime, RuntimeConfig, SocketTransport, Transport};

fn usage() -> ! {
    eprintln!(
        "usage: elan-coordinator --listen <tcp:host:port|unix:/path> \
         [--workers N] [--until ITER]"
    );
    exit(2)
}

fn parse_or_usage<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("elan-coordinator: {flag} needs a valid value");
            usage()
        }
    }
}

fn main() {
    let mut listen: Option<String> = None;
    let mut workers: u32 = 2;
    let mut until: u64 = 20;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = args.next(),
            "--workers" => workers = parse_or_usage(args.next(), "--workers"),
            "--until" => until = parse_or_usage(args.next(), "--until"),
            _ => usage(),
        }
    }
    let Some(addr) = listen else { usage() };

    let transport = match SocketTransport::listen(&addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("elan-coordinator: cannot listen on {addr}: {e}");
            exit(1)
        }
    };
    println!("elan-coordinator: listening on {}", transport.local_addr());
    let transport: Arc<dyn Transport> = Arc::new(transport);
    let rt = ElasticRuntime::builder()
        .config(RuntimeConfig::small(workers))
        .transport(transport)
        .remote_workers(true)
        .start();
    let rt = match rt {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("elan-coordinator: {e}");
            exit(1)
        }
    };
    rt.run_until_iteration(until);
    let report = rt.shutdown();
    println!(
        "elan-coordinator: done — world={} adjustments={} journal_events={}",
        report.final_world_size, report.adjustments, report.journal.total
    );
}
