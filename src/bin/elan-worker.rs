//! Worker process for multi-process mode: dials the coordinator's socket
//! and runs the standard worker loop until the job tells it to leave.
//!
//! ```text
//! elan-worker --connect unix:/tmp/elan.sock --id 0
//! elan-worker --connect tcp:127.0.0.1:7400 --id 2 --role joining
//! elan-worker --connect unix:/tmp/elan.sock --id 1 --role rejoin:0:15
//! ```
//!
//! `--workers` only sizes the `RuntimeConfig` the training-shape fields
//! are derived from; it must match the coordinator's `--workers` so both
//! sides agree on the per-iteration batch and replication chunking.

use std::process::exit;

use elan::core::state::WorkerId;
use elan::{run_remote_worker, RemoteRole, RuntimeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: elan-worker --connect <tcp:host:port|unix:/path> --id N \
         [--role founding|joining|rejoin:<term>:<iter>] [--workers N]"
    );
    exit(2)
}

fn parse_or_usage<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("elan-worker: {flag} needs a valid value");
            usage()
        }
    }
}

fn main() {
    let mut connect: Option<String> = None;
    let mut id: Option<u32> = None;
    let mut role = RemoteRole::Founding;
    let mut workers: u32 = 2;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => connect = args.next(),
            "--id" => id = Some(parse_or_usage(args.next(), "--id")),
            "--workers" => workers = parse_or_usage(args.next(), "--workers"),
            "--role" => {
                let raw: String = parse_or_usage(args.next(), "--role");
                role = match RemoteRole::parse(&raw) {
                    Some(r) => r,
                    None => {
                        eprintln!("elan-worker: bad --role {raw:?}");
                        usage()
                    }
                };
            }
            _ => usage(),
        }
    }
    let (Some(addr), Some(id)) = (connect, id) else {
        usage()
    };

    let cfg = RuntimeConfig::small(workers);
    match run_remote_worker(&addr, WorkerId(id), cfg, role) {
        Ok(Some(view)) => println!(
            "elan-worker {id}: left at iteration {} (checksum {:#018x})",
            view.iteration, view.params_checksum
        ),
        Ok(None) => println!("elan-worker {id}: left before training"),
        Err(e) => {
            eprintln!("elan-worker {id}: {e}");
            exit(1)
        }
    }
}
