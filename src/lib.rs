//! # Elan — elastic deep-learning training, reproduced in Rust
//!
//! This facade crate re-exports the whole reproduction of *"Elan: Towards
//! Generic and Efficient Elastic Training for Deep Learning"* (ICDCS 2020):
//!
//! - [`sim`] — deterministic discrete-event simulation substrate,
//! - [`topology`] — cluster model and the concurrent IO-free replication
//!   planner (§IV),
//! - [`models`] — DL workload, performance, and convergence models (§III),
//! - [`core`] — the Elan system: hybrid scaling, asynchronous coordination,
//!   state replication, serial data loading, AM fault tolerance (§III–§V),
//! - [`rt`] — a live multi-threaded runtime speaking the same protocol,
//! - [`baselines`] — Shutdown-&-Restart and Litz-style baselines (§VI),
//! - [`sched`] — elastic job scheduling simulation (§VI-C).
//!
//! The most common entry points are re-exported at the root: build a live
//! job with [`ElasticRuntime::builder`], observe it through [`EventSink`]s
//! and the [`MetricsRegistry`], and handle every failure as one
//! [`ElanError`].
//!
//! # Examples
//!
//! ```
//! use elan::topology::{ClusterSpec, GpuId, ReplicationPlanner};
//!
//! let topo = ClusterSpec::paper_testbed().build();
//! let plan = ReplicationPlanner::new(&topo).plan(&[GpuId(0)], &[GpuId(1)])?;
//! assert_eq!(plan.transfers().len(), 1);
//! # Ok::<(), elan::topology::PlanError>(())
//! ```
//!
//! Launching a live elastic job through the facade:
//!
//! ```
//! let mut rt = elan::ElasticRuntime::builder().workers(2).start()?;
//! rt.run_until_iteration(10);
//! let report = rt.shutdown();
//! assert!(report.states_consistent());
//! # Ok::<(), elan::ElanError>(())
//! ```

pub use elan_baselines as baselines;
pub use elan_core as core;
pub use elan_models as models;
pub use elan_rt as rt;
pub use elan_sched as sched;
pub use elan_sim as sim;
pub use elan_topology as topology;

pub use elan_core::codec::{DecodeError, WireFrame};
pub use elan_core::obs::{MetricsRegistry, MetricsSnapshot};
pub use elan_core::ElanError;
pub use elan_rt::{
    render_trace_report, run_remote_worker, AdjustmentTrace, CommTopology, ElasticRuntime, Event,
    EventKind, EventSink, JournalSummary, MemoryTransport, ReducePath, RemoteRole, RingBufferSink,
    RuntimeBuilder, RuntimeConfig, ShutdownReport, SocketTransport, Transport, TuningProfile,
};
