//! Offline shim for the `crossbeam` API surface this workspace uses.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! same semantics the live runtime relies on: unbounded MPMC queues,
//! cloneable senders and receivers, disconnect detection on both sides, and
//! blocking/timeout/non-blocking receives. Built on `std::sync` so it
//! compiles with no external dependencies.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending to a channel with no receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender has disconnected and the queue is drained.
        Disconnected,
    }

    /// Errors from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(msg);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake receivers so they observe it.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn try_recv_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            let t = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(10));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }
    }
}
