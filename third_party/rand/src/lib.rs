//! Offline shim for the `rand` API surface this workspace uses.
//!
//! Implements `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods (`gen`, `gen_range`, `gen_bool`) over a
//! xoshiro256**-family generator seeded with SplitMix64. The streams are
//! deterministic and statistically sound for simulation purposes, but are
//! **not** bit-compatible with upstream `rand` — all in-repo consumers only
//! require determinism, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded uniform draw via 128-bit multiply.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256** core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=7);
            assert!((5..=7).contains(&w));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
