//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no network access and no crates.io cache, so
//! external dependencies are vendored as thin, API-compatible wrappers over
//! `std::sync`. Semantics match `parking_lot` where the workspace relies on
//! them: no lock poisoning (a panicking holder does not poison the lock for
//! later users), `Condvar::wait` takes `&mut MutexGuard`, and guards deref
//! to the protected value.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning wrapper over [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning wrapper over [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still usable
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
