//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! Supports `black_box`, `Criterion::{default, sample_size, measurement_time,
//! warm_up_time, bench_function}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Benchmarks run the closure a
//! small, fixed number of iterations and print mean wall time — enough to
//! keep `cargo bench` compiling and producing sane numbers offline, without
//! the statistical machinery of upstream criterion.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-benchmark timing loop handle.
pub struct Bencher {
    iters: u64,
    /// Mean time per iteration from the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.iters as u32;
    }
}

/// Benchmark harness configuration (all knobs accepted, mostly advisory).
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` under the timing loop and prints the mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {id:<40} ~{:?}/iter", b.last_mean);
        self
    }
}

/// Declares a benchmark group; both the `name/config/targets` and plain forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_add(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = bench_add
    );

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn plain_group_form_compiles() {
        criterion_group!(simple, bench_add);
        simple();
    }
}
