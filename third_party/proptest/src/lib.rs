//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! Implements the `proptest!` test macro, `prop_assert*`/`prop_assume`
//! assertions, `ProptestConfig`, range/collection/bool strategies, and a
//! deterministic case runner. Unlike upstream proptest there is no
//! shrinking: a failing case panics with the generated inputs so it can be
//! reproduced (generation is deterministic per seed and case index).

use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Root seed for deterministic generation (env `PROPTEST_SEED` overrides).
    pub seed: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xe1a0_5eed_cafe_f00d);
        ProptestConfig { cases: 64, seed }
    }
}

/// The case runner and error plumbing used by the generated tests.
pub mod test_runner {
    use super::ProptestConfig;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; generate a fresh case.
        Reject(String),
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic value source handed to strategies.
    #[derive(Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Creates a runner rooted at the config's seed.
        pub fn new(config: &ProptestConfig) -> Self {
            TestRunner {
                state: config.seed | 1,
            }
        }

        /// The next 64 uniform bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform f64 in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform value below `bound` (which must be positive).
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRunner;
    use super::{Range, RangeInclusive};

    /// Generates values of an associated type from a runner.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(runner.next_below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return runner.next_u64() as $t;
                    }
                    lo.wrapping_add(runner.next_below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(runner.next_below(span) as $t)
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + runner.next_unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    /// Strategy references delegate.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).new_value(runner)
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use super::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let n = Strategy::new_value(&self.len.clone(), runner);
            (0..n).map(|_| self.elem.new_value(runner)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either `true` or `false`, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Root-module alias, mirroring upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that runs the body across deterministically generated cases. An optional
/// leading `#![proptest_config(expr)]` sets the configuration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg(<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(&config);
            for case in 0..config.cases {
                let mut attempts: u32 = 0;
                loop {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut runner);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => break,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(why),
                        ) => {
                            if attempts >= 1000 {
                                panic!(
                                    "proptest: case {case} rejected {attempts} times \
                                     (last assumption: {why})"
                                );
                            }
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            let inputs: ::std::string::String = [$(
                                ::std::format!("\n    {} = {:?}", stringify!($arg), &$arg)
                            ),+].concat();
                            panic!(
                                "proptest case {case} (seed {}) failed: {msg}\n  inputs:{inputs}",
                                config.seed
                            );
                        }
                    }
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

/// Rejects the current case when its assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn assume_rejects_and_regenerates(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn bool_any_generates(b in crate::bool::ANY) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_override_applies(x in 0u8..=255) {
            prop_assert_ne!(x as u16, 300);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ProptestConfig::default();
        let mut a = crate::test_runner::TestRunner::new(&cfg);
        let mut b = crate::test_runner::TestRunner::new(&cfg);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
