//! A live, multi-threaded runtime speaking the Elan coordination protocol.
//!
//! The simulator in `elan-core` proves the protocol on virtual time; this
//! crate proves it on *real* concurrency: worker threads train a synthetic
//! data-parallel workload with a genuine allreduce ([`comm::CommGroup`]),
//! an application-master thread serves reports and coordinations over a
//! channel [`bus`], and resource adjustments replicate real state buffers
//! between threads along the topology planner's source selection — all
//! without ever stopping the existing workers outside the adjustment
//! pause.
//!
//! Everything the runtime does is observable: a structured [`EventJournal`]
//! records bus faults, replication waves, allreduce rounds, and the
//! adjustment pipeline itself, while a [`TraceRecorder`] spans each
//! adjustment's five phases (request → report → coordinate → replicate →
//! adjust) for the latency breakdown of [`ElasticRuntime::trace_report`].
//!
//! # Examples
//!
//! ```
//! use elan_rt::ElasticRuntime;
//!
//! let mut rt = ElasticRuntime::builder().workers(2).start().unwrap();
//! rt.run_until_iteration(20);
//! rt.scale_out(2);           // two workers join without a restart
//! rt.run_until_iteration(40);
//! let report = rt.shutdown();
//! assert_eq!(report.final_world_size, 4);
//! assert!(report.states_consistent());
//! assert!(report.traces.iter().all(|t| t.is_well_formed()));
//! println!("{}", report.trace_report());
//! ```

// Panic hygiene (DESIGN.md §11): runtime code must not unwrap/expect
// outside tests. Every exception carries a per-function `#[allow]` whose
// justification lives in the workspace-root `verify-allow.toml`, and
// `elan-verify` re-checks the same sites structurally in CI.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bus;
pub mod chaos;
pub mod comm;
pub mod epoch;
pub mod liveness;
pub mod obs;
pub mod reliable;
pub mod remote;
pub mod runtime;
pub mod safety;
pub mod time;
pub mod transport;
pub mod worker;

pub use bus::{Bus, BusBuilder, Endpoint, EndpointId, EndpointStats, Envelope, RtMsg};
pub use chaos::{ChaosPolicy, ChaosStats, EdgeChaos, PartitionWindow};
pub use comm::{
    adaptive_chunk_elems, reference_sum, AllreduceOutcome, CommGroup, CommTopology, ReducePath,
    TuningProfile, DEFAULT_CHUNK_ELEMS,
};
pub use epoch::{
    run_churn, sample_witnesses, shard_checksum, shard_owners, ChurnConfig, ChurnReport, EpochCmd,
    EpochConfig, EpochMachine,
};
pub use liveness::CrashPoint;
pub use obs::{
    render_trace_report, AdjustmentTrace, ChaosFate, Event, EventJournal, EventKind, EventSink,
    JournalSummary, Obs, RingBufferSink, TraceKind, TraceRecorder, DEFAULT_RING_CAPACITY,
};
pub use reliable::{ReliableEndpoint, RtMetrics, RtMetricsSnapshot};
pub use remote::{run_remote_worker, RemoteRole};
pub use runtime::{
    CheckpointSnapshot, ElasticRuntime, RuntimeBuilder, RuntimeConfig, ShutdownReport,
};
pub use safety::{
    check_epoch_safety, check_term_safety, EpochSafetyReport, EpochViolation, TermSafetyReport,
    TermViolation,
};
pub use time::{SlotGuard, ThreadSlot, TimeSource, VirtualClock};
pub use transport::{MemoryTransport, SocketTransport, Transport};
