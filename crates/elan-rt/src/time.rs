//! Deterministic time layer for the live runtime.
//!
//! This is the **only** module in `elan-rt` allowed to touch
//! [`std::time::Instant`] or [`std::thread::sleep`] (enforced by the
//! `WALL_CLOCK` rule in `elan-verify`). Everything else reads time through a
//! [`TimeSource`], which comes in two flavours:
//!
//! - [`TimeSource::real()`] — wall-clock time relative to a per-runtime
//!   epoch. `sleep` is `std::thread::sleep`; parked waits are real waits.
//!   This is the default and is what production deployments use.
//! - [`TimeSource::virtual_seeded`] — a [`VirtualClock`]: logical
//!   nanoseconds that advance **only** when every registered runtime thread
//!   is quiescent (parked or blocked on a deadline). Combined with the
//!   serial run-token scheduler below this makes the whole control plane
//!   deterministic: the same seed produces the same thread interleaving,
//!   the same message order, and therefore a byte-identical
//!   [`EventJournal`](crate::obs::EventJournal).
//!
//! # The run token
//!
//! Determinism needs more than virtual timestamps: if two runtime threads
//! genuinely run in parallel they still race on journal sequence numbers,
//! bus delivery order and message-id allocation (which feeds the chaos
//! fate hash). The virtual clock therefore enforces *cooperative
//! serialization*: at most one **registered** thread executes at a time,
//! holding an implicit run token. A thread releases the token when it
//!
//! - parks ([`TimeSource::park`] / [`TimeSource::park_until`] /
//!   [`TimeSource::sleep`]), or
//! - enters an OS-blocking section ([`TimeSource::blocking`], used around
//!   `JoinHandle::join`), or
//! - deregisters on exit.
//!
//! When no registered thread is runnable, the coordinator auto-advances
//! virtual time to the earliest pending deadline and wakes every thread
//! whose deadline has arrived. When several threads are runnable the next
//! one is picked by a seeded PRNG — different seeds explore different (but
//! individually reproducible) schedules, which is what the `seedsweep`
//! fuzzer sweeps over.
//!
//! Lost-wakeup freedom: because no other registered thread can run between
//! a consumer's failed `try_recv` and its park, any producer's
//! [`TimeSource::wake_all`] necessarily happens either before the check
//! (consumer sees the message) or after the park (consumer is woken).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use elan_sim::{SimDuration, SimTime};
use parking_lot::{Condvar, Mutex};

/// Convert a std [`Duration`] onto the simulated-time axis.
pub fn std_to_sim(d: Duration) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos().min(u128::from(u64::MAX)) as u64)
}

/// Convert a [`SimDuration`] back into a std [`Duration`].
pub fn sim_to_std(d: SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}

/// Identity of a registered virtual-clock thread, handed out by
/// [`TimeSource::create_thread`] *before* the OS thread is spawned so that
/// thread identity is assigned deterministically by the spawner, not by OS
/// scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSlot(u64);

thread_local! {
    /// Virtual-thread id of the current OS thread, if registered.
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// A clock for the runtime: real wall time or a deterministic virtual time.
///
/// Cheap to clone; all clones share the same underlying clock.
#[derive(Clone)]
pub struct TimeSource(Src);

#[derive(Clone)]
enum Src {
    Real(Arc<RealTime>),
    Virtual(Arc<VirtualClock>),
}

impl fmt::Debug for TimeSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Src::Real(_) => f.write_str("TimeSource::Real"),
            Src::Virtual(v) => write!(f, "TimeSource::Virtual(seed={})", v.seed),
        }
    }
}

impl Default for TimeSource {
    fn default() -> Self {
        TimeSource::real()
    }
}

impl TimeSource {
    /// Wall-clock time, measured from the moment this source is created.
    pub fn real() -> Self {
        TimeSource(Src::Real(Arc::new(RealTime {
            epoch: Instant::now(),
        })))
    }

    /// Deterministic virtual time with a seeded scheduler.
    pub fn virtual_seeded(seed: u64) -> Self {
        TimeSource(Src::Virtual(Arc::new(VirtualClock::new(seed))))
    }

    /// True when this source is a [`VirtualClock`].
    pub fn is_virtual(&self) -> bool {
        matches!(self.0, Src::Virtual(_))
    }

    /// Current reading on the simulated-time axis (nanoseconds since the
    /// runtime epoch).
    pub fn now(&self) -> SimTime {
        match &self.0 {
            Src::Real(r) => {
                SimTime::from_nanos(r.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
            }
            Src::Virtual(v) => SimTime::from_nanos(v.inner.lock().now),
        }
    }

    /// The deadline `d` from now, on the simulated axis.
    pub fn deadline_after(&self, d: Duration) -> SimTime {
        self.now() + std_to_sim(d)
    }

    /// Sleep for `d`. Real: `thread::sleep`. Virtual: park the calling
    /// (registered) thread until `now + d`; virtual time advances to the
    /// deadline once every other registered thread is quiescent.
    pub fn sleep(&self, d: Duration) {
        match &self.0 {
            Src::Real(_) => std::thread::sleep(d),
            Src::Virtual(v) => {
                let deadline = v
                    .inner
                    .lock()
                    .now
                    .saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64);
                v.park(Some(deadline));
            }
        }
    }

    /// Park until `deadline` (no-op if already reached on the real clock;
    /// on the virtual clock an expired deadline still yields the run token
    /// once so peers get a turn).
    pub fn park_until(&self, deadline: SimTime) {
        match &self.0 {
            Src::Real(r) => {
                let now = r.epoch.elapsed();
                let target = Duration::from_nanos(deadline.as_nanos());
                if let Some(remaining) = target.checked_sub(now) {
                    if !remaining.is_zero() {
                        std::thread::sleep(remaining);
                    }
                }
            }
            Src::Virtual(v) => v.park(Some(deadline.as_nanos())),
        }
    }

    /// Park until [`TimeSource::wake_all`] is called. Virtual-clock only in
    /// spirit: on the real clock this degrades to a short poll sleep so a
    /// mis-routed call cannot hang forever.
    pub fn park(&self) {
        match &self.0 {
            Src::Real(_) => std::thread::sleep(Duration::from_micros(200)),
            Src::Virtual(v) => v.park(None),
        }
    }

    /// Mark every parked registered thread runnable. Producers call this
    /// after publishing state a parked consumer may be waiting on (bus
    /// delivery, allreduce round completion). Woken threads re-check their
    /// predicate and re-park if it still does not hold — spurious wakes are
    /// harmless under serialization. No-op on the real clock (real waits
    /// use channels/condvars directly).
    pub fn wake_all(&self) {
        if let Src::Virtual(v) = &self.0 {
            v.wake_all();
        }
    }

    /// Reserve a deterministic identity for a thread about to be spawned.
    /// Call on the spawning thread, then hand the slot to the child which
    /// must [`TimeSource::adopt`] it first thing.
    pub fn create_thread(&self) -> ThreadSlot {
        match &self.0 {
            Src::Real(_) => ThreadSlot(u64::MAX),
            Src::Virtual(v) => v.create_thread(),
        }
    }

    /// Bind the calling OS thread to a reserved slot and wait to be
    /// scheduled. Returns a guard that deregisters the thread when dropped
    /// (including on panic, so a crashed thread cannot wedge the clock).
    #[must_use = "dropping the guard deregisters the thread immediately"]
    pub fn adopt(&self, slot: ThreadSlot) -> SlotGuard {
        if let Src::Virtual(v) = &self.0 {
            v.adopt(slot);
        }
        SlotGuard { time: self.clone() }
    }

    /// Register the *calling* thread (used for the controller thread that
    /// owns the runtime handle). Pair with [`TimeSource::deregister`] at
    /// shutdown. No-op on the real clock.
    pub fn register_current(&self) {
        if let Src::Virtual(v) = &self.0 {
            let slot = v.create_thread();
            v.adopt(slot);
        }
    }

    /// Remove the calling thread from the scheduler. Idempotent; no-op on
    /// the real clock or for unregistered threads.
    pub fn deregister(&self) {
        if let Src::Virtual(v) = &self.0 {
            v.deregister();
        }
    }

    /// Run `f` as an *external* section: the calling thread gives up the
    /// run token and stops participating in virtual scheduling while `f`
    /// runs (so `f` may block on the OS — e.g. `JoinHandle::join` on a
    /// registered thread that still needs to be scheduled to finish). The
    /// thread re-enters the scheduler before returning.
    pub fn blocking<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.0 {
            Src::Real(_) => f(),
            Src::Virtual(v) => v.blocking(f),
        }
    }
}

/// Deregistration guard returned by [`TimeSource::adopt`].
pub struct SlotGuard {
    time: TimeSource,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.time.deregister();
    }
}

/// Wall-clock source: the only place `Instant::now()` / `thread::sleep`
/// are legal in `elan-rt`.
struct RealTime {
    epoch: Instant,
}

/// Seeded deterministic clock + cooperative serial scheduler.
///
/// See the [module docs](self) for the protocol. All state lives behind a
/// single mutex with one condvar; registered threads block on the condvar
/// until the scheduler hands them the run token.
pub struct VirtualClock {
    inner: Mutex<ClockInner>,
    cvar: Condvar,
    seed: u64,
}

struct ClockInner {
    /// Logical nanoseconds since the runtime epoch.
    now: u64,
    /// Next thread id to hand out.
    next_id: u64,
    /// Registered threads and their scheduler states. `BTreeMap` so
    /// candidate ordering is deterministic.
    threads: BTreeMap<u64, ThreadState>,
    /// Thread currently holding the run token.
    running: Option<u64>,
    /// PRNG state for schedule picks.
    rng: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    /// Ready to run; waiting for the token.
    Runnable,
    /// Waiting for a wake-up, optionally with a virtual deadline.
    Parked { deadline: Option<u64> },
    /// Outside the virtual world in an OS-blocking section.
    External,
}

impl VirtualClock {
    fn new(seed: u64) -> Self {
        VirtualClock {
            inner: Mutex::new(ClockInner {
                now: 0,
                next_id: 0,
                threads: BTreeMap::new(),
                running: None,
                rng: splitmix64(seed),
            }),
            cvar: Condvar::new(),
            seed,
        }
    }

    fn create_thread(&self) -> ThreadSlot {
        let mut st = self.inner.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.threads.insert(id, ThreadState::Runnable);
        ThreadSlot(id)
    }

    fn adopt(&self, slot: ThreadSlot) {
        CURRENT.set(Some(slot.0));
        let mut st = self.inner.lock();
        loop {
            if st.running == Some(slot.0) {
                return;
            }
            if st.running.is_none() {
                self.schedule_locked(&mut st);
                continue;
            }
            self.cvar.wait(&mut st);
        }
    }

    fn deregister(&self) {
        let Some(my) = CURRENT.take() else { return };
        let mut st = self.inner.lock();
        st.threads.remove(&my);
        if st.running == Some(my) {
            st.running = None;
            self.schedule_locked(&mut st);
        }
        self.cvar.notify_all();
    }

    /// Release the token and wait to be rescheduled (by wake, or by the
    /// deadline arriving once everyone else is quiescent).
    fn park(&self, deadline: Option<u64>) {
        let Some(my) = CURRENT.get() else {
            // Unregistered thread on a virtual clock: nothing to serialize
            // against deterministically — this is a harness bug.
            panic!("virtual clock: park() on a thread that never registered");
        };
        let mut st = self.inner.lock();
        debug_assert_eq!(
            st.running,
            Some(my),
            "parking thread must hold the run token"
        );
        st.threads.insert(my, ThreadState::Parked { deadline });
        st.running = None;
        self.schedule_locked(&mut st);
        self.cvar.notify_all();
        loop {
            if st.running == Some(my) {
                return;
            }
            if st.running.is_none() {
                self.schedule_locked(&mut st);
                continue;
            }
            self.cvar.wait(&mut st);
        }
    }

    fn wake_all(&self) {
        let mut st = self.inner.lock();
        let parked: Vec<u64> = st
            .threads
            .iter()
            .filter(|(_, s)| matches!(s, ThreadState::Parked { .. }))
            .map(|(id, _)| *id)
            .collect();
        for id in parked {
            st.threads.insert(id, ThreadState::Runnable);
        }
        if st.running.is_none() {
            self.schedule_locked(&mut st);
        }
        self.cvar.notify_all();
    }

    fn blocking<R>(&self, f: impl FnOnce() -> R) -> R {
        let Some(my) = CURRENT.get() else {
            return f();
        };
        {
            let mut st = self.inner.lock();
            st.threads.insert(my, ThreadState::External);
            if st.running == Some(my) {
                st.running = None;
                self.schedule_locked(&mut st);
            }
            self.cvar.notify_all();
        }
        let out = f();
        let mut st = self.inner.lock();
        st.threads.insert(my, ThreadState::Runnable);
        loop {
            if st.running == Some(my) {
                break;
            }
            if st.running.is_none() {
                self.schedule_locked(&mut st);
                continue;
            }
            self.cvar.wait(&mut st);
        }
        drop(st);
        out
    }

    /// Pick the next thread to run. Requires `running == None`.
    ///
    /// 1. If any thread is `Runnable`, pick one with the seeded PRNG.
    /// 2. Otherwise advance `now` to the earliest parked deadline and wake
    ///    every thread whose deadline has arrived, then pick.
    /// 3. Otherwise, if a thread is in an external section, leave the token
    ///    unassigned — the external thread restarts scheduling on re-entry.
    /// 4. Otherwise every registered thread is parked without a deadline:
    ///    the virtual world can never progress again. Panic with a dump.
    fn schedule_locked(&self, st: &mut ClockInner) {
        if st.running.is_some() {
            return;
        }
        loop {
            let runnable: Vec<u64> = st
                .threads
                .iter()
                .filter(|(_, s)| **s == ThreadState::Runnable)
                .map(|(id, _)| *id)
                .collect();
            if !runnable.is_empty() {
                st.rng = splitmix64(st.rng);
                let pick = runnable[(st.rng >> 33) as usize % runnable.len()];
                st.running = Some(pick);
                self.cvar.notify_all();
                return;
            }
            let next_deadline = st
                .threads
                .values()
                .filter_map(|s| match s {
                    ThreadState::Parked { deadline: Some(d) } => Some(*d),
                    _ => None,
                })
                .min();
            if let Some(d) = next_deadline {
                st.now = st.now.max(d);
                let due: Vec<u64> = st
                    .threads
                    .iter()
                    .filter(|(_, s)| {
                        matches!(s, ThreadState::Parked { deadline: Some(dl) } if *dl <= st.now)
                    })
                    .map(|(id, _)| *id)
                    .collect();
                for id in due {
                    st.threads.insert(id, ThreadState::Runnable);
                }
                continue;
            }
            if st.threads.is_empty() || st.threads.values().any(|s| *s == ThreadState::External) {
                // Nothing to schedule right now; an external section (or a
                // late registration) will restart the scheduler.
                return;
            }
            panic!(
                "virtual deadlock at t={}ns: every registered thread is parked \
                 without a deadline: {:?}",
                st.now, st.threads
            );
        }
    }
}

/// SplitMix64 step — the schedule PRNG. Small, seedable, and good enough
/// for schedule diversity; *not* used for anything cryptographic.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn real_time_is_monotonic_from_epoch() {
        let t = TimeSource::real();
        let a = t.now();
        let b = t.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_sleep_advances_exactly() {
        let t = TimeSource::virtual_seeded(7);
        t.register_current();
        assert_eq!(t.now(), SimTime::ZERO);
        t.sleep(Duration::from_millis(5));
        assert_eq!(t.now(), SimTime::from_nanos(5_000_000));
        t.sleep(Duration::from_micros(1));
        assert_eq!(t.now(), SimTime::from_nanos(5_001_000));
        t.deregister();
    }

    #[test]
    fn park_until_advances_to_deadline() {
        let t = TimeSource::virtual_seeded(0);
        t.register_current();
        let dl = t.now() + SimDuration::from_millis(3);
        t.park_until(dl);
        assert_eq!(t.now(), dl);
        // Expired deadline: returns without advancing.
        t.park_until(SimTime::from_nanos(1));
        assert_eq!(t.now(), dl);
        t.deregister();
    }

    /// Two child threads interleave sleeps; the observed order must be a
    /// pure function of the seed.
    fn interleaving(seed: u64) -> Vec<u64> {
        let t = TimeSource::virtual_seeded(seed);
        let log = StdArc::new(Mutex::new(Vec::new()));
        t.register_current();
        let mut handles = Vec::new();
        for id in 0..3u64 {
            let slot = t.create_thread();
            let t2 = t.clone();
            let log2 = StdArc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let _reg = t2.adopt(slot);
                for step in 0..4u64 {
                    log2.lock().push(id * 100 + step);
                    t2.sleep(Duration::from_millis(1 + id));
                }
            }));
        }
        for h in handles {
            t.blocking(|| h.join()).ok();
        }
        t.deregister();
        let out = log.lock().clone();
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(interleaving(42), interleaving(42));
        assert_eq!(interleaving(7), interleaving(7));
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        // Not guaranteed for every pair, but these seeds do differ; if this
        // ever fails, pick another pair — the property that matters is
        // same-seed stability, checked above.
        let a: Vec<Vec<u64>> = (0..8).map(interleaving).collect();
        assert!(
            a.iter().any(|s| s != &a[0]),
            "all 8 seeds gave one schedule"
        );
    }

    #[test]
    fn wake_all_unparks_waiters() {
        let t = TimeSource::virtual_seeded(3);
        t.register_current();
        let flag = StdArc::new(AtomicU64::new(0));
        let slot = t.create_thread();
        let t2 = t.clone();
        let flag2 = StdArc::clone(&flag);
        let h = std::thread::spawn(move || {
            let _reg = t2.adopt(slot);
            while flag2.load(Ordering::SeqCst) == 0 {
                t2.park();
            }
            flag2.store(2, Ordering::SeqCst);
        });
        // Let the child reach its park.
        t.sleep(Duration::from_millis(1));
        flag.store(1, Ordering::SeqCst);
        t.wake_all();
        t.blocking(|| h.join()).ok();
        assert_eq!(flag.load(Ordering::SeqCst), 2);
        t.deregister();
    }

    #[test]
    fn blocking_releases_the_token_for_children() {
        let t = TimeSource::virtual_seeded(1);
        t.register_current();
        let slot = t.create_thread();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let _reg = t2.adopt(slot);
            t2.sleep(Duration::from_millis(10));
            99u32
        });
        // Joining inside `blocking` lets the child be scheduled to finish.
        let got = t.blocking(|| h.join()).ok();
        assert_eq!(got, Some(99));
        assert_eq!(t.now(), SimTime::from_nanos(10_000_000));
        t.deregister();
    }

    #[test]
    #[should_panic(expected = "virtual deadlock")]
    fn all_parked_without_deadline_is_a_deadlock() {
        let t = TimeSource::virtual_seeded(5);
        t.register_current();
        t.park(); // nobody will ever wake us
    }

    #[test]
    fn slot_guard_deregisters_on_panic() {
        let t = TimeSource::virtual_seeded(9);
        t.register_current();
        let slot = t.create_thread();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let _reg = t2.adopt(slot);
            panic!("child dies");
        });
        // If the guard failed to deregister, this join would wedge the
        // clock: the parent would block while the dead child still owned a
        // scheduler entry with no deadline.
        let joined = t.blocking(|| h.join());
        assert!(joined.is_err());
        t.sleep(Duration::from_millis(1)); // clock still functional
        t.deregister();
    }

    #[test]
    fn conversions_roundtrip() {
        let d = Duration::from_micros(1234);
        assert_eq!(sim_to_std(std_to_sim(d)), d);
    }
}
