//! The training-worker thread.
//!
//! Each worker owns real parameter and momentum buffers, computes a
//! deterministic synthetic gradient for its data shard, sums gradients
//! through the [`CommGroup`] allreduce, applies
//! SGD-with-momentum, and calls `Coordinate` at every boundary — exactly
//! the per-iteration structure of Fig. 7 with the Elan hooks attached.
//!
//! Because every worker applies the identical reduced gradient to
//! identical starting parameters, all live workers hold bit-identical
//! state at every iteration — the invariant the shutdown report checks
//! and the property state replication relies on (§IV-1).
//!
//! Fault tolerance (§V-D): every control message travels through a
//! [`ReliableEndpoint`] (ids, acks, resends, dedup), the worker beacons a
//! `Heartbeat` every `hb_period` — including from *inside* a blocked
//! allreduce, via [`CommGroup::allreduce_with`] — and an `AmReset` from a
//! replacement application master makes the worker re-send whatever
//! request it is parked on, so an AM crash can never strand it.
//!
//! Partition tolerance: every AM-originated control message carries a
//! monotonic fencing *term*; the worker tracks the highest term it has
//! seen and silently drops (journalling `StaleTermRejected`) anything
//! older, so a partitioned-but-alive predecessor AM cannot steer it. A
//! crashed worker restarts as [`WorkerRole::Rejoin`], presenting its
//! last-known term and boundary iteration, and re-enters through the
//! same chunked state-replication path a joiner uses.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use elan_core::messages::{ChunkAssembler, ChunkPlan, StateKind};
use elan_core::state::WorkerId;
use elan_sim::{SimDuration, SimTime};

use crate::bus::{EndpointId, RtMsg};
use crate::comm::{AllreduceOutcome, CommGroup};
use crate::liveness::SharedControl;
use crate::obs::EventKind;
use crate::reliable::ReliableEndpoint;
use crate::time::{sim_to_std, std_to_sim, TimeSource};

/// Per-worker observable state, published after every iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerView {
    /// Completed iterations.
    pub iteration: u64,
    /// Serial data-loading cursor.
    pub data_cursor: u64,
    /// Checksum of the parameter buffer (bit-exact).
    pub params_checksum: u64,
    /// False once the worker has left the job.
    pub alive: bool,
    /// Real wall time spent parked in coordination (control-plane waits
    /// plus adjustment pauses) — the live counterpart of Fig. 15's pause.
    pub stalled: std::time::Duration,
}

/// Shared telemetry map read by the controller.
pub type Telemetry = Arc<Mutex<HashMap<WorkerId, WorkerView>>>;

/// Static configuration for one worker thread.
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// This worker's id.
    pub id: WorkerId,
    /// Parameter-buffer length.
    pub param_elems: usize,
    /// Iterations between coordinations.
    pub coordination_interval: u64,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Samples consumed per iteration (advances the data cursor).
    pub total_batch: u32,
    /// Liveness-beacon period.
    pub hb_period: Duration,
    /// Receive-poll granularity (also paces retry ticks while parked).
    pub tick: Duration,
    /// Elements per [`RtMsg::StateChunk`] when replicating state.
    pub replication_chunk_elems: usize,
    /// Simulated forward/backward cost per iteration. `ZERO` trains at
    /// full speed; nonzero paces the virtual clock (see
    /// `RuntimeConfig::compute_us`).
    pub compute: Duration,
}

/// How a worker enters the job.
#[derive(Debug, Clone)]
pub enum WorkerRole {
    /// Present at job start: begins training immediately.
    Founding,
    /// Launched by an adjustment: initializes, reports, and waits for
    /// state replication before training (§II steps ② and ④).
    Joining,
    /// Restarted from a checkpoint (the Shutdown-&-Restart path, live).
    Restored {
        /// Parameter buffer to restore.
        params: Arc<Vec<f32>>,
        /// Momentum buffer to restore.
        momentum: Arc<Vec<f32>>,
        /// Iteration to resume from.
        iteration: u64,
        /// Serial data cursor to resume from.
        data_cursor: u64,
    },
    /// Restarted after a crash: runs the `Rejoin` handshake — presents
    /// the crash incarnation's last-known term and boundary iteration,
    /// gets fenced or admitted, and re-fetches state through the same
    /// chunked replication path a joiner uses.
    Rejoin {
        /// Fencing term the worker last observed before crashing.
        term: u64,
        /// Boundary iteration of the last state it had applied.
        iteration: u64,
    },
    /// Open-membership joiner (DESIGN.md §17): announces itself with
    /// `JoinRequest`, is admitted at an epoch boundary by the AM's epoch
    /// machine, warms up over the chunked replication path, then claims
    /// its state digest for the witness vote.
    OpenJoin {
        /// Fault injection: mis-claim the warmup digest so the witness
        /// vote must evict this joiner.
        corrupt: bool,
    },
}

/// Computes the synthetic gradient for `(worker, iteration)` — each
/// worker's "data shard" yields a different, deterministic gradient.
fn gradient(worker: WorkerId, iteration: u64, out: &mut [f32]) {
    let w = worker.0 as u64;
    for (j, g) in out.iter_mut().enumerate() {
        let x = (iteration
            .wrapping_mul(6364136223846793005)
            .wrapping_add(w.wrapping_mul(1442695040888963407))
            .wrapping_add(j as u64))
            % 2048;
        *g = (x as f32 / 2048.0) - 0.5;
    }
}

/// Reference replay of the training computation: the parameters,
/// momentum, and data cursor after `iterations` of data-parallel training
/// on `world_size` workers — single-threaded, for verifying that the live
/// runtime (and checkpoint/restore) is bit-exact.
pub fn simulate_training(
    world_size: u32,
    iterations: u64,
    param_elems: usize,
    learning_rate: f32,
    total_batch: u32,
) -> (Vec<f32>, Vec<f32>, u64) {
    let mut params = vec![0.5f32; param_elems];
    let mut momentum = vec![0.0f32; param_elems];
    let mut grad = vec![0.0f32; param_elems];
    let mut sum = vec![0.0f32; param_elems];
    for iter in 0..iterations {
        sum.iter_mut().for_each(|v| *v = 0.0);
        // Same order as CommGroup: ascending worker id.
        for w in 0..world_size {
            gradient(WorkerId(w), iter, &mut grad);
            for (s, &g) in sum.iter_mut().zip(&grad) {
                *s += g;
            }
        }
        let world = world_size as f32;
        for ((w, m), &s) in params.iter_mut().zip(momentum.iter_mut()).zip(&sum) {
            *m = 0.9 * *m + s / world;
            *w -= learning_rate * *m;
        }
    }
    (params, momentum, iterations * total_batch as u64)
}

/// Bit-exact checksum of a float buffer.
pub fn checksum(buf: &[f32]) -> u64 {
    buf.iter()
        .fold(0u64, |acc, &v| acc.rotate_left(7) ^ u64::from(v.to_bits()))
}

/// The warmup digest an open-membership joiner claims (and a witness
/// recomputes over its own boundary state): a bit-exact fold over both
/// training buffers. At a coordination boundary every data-parallel
/// member holds identical state, so an honestly warmed-up joiner's
/// digest matches every witness's.
pub fn state_digest(params: &[f32], momentum: &[f32]) -> u64 {
    checksum(params) ^ checksum(momentum).rotate_left(1)
}

/// One prepared state chunk: `(kind, index, total, offset, payload)`.
pub type PreparedChunk = (StateKind, u32, u32, u64, Arc<Vec<f32>>);

/// Splits the two state buffers into *interleaved* chunk messages
/// (params chunk `i`, then momentum chunk `i`, …) so the "GPU-state" and
/// "CPU-state" streams overlap on the wire instead of serializing one
/// whole buffer after the other (§IV). The result is built **once per
/// boundary** and `Arc`-shared: each additional destination costs chunk
/// headers plus `Arc` clones, not another full copy of the state.
pub fn build_state_chunks(
    params: &[f32],
    momentum: &[f32],
    chunk_elems: usize,
) -> Vec<PreparedChunk> {
    let plan = ChunkPlan::new(params.len(), chunk_elems);
    let total = plan.n_chunks() as u32;
    let mut out = Vec::with_capacity(2 * plan.n_chunks());
    for (i, range) in plan.ranges() {
        out.push((
            StateKind::Params,
            i as u32,
            total,
            range.start as u64,
            Arc::new(params[range.clone()].to_vec()),
        ));
        out.push((
            StateKind::Momentum,
            i as u32,
            total,
            range.start as u64,
            Arc::new(momentum[range].to_vec()),
        ));
    }
    out
}

/// Streams a prepared snapshot to `to`, one reliable envelope per chunk —
/// per-chunk acks and resends make the transfer resumable: a lossy bus
/// retransmits only the chunks that actually went missing.
pub(crate) fn send_snapshot(
    rep: &mut ReliableEndpoint,
    to: EndpointId,
    chunks: &[PreparedChunk],
    iteration: u64,
    data_cursor: u64,
) {
    for &(kind, index, total, offset, ref data) in chunks {
        rep.send(
            to,
            RtMsg::StateChunk {
                kind,
                iteration,
                data_cursor,
                index,
                total,
                offset,
                data: Arc::clone(data),
            },
        );
    }
}

/// Reassembles a streamed snapshot from [`RtMsg::StateChunk`] messages.
///
/// Tracks one snapshot at a time, keyed by its boundary iteration:
/// chunks of a *newer* snapshot restart the assembly, chunks of an older
/// one (an AM-recovery replay) are ignored, and duplicates are absorbed
/// by the per-kind [`ChunkAssembler`]s. [`offer`](Self::offer) returns
/// the completed snapshot's `(iteration, data_cursor)` exactly once,
/// when both streams are whole.
#[derive(Debug, Default)]
pub struct SnapshotAssembly {
    assembling: Option<u64>,
    done: bool,
    params: Option<ChunkAssembler>,
    momentum: Option<ChunkAssembler>,
}

impl SnapshotAssembly {
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one chunk to the destination buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn offer(
        &mut self,
        kind: StateKind,
        iteration: u64,
        data_cursor: u64,
        index: u32,
        total: u32,
        offset: u64,
        data: &[f32],
        params: &mut [f32],
        momentum: &mut [f32],
    ) -> Option<(u64, u64)> {
        match self.assembling {
            Some(cur) if iteration < cur => return None, // stale replay
            Some(cur) if iteration == cur => {
                if self.done {
                    return None; // late duplicate of a finished stream
                }
            }
            _ => {
                // First chunk seen, or a newer snapshot: restart.
                self.assembling = Some(iteration);
                self.params = None;
                self.momentum = None;
                self.done = false;
            }
        }
        let asm = match kind {
            StateKind::Params => self
                .params
                .get_or_insert_with(|| ChunkAssembler::new(total as usize)),
            StateKind::Momentum => self
                .momentum
                .get_or_insert_with(|| ChunkAssembler::new(total as usize)),
        };
        if asm.accept(index as usize) {
            let off = offset as usize;
            let dst = match kind {
                StateKind::Params => params,
                StateKind::Momentum => momentum,
            };
            dst[off..off + data.len()].copy_from_slice(data);
        }
        let complete = self.params.as_ref().is_some_and(|a| a.is_complete())
            && self.momentum.as_ref().is_some_and(|a| a.is_complete());
        if complete {
            self.done = true;
            Some((iteration, data_cursor))
        } else {
            None
        }
    }
}

/// The fencing term carried by an AM-originated control message, if any.
fn msg_term(msg: &RtMsg) -> Option<u64> {
    match msg {
        RtMsg::Proceed { term, .. }
        | RtMsg::TransferOrder { term, .. }
        | RtMsg::Resume { term, .. }
        | RtMsg::Leave { term }
        | RtMsg::CheckpointOrder { term, .. }
        | RtMsg::WitnessQuery { term, .. }
        | RtMsg::EpochAdvance { term, .. }
        | RtMsg::AmReset { term, .. } => Some(*term),
        _ => None,
    }
}

/// Applies the term fence to one received message: anything carrying a
/// term older than the highest this worker has seen came from a
/// superseded (possibly partitioned-but-alive) AM and is dropped with a
/// [`EventKind::StaleTermRejected`] journal entry; newer terms advance
/// the fence. Messages with no term (data plane, peer traffic) pass.
fn fence(highest_term: &mut u64, msg: RtMsg, rep: &ReliableEndpoint) -> Option<RtMsg> {
    match msg_term(&msg) {
        Some(t) if t < *highest_term => {
            if let Some(journal) = rep.bus().journal() {
                journal.emit(EventKind::StaleTermRejected {
                    term: *highest_term,
                    stale: t,
                });
            }
            None
        }
        Some(t) => {
            *highest_term = t;
            Some(msg)
        }
        None => Some(msg),
    }
}

/// (Re-)announces this worker to the AM: joiners report readiness,
/// rejoiners present their crash incarnation's credentials, and
/// open-membership joiners send `JoinRequest` — carrying their warmup
/// digest claim (`digest`) once state has landed.
fn announce(
    rep: &mut ReliableEndpoint,
    id: WorkerId,
    role: &WorkerRole,
    term: u64,
    iteration: u64,
    epoch: u64,
    digest: Option<u64>,
) {
    match role {
        WorkerRole::Rejoin { .. } => {
            rep.send(
                EndpointId::Am,
                RtMsg::Rejoin {
                    worker: id,
                    term,
                    iteration,
                },
            );
        }
        WorkerRole::OpenJoin { .. } => {
            rep.send(
                EndpointId::Am,
                RtMsg::JoinRequest {
                    worker: id,
                    epoch,
                    digest,
                },
            );
        }
        _ => {
            rep.send(EndpointId::Am, RtMsg::Report { worker: id });
        }
    }
}

/// True (and rearms the timer) when a heartbeat is due.
///
/// A fresh timer (`None`) fires immediately — which is how the worker
/// beacons at startup *without* back-dating a timestamp. (The old code
/// subtracted `hb_period` from the current wall-clock reading to fake an
/// overdue timer, which underflows near the epoch and reads the clock
/// twice; on a virtual clock at t=0 it would simply panic.)
fn heartbeat_due(last: &mut Option<SimTime>, now: SimTime, period: SimDuration) -> bool {
    match *last {
        Some(at) if now.saturating_duration_since(at) < period => false,
        _ => {
            *last = Some(now);
            true
        }
    }
}

/// Runs the worker until it is told to leave (or until a chaos test
/// orders it to play dead, in which case it exits *silently* — a crashed
/// process does not say goodbye).
///
/// The worker publishes [`WorkerView`]s into `telemetry` every iteration
/// and marks itself not-alive when it exits cleanly.
pub fn run_worker(
    cfg: WorkerConfig,
    mut rep: ReliableEndpoint,
    comm: Arc<CommGroup>,
    telemetry: Telemetry,
    role: WorkerRole,
    ctrl: Arc<SharedControl>,
) {
    let time: TimeSource = rep.time().clone();
    let hb_period = std_to_sim(cfg.hb_period);
    let mut params = vec![0.5f32; cfg.param_elems];
    let mut momentum = vec![0.0f32; cfg.param_elems];
    let mut grad = vec![0.0f32; cfg.param_elems];
    let mut iteration: u64 = 0;
    let mut data_cursor: u64 = 0;
    let mut stalled = std::time::Duration::ZERO;
    // A fresh (`None`) timer beacons immediately so the failure detector
    // sees us early.
    let mut last_hb: Option<SimTime> = None;
    // Resume-wave staleness guard: only newer generations un-park us.
    let mut last_seen_gen: u64 = comm.generation();
    // Highest fencing term observed; stale-term AM traffic is dropped.
    let mut highest_term: u64 = 0;

    if let WorkerRole::Restored {
        params: p,
        momentum: m,
        iteration: it,
        data_cursor: dc,
    } = &role
    {
        params.copy_from_slice(p);
        momentum.copy_from_slice(m);
        iteration = *it;
        data_cursor = *dc;
    }
    if let WorkerRole::Rejoin {
        term,
        iteration: it,
    } = &role
    {
        highest_term = *term;
        iteration = *it;
    }
    if matches!(
        role,
        WorkerRole::Joining | WorkerRole::Rejoin { .. } | WorkerRole::OpenJoin { .. }
    ) {
        // Step ②: report readiness after "initialization" (the buffer
        // allocation above), then wait for state replication (step ④).
        // Rejoiners announce with their crash credentials instead; the
        // announce is re-sent periodically because an AM that is
        // mid-adjustment defers admission without replying.
        let open_join = matches!(role, WorkerRole::OpenJoin { .. });
        let corrupt_mask = match role {
            // Fault injection: flip digest bits so witnesses must evict.
            WorkerRole::OpenJoin { corrupt: true } => 0xdead_beef_u64,
            _ => 0,
        };
        // The epoch the AM last announced; JoinRequests carry it so the
        // machine can tell a fresh announce from a stale one.
        let mut known_epoch: u64 = 0;
        announce(
            &mut rep,
            cfg.id,
            &role,
            highest_term,
            iteration,
            known_epoch,
            None,
        );
        let mut last_announce = time.now();
        let mut have_state = false;
        let mut pending_resume: Option<u64> = None;
        let mut assembly = SnapshotAssembly::new();
        loop {
            if ctrl.worker_crashed(cfg.id) {
                return;
            }
            if open_join && ctrl.shutting_down() {
                // A deferred or window-parked joiner is not a member: the
                // AM's `Stop` never sends it a `Leave`, so it must notice
                // the shutdown itself or the teardown join would hang.
                publish(
                    &telemetry,
                    cfg.id,
                    iteration,
                    data_cursor,
                    &params,
                    false,
                    stalled,
                );
                return;
            }
            let _ = rep.tick();
            if heartbeat_due(&mut last_hb, time.now(), hb_period) {
                rep.send_unreliable(
                    EndpointId::Am,
                    RtMsg::Heartbeat {
                        worker: cfg.id,
                        iteration,
                    },
                );
            }
            // Re-announce at heartbeat cadence until state arrives. The
            // transport retries each announce, but its budget is finite: a
            // joiner whose one-shot Report falls inside a partition window
            // longer than the retry budget would otherwise wait silently
            // forever — the AM that eventually serves the adjustment has
            // never heard of it (the joiner predates the AM's AmReset
            // audience). Report/Rejoin/JoinRequest are idempotent at the
            // AM, so fresh announces are always safe. An open joiner keeps
            // announcing even after state lands: its digest claim may have
            // died with a failed-over AM, and a deferred joiner must
            // re-present itself at the next epoch's window.
            if (!have_state || open_join)
                && time.now().saturating_duration_since(last_announce) >= hb_period
            {
                let claim = (open_join && have_state)
                    .then(|| state_digest(&params, &momentum) ^ corrupt_mask);
                announce(
                    &mut rep,
                    cfg.id,
                    &role,
                    highest_term,
                    iteration,
                    known_epoch,
                    claim,
                );
                last_announce = time.now();
            }
            let Some((_, msg)) = rep.recv_timeout(cfg.tick) else {
                continue;
            };
            let Some(msg) = fence(&mut highest_term, msg, &rep) else {
                continue;
            };
            match msg {
                RtMsg::StateChunk {
                    kind,
                    iteration: it,
                    data_cursor: dc,
                    index,
                    total,
                    offset,
                    data,
                } => {
                    // Chunks assemble incrementally; a duplicate stream
                    // from an AM-recovery replay is harmless (state is
                    // bit-identical at a boundary) and dedup'd per chunk.
                    // Never step backwards.
                    if let Some((it, dc)) = assembly.offer(
                        kind,
                        it,
                        dc,
                        index,
                        total,
                        offset,
                        &data,
                        &mut params,
                        &mut momentum,
                    ) {
                        if let Some(journal) = rep.bus().journal() {
                            journal.emit(EventKind::SnapshotApplied {
                                worker: cfg.id,
                                iteration: it,
                            });
                        }
                        if it >= iteration {
                            iteration = it;
                            data_cursor = dc;
                            have_state = true;
                        }
                        if open_join && have_state {
                            // Claim the warmup digest right away — the
                            // witness round gates the whole cohort's
                            // resume, so don't wait out a heartbeat.
                            let claim = Some(state_digest(&params, &momentum) ^ corrupt_mask);
                            announce(
                                &mut rep,
                                cfg.id,
                                &role,
                                highest_term,
                                iteration,
                                known_epoch,
                                claim,
                            );
                            last_announce = time.now();
                        }
                        if let Some(generation) = pending_resume.take() {
                            last_seen_gen = generation;
                            break;
                        }
                    }
                }
                RtMsg::Resume { generation, .. } if generation > last_seen_gen => {
                    if have_state {
                        last_seen_gen = generation;
                        break;
                    }
                    // Resume overtook the transfer (reordered bus): hold it
                    // until the state lands.
                    pending_resume = Some(pending_resume.map_or(generation, |g| g.max(generation)));
                }
                RtMsg::Leave { .. } => {
                    publish(
                        &telemetry,
                        cfg.id,
                        iteration,
                        data_cursor,
                        &params,
                        false,
                        stalled,
                    );
                    return;
                }
                RtMsg::EpochAdvance { epoch, .. } => {
                    // Track the AM's announced epoch so (re-)announces
                    // carry a current window reference.
                    known_epoch = known_epoch.max(epoch);
                }
                RtMsg::AmReset { .. } => {
                    // A replacement AM solicits state afresh (§V-D).
                    let claim = (open_join && have_state)
                        .then(|| state_digest(&params, &momentum) ^ corrupt_mask);
                    announce(
                        &mut rep,
                        cfg.id,
                        &role,
                        highest_term,
                        iteration,
                        known_epoch,
                        claim,
                    );
                    last_announce = time.now();
                }
                _ => {}
            }
        }
    }
    publish(
        &telemetry,
        cfg.id,
        iteration,
        data_cursor,
        &params,
        true,
        stalled,
    );

    loop {
        if ctrl.worker_crashed(cfg.id) {
            return;
        }
        let _ = rep.tick();
        if heartbeat_due(&mut last_hb, time.now(), hb_period) {
            rep.send_unreliable(
                EndpointId::Am,
                RtMsg::Heartbeat {
                    worker: cfg.id,
                    iteration,
                },
            );
        }
        // Forward/backward: the synthetic kernel. The optional compute
        // cost parks this worker so the virtual clock can advance while
        // the cohort trains (time.sleep may return early on a wake; that
        // only shortens the pause, never blocks progress).
        if !cfg.compute.is_zero() {
            time.sleep(cfg.compute);
        }
        gradient(cfg.id, iteration, &mut grad);
        // Gradient aggregation over the collective group. The group picks
        // the engine (flat / chunked / hierarchical) per round from the
        // contributor set and vector length; workers just contribute and
        // help. While blocked on slower members we keep heartbeating so
        // the failure detector can tell a victim from its hostages.
        let outcome = {
            let rep = &mut rep;
            let last_hb = &mut last_hb;
            let ctrl = &ctrl;
            let time = &time;
            comm.allreduce_with(cfg.id, &grad, move || {
                // Keep the retry tracker running while blocked: a joiner we
                // owe (dropped) StateChunks may be the very member this
                // round is waiting on — without resends here the round can
                // never complete.
                let _ = rep.tick();
                if !ctrl.worker_crashed(cfg.id) && heartbeat_due(last_hb, time.now(), hb_period) {
                    rep.send_unreliable(
                        EndpointId::Am,
                        RtMsg::Heartbeat {
                            worker: cfg.id,
                            iteration,
                        },
                    );
                }
            })
        };
        let (sum, world) = match outcome {
            AllreduceOutcome::Sum { sum, world } => (sum, world.max(1) as f32),
            AllreduceOutcome::NotMember => {
                // Evicted (declared dead) or membership changed without a
                // Leave: exit quietly rather than deadlock the group.
                if !ctrl.worker_crashed(cfg.id) {
                    publish(
                        &telemetry,
                        cfg.id,
                        iteration,
                        data_cursor,
                        &params,
                        false,
                        stalled,
                    );
                }
                return;
            }
            AllreduceOutcome::DuplicateContribution => {
                // We already contributed to this round — a protocol bug
                // (or a replayed thread). The group rejected the second
                // contribution rather than overwriting the first; exit
                // rather than train on a sum we never observed.
                publish(
                    &telemetry,
                    cfg.id,
                    iteration,
                    data_cursor,
                    &params,
                    false,
                    stalled,
                );
                return;
            }
        };
        // Optimizer step: SGD with momentum on the averaged gradient. The
        // world size is the one captured with this round's sum, so an
        // eviction mid-round cannot skew the average.
        for ((w, m), &s) in params.iter_mut().zip(momentum.iter_mut()).zip(sum.iter()) {
            *m = 0.9 * *m + s / world;
            *w -= cfg.learning_rate * *m;
        }
        iteration += 1;
        data_cursor += cfg.total_batch as u64;
        if ctrl.worker_crashed(cfg.id) {
            return;
        }
        publish(
            &telemetry,
            cfg.id,
            iteration,
            data_cursor,
            &params,
            true,
            stalled,
        );

        // Coordination boundary (step ③).
        if iteration.is_multiple_of(cfg.coordination_interval) {
            if ctrl.take_worker_boundary_crash(cfg.id, iteration) {
                // Chaos-injected crash: die silently after the SGD step
                // but before Coordinate, leaving the boundary hanging.
                // The restarted incarnation presents these credentials.
                ctrl.record_worker_crash(cfg.id, highest_term, iteration);
                return;
            }
            let parked_at = time.now();
            // Chunked snapshot of this boundary's state, built lazily on
            // the first transfer/checkpoint order and shared (`Arc`)
            // across every destination served at this boundary — the old
            // path cloned both full buffers per destination.
            let mut chunk_cache: Option<Vec<PreparedChunk>> = None;
            rep.send(
                EndpointId::Am,
                RtMsg::Coordinate {
                    worker: cfg.id,
                    iteration,
                },
            );
            loop {
                if ctrl.worker_crashed(cfg.id) {
                    return;
                }
                let _ = rep.tick();
                if heartbeat_due(&mut last_hb, time.now(), hb_period) {
                    rep.send_unreliable(
                        EndpointId::Am,
                        RtMsg::Heartbeat {
                            worker: cfg.id,
                            iteration,
                        },
                    );
                }
                let Some((_, msg)) = rep.recv_timeout(cfg.tick) else {
                    continue;
                };
                let Some(msg) = fence(&mut highest_term, msg, &rep) else {
                    continue;
                };
                match msg {
                    // Only the release of *this* boundary counts — a
                    // chaos-delayed Proceed from an earlier round is stale.
                    RtMsg::Proceed { boundary, .. } if boundary == iteration => break,
                    RtMsg::Resume { generation, .. } if generation > last_seen_gen => {
                        last_seen_gen = generation;
                        break;
                    }
                    RtMsg::TransferOrder { dst, .. } => {
                        // Step ④: stream training state to the joiner as
                        // interleaved params/momentum chunks.
                        let chunks = chunk_cache.get_or_insert_with(|| {
                            build_state_chunks(&params, &momentum, cfg.replication_chunk_elems)
                        });
                        send_snapshot(
                            &mut rep,
                            EndpointId::Worker(dst),
                            chunks,
                            iteration,
                            data_cursor,
                        );
                        let sent = chunks.len() as u32;
                        if let Some(journal) = rep.bus().journal() {
                            journal.emit(EventKind::SnapshotStreamed {
                                worker: cfg.id,
                                chunks: sent,
                            });
                        }
                        rep.send(EndpointId::Am, RtMsg::TransferDone { src: cfg.id, dst });
                    }
                    RtMsg::CheckpointOrder { .. } => {
                        // The S&R path, live: stream the snapshot to the
                        // controller, chunked like any other replication.
                        let chunks = chunk_cache.get_or_insert_with(|| {
                            build_state_chunks(&params, &momentum, cfg.replication_chunk_elems)
                        });
                        send_snapshot(
                            &mut rep,
                            EndpointId::Controller,
                            chunks,
                            iteration,
                            data_cursor,
                        );
                        let sent = chunks.len() as u32;
                        if let Some(journal) = rep.bus().journal() {
                            journal.emit(EventKind::SnapshotStreamed {
                                worker: cfg.id,
                                chunks: sent,
                            });
                        }
                        rep.send(
                            EndpointId::Am,
                            RtMsg::TransferDone {
                                src: cfg.id,
                                dst: cfg.id,
                            },
                        );
                    }
                    RtMsg::WitnessQuery {
                        subject,
                        epoch,
                        probe,
                        ..
                    } => {
                        // Witness step: recompute the digest over *our*
                        // boundary state and vote on the joiner's claim.
                        // We are parked at the very boundary the joiner's
                        // state was streamed from, so an honest claim
                        // matches bit-exactly.
                        let d = state_digest(&params, &momentum);
                        rep.send(
                            EndpointId::Am,
                            RtMsg::WitnessVote {
                                witness: cfg.id,
                                subject,
                                epoch,
                                admit: probe == d,
                                digest: d,
                            },
                        );
                    }
                    RtMsg::Leave { .. } => {
                        stalled += sim_to_std(time.now().saturating_duration_since(parked_at));
                        publish(
                            &telemetry,
                            cfg.id,
                            iteration,
                            data_cursor,
                            &params,
                            false,
                            stalled,
                        );
                        return;
                    }
                    RtMsg::AmReset { .. } => {
                        // A replacement AM lost its predecessor's inbox:
                        // re-announce that we are parked at this boundary.
                        rep.send(
                            EndpointId::Am,
                            RtMsg::Coordinate {
                                worker: cfg.id,
                                iteration,
                            },
                        );
                    }
                    _ => {}
                }
            }
            stalled += sim_to_std(time.now().saturating_duration_since(parked_at));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn publish(
    telemetry: &Telemetry,
    id: WorkerId,
    iteration: u64,
    data_cursor: u64,
    params: &[f32],
    alive: bool,
    stalled: std::time::Duration,
) {
    telemetry.lock().insert(
        id,
        WorkerView {
            iteration,
            data_cursor,
            params_checksum: checksum(params),
            alive,
            stalled,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_is_deterministic_and_shard_specific() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        gradient(WorkerId(0), 5, &mut a);
        gradient(WorkerId(0), 5, &mut b);
        assert_eq!(a, b);
        gradient(WorkerId(1), 5, &mut b);
        assert_ne!(a, b);
        gradient(WorkerId(0), 6, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn checksum_detects_differences() {
        let a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(checksum(&a), checksum(&b));
        b[1] = 2.0000002;
        assert_ne!(checksum(&a), checksum(&b));
    }

    #[test]
    fn gradient_values_are_bounded() {
        let mut g = vec![0.0; 256];
        gradient(WorkerId(3), 99, &mut g);
        assert!(g.iter().all(|v| (-0.5..=0.5).contains(v)));
    }

    #[test]
    fn chunked_snapshot_roundtrips_out_of_order_with_duplicates() {
        let params: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let momentum: Vec<f32> = (0..100).map(|i| -(i as f32)).collect();
        let chunks = build_state_chunks(&params, &momentum, 33);
        assert_eq!(chunks.len(), 2 * 4); // ceil(100/33) chunks per stream
        let mut p = vec![0.0f32; 100];
        let mut m = vec![0.0f32; 100];
        let mut asm = SnapshotAssembly::new();
        let mut finished = None;
        // Deliver in reverse order, every chunk twice (chaos reorder+dup).
        for &(kind, index, total, offset, ref data) in chunks.iter().rev() {
            for _ in 0..2 {
                if let Some(done) =
                    asm.offer(kind, 7, 42, index, total, offset, data, &mut p, &mut m)
                {
                    assert!(finished.is_none(), "completed twice");
                    finished = Some(done);
                }
            }
        }
        assert_eq!(finished, Some((7, 42)));
        assert_eq!(p, params);
        assert_eq!(m, momentum);
    }

    #[test]
    fn snapshot_assembly_restarts_on_newer_and_ignores_stale() {
        let old = vec![1.0f32; 10];
        let new = vec![2.0f32; 10];
        let mut p = vec![0.0f32; 10];
        let mut m = vec![0.0f32; 10];
        let mut asm = SnapshotAssembly::new();
        let old_chunks = build_state_chunks(&old, &old, 10);
        let new_chunks = build_state_chunks(&new, &new, 10);
        // One chunk of the old snapshot lands first…
        let (k, i, t, o, ref d) = old_chunks[0];
        assert!(asm.offer(k, 5, 0, i, t, o, d, &mut p, &mut m).is_none());
        // …then the new snapshot completes…
        let mut done = None;
        for &(k, i, t, o, ref d) in &new_chunks {
            if let Some(f) = asm.offer(k, 10, 99, i, t, o, d, &mut p, &mut m) {
                done = Some(f);
            }
        }
        assert_eq!(done, Some((10, 99)));
        assert_eq!(p, new);
        // …and a stale replay of the old one cannot clobber it.
        for &(k, i, t, o, ref d) in &old_chunks {
            assert!(asm.offer(k, 5, 0, i, t, o, d, &mut p, &mut m).is_none());
        }
        assert_eq!(p, new);
        assert_eq!(m, new);
    }

    #[test]
    fn heartbeat_timer_rearms() {
        let period = SimDuration::from_millis(50);
        let mut last = Some(SimTime::ZERO);
        // 100ms after the last beacon: due, and the timer rearms to `now`.
        let now = SimTime::ZERO + SimDuration::from_millis(100);
        assert!(heartbeat_due(&mut last, now, period));
        assert_eq!(last, Some(now));
        assert!(!heartbeat_due(&mut last, now, period));
        // Exactly one period later: due again.
        assert!(heartbeat_due(&mut last, now + period, period));
    }

    #[test]
    fn fresh_heartbeat_timer_fires_immediately_even_at_the_epoch() {
        // Regression: the worker used to fake "already overdue" by
        // back-dating a wall-clock reading one period into the past — on a
        // clock whose epoch is t=0 (the virtual clock) that subtraction
        // underflows. A `None` timer must be due at t=0 with no arithmetic.
        let period = SimDuration::from_millis(50);
        let mut last: Option<SimTime> = None;
        assert!(heartbeat_due(&mut last, SimTime::ZERO, period));
        assert_eq!(last, Some(SimTime::ZERO));
        assert!(!heartbeat_due(&mut last, SimTime::ZERO, period));
    }
}
