//! A real allreduce for threads: generation-versioned collective group
//! with an **adaptive** reduction engine that picks a strategy per round.
//!
//! Data-parallel training synchronizes gradients with collective
//! communication; the live runtime implements it for worker *threads*.
//! The naive scheme (kept as [`naive::NaiveCommGroup`] for benchmarks and
//! regression tests) has the last arriver serially sum `world × len`
//! floats while holding the group lock, with every caller heap-copying
//! its gradient on entry — exactly the flat-reduction bottleneck the
//! paper's data plane avoids (§IV, §VI). This module replaces it with an
//! adaptive front-end that dispatches each round on `(world, len)`:
//!
//! - **[`flat`] fast path** (small messages): the last arriver reduces
//!   all contributions inline under the group lock — no chunk cursor, no
//!   per-chunk atomics, no helper handoff. Below the crossover the fixed
//!   cost of publishing cooperative work exceeds the reduction itself,
//!   which is why the chunked path used to *lose* to the naive baseline
//!   at `len = 1024`.
//! - **[`chunked`] work-stealing path** (mid-range): the round's inputs
//!   are split into cache-sized chunks whose size adapts to the world
//!   size ([`adaptive_chunk_elems`]); *every blocked waiter* (plus the
//!   last arriver, plus an evicting thread if eviction completes the
//!   round) claims chunks from an atomic work-stealing cursor and
//!   reduces them **outside the group lock**.
//! - **[`hier`] two-level hierarchical path** (large worlds): workers are
//!   grouped by node/socket placement ([`CommTopology`]); the element
//!   space is sharded into one contiguous span per group, each with its
//!   own chunk cursor, so cursor traffic never crosses a socket
//!   boundary. Each group's min-id member is its *leader*: after a
//!   group's own span drains, only the leader steals from other groups'
//!   cursors (the leaders finish the tail among themselves), and the
//!   round-completion broadcast releases everyone.
//!
//! The crossovers come from [`tune`]: a one-shot startup probe on real
//! hardware, or the pinned profile under virtual time so simulations
//! stay bit-deterministic. Every published round journals its chosen
//! strategy via [`EventKind::AllreducePath`].
//!
//! All three paths produce **bit-identical** results: every output
//! element is the f32 sum of the contributions in ascending worker-id
//! order, the exact addition sequence of [`reference_sum`]. (This is why
//! the hierarchical path shards *elements* across groups rather than
//! computing per-group partial sums — f32 addition is not associative,
//! so a sum-of-group-sums could never match the flat fold bit-for-bit.)
//!
//! Zero-copy and allocation discipline are shared by all paths: a caller
//! is *blocked* inside [`CommGroup::allreduce_with`] until its round
//! publishes, so its gradient slice outlives the round by construction
//! (the group records a borrowed `SharedSlice` instead of
//! `data.to_vec()`), and result accumulators are recycled through a
//! round-buffer pool once all holders of a published sum drop their
//! `Arc` ([`CommGroup::pool_allocations`] is asserted flat in tests).
//!
//! A **generation** number changes on every communication-group
//! reconstruction (step ⑤ of an adjustment), so workers can never mix
//! rounds across memberships. Reconfiguration must happen while no
//! allreduce is in flight — Elan guarantees this by adjusting only at
//! coordination boundaries, where every worker is parked in the control
//! plane, not the data plane. Because the strategy and its group plan
//! are recomputed at every round publish from the *actual* member set,
//! an adjustment (or a mid-round eviction) re-plans the hierarchical
//! groups automatically — there is no cached plan to invalidate.

use std::cell::UnsafeCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::sync::OnceLock;

use parking_lot::{Condvar, Mutex};

use elan_core::obs::{Histogram, MetricsRegistry};
use elan_core::state::WorkerId;

use crate::obs::{EventJournal, EventKind};
use crate::time::{std_to_sim, TimeSource};

pub mod chunked;
pub mod flat;
pub mod hier;
pub mod tune;

pub use chunked::{adaptive_chunk_elems, DEFAULT_CHUNK_ELEMS};
pub use hier::CommTopology;
pub use tune::TuningProfile;

use chunked::RoundWork;

/// How often a blocked allreduce caller's `on_wait` callback fires.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Minimum number of topology groups for the hierarchical path to beat
/// the single shared cursor it replaces.
const MIN_HIER_GROUPS: usize = 2;

/// The reduction strategy serving one allreduce round.
///
/// Selected per round by the adaptive dispatcher from `(world, len)` and
/// the attached [`CommTopology`]; journalled via
/// [`EventKind::AllreducePath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReducePath {
    /// Single-owner inline reduce under the lock (small messages).
    Flat,
    /// Work-stealing cooperative reduction over one shared chunk cursor.
    Chunked,
    /// Two-level reduction: element spans sharded across topology groups,
    /// each with a private cursor.
    Hier,
}

impl ReducePath {
    /// Stable `snake_case` name (used in journals and bench reports).
    pub fn name(self) -> &'static str {
        match self {
            ReducePath::Flat => "flat",
            ReducePath::Chunked => "chunked",
            ReducePath::Hier => "hier",
        }
    }
}

impl std::fmt::Display for ReducePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one allreduce call.
#[derive(Debug, Clone, PartialEq)]
pub enum AllreduceOutcome {
    /// Every member contributed; here is the element-wise sum.
    Sum {
        /// Element-wise sum across the members of the completed round.
        sum: Arc<Vec<f32>>,
        /// How many members contributed to (or were counted in) the round
        /// when it completed — captured atomically with the sum, so a
        /// concurrent eviction can never make callers divide by a stale
        /// world size.
        world: u32,
    },
    /// The caller is not a member of the current generation (it was
    /// removed by an adjustment and should leave the data plane).
    NotMember,
    /// The caller already contributed to the in-flight round. This is a
    /// protocol violation (one contribution per member per round); the
    /// duplicate is rejected rather than silently overwriting the
    /// original, in release builds too.
    DuplicateContribution,
}

/// A borrowed view of a blocked contributor's gradient slice.
///
/// # Safety contract
///
/// A `SharedSlice` is only ever read between the moment its round's
/// reduction is published (all contributions present, under the group
/// lock) and the moment the round's result is published. The contributing
/// thread is blocked inside `allreduce_with` for that entire window — it
/// cannot return (and thus cannot invalidate the slice) until
/// `result_round` reaches its round, which happens strictly *after* the
/// final chunk reduction completes. Eviction removes a contribution only
/// under the group lock and only before the round's reduction starts.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SharedSlice {
    ptr: *const f32,
    len: usize,
}

// SAFETY: the raw pointer is only dereferenced under the lifecycle
// contract documented on `SharedSlice` (the owner is parked for the whole
// read window), and f32 data is Plain Old Data.
unsafe impl Send for SharedSlice {}
unsafe impl Sync for SharedSlice {}

impl SharedSlice {
    fn new(data: &[f32]) -> Self {
        SharedSlice {
            ptr: data.as_ptr(),
            len: data.len(),
        }
    }

    /// # Safety
    ///
    /// Caller must uphold the `SharedSlice` lifecycle contract: the
    /// owning contributor is still parked in its allreduce call.
    pub(crate) unsafe fn slice(&self) -> &[f32] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

/// Lock-free work-stealing state of the in-flight cooperative reduction.
///
/// All fields are (re)written under the group lock by `publish_round`
/// *before* `cursor` is reset with `Release` ordering; helpers claim
/// chunks with an `AcqRel` `fetch_add` on `cursor` (or on a group-local
/// cursor inside `work`), which synchronizes-with the reset. Helpers
/// additionally observed `reducing == Some(round)` **under the group
/// lock** before touching the slots, so every unsynchronized field here
/// happens-after the publishing writes.
struct ReduceSlots {
    /// The active round's contributions, sorted by worker id.
    inputs: UnsafeCell<Vec<SharedSlice>>,
    /// Base pointer of the pooled output accumulator.
    out: AtomicPtr<f32>,
    /// The active round's work plan (chunked cursor plan or hierarchical
    /// group spans). Rebuilt at every publish from the actual members.
    work: UnsafeCell<Option<RoundWork>>,
    /// Next chunk index to claim on the chunked path (work-stealing
    /// cursor); doubles as the publishing `Release` fence for both paths.
    cursor: AtomicUsize,
    /// Chunks fully reduced so far (across all groups on the hier path).
    done: AtomicUsize,
}

// SAFETY: `inputs` and `work` are written only under the group lock while
// no helper can hold a claimed chunk (a new round cannot be published
// until the previous round's chunks are all done), and read only by
// helpers that observed the published round under the group lock.
unsafe impl Send for ReduceSlots {}
unsafe impl Sync for ReduceSlots {}

/// How the group chooses a reduction strategy.
enum PathPolicy {
    /// `with_chunk_elems` compatibility mode: always the chunked engine
    /// with a fixed chunk size (tests pin exact chunk geometries).
    FixedChunk { chunk_elems: usize },
    /// Per-round dispatch on `(world, len)` with the given crossovers and
    /// optional topology for the hierarchical path.
    Adaptive {
        profile: TuningProfile,
        topology: Option<CommTopology>,
    },
}

/// Per-path round-latency histograms (attached by the runtime).
struct PathMetrics {
    flat: Histogram,
    chunked: Histogram,
    hier: Histogram,
}

impl PathMetrics {
    fn for_path(&self, path: ReducePath) -> &Histogram {
        match path {
            ReducePath::Flat => &self.flat,
            ReducePath::Chunked => &self.chunked,
            ReducePath::Hier => &self.hier,
        }
    }
}

#[derive(Debug)]
struct GroupState {
    generation: u64,
    members: BTreeSet<WorkerId>,
    round: u64,
    /// Per-member borrowed contributions of the open round, sorted by
    /// worker id (sorted insertion), so the reduction consumes them in
    /// worker-id order and the f32 sum is bit-deterministic regardless of
    /// thread arrival order. Cleared (capacity retained) when the round's
    /// reduction is published.
    contributions: Vec<(WorkerId, SharedSlice)>,
    /// `Some(round)` while that round's cooperative reduction is in
    /// flight (published but not yet finished). Never set by the flat
    /// path, which completes inline.
    reducing: Option<u64>,
    /// World size captured when the in-flight round was published.
    reducing_world: u32,
    /// Strategy serving the in-flight round.
    reducing_path: ReducePath,
    /// Journal timestamp (µs) when the in-flight round published; drives
    /// the per-path latency histograms.
    reducing_since_us: u64,
    /// The accumulator being reduced into — uniquely owned here (plus the
    /// raw pointer in the slots) until the round finishes.
    out_buf: Option<Arc<Vec<f32>>>,
    /// Recycled accumulator buffers. An entry is reusable once its strong
    /// count returns to 1 (every consumer of that round's sum dropped its
    /// handle and the result pointer moved on).
    pool: Vec<Arc<Vec<f32>>>,
    /// Fresh `O(len)` buffer allocations performed — flat after warm-up.
    pool_fresh: u64,
    /// Result of the last completed round.
    result: Arc<Vec<f32>>,
    result_round: u64,
    /// World size captured when the last round completed.
    result_world: u32,
}

/// A dynamic-membership allreduce group.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use elan_core::state::WorkerId;
/// use elan_rt::CommGroup;
///
/// let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 4));
/// let g2 = Arc::clone(&group);
/// let t = std::thread::spawn(move || g2.allreduce(WorkerId(1), &[1.0; 4]));
/// let a = group.allreduce(WorkerId(0), &[2.0; 4]);
/// let b = t.join().unwrap();
/// assert_eq!(a, b);
/// ```
pub struct CommGroup {
    state: Mutex<GroupState>,
    cvar: Condvar,
    slots: ReduceSlots,
    /// Vector length every contribution and result must have.
    len: usize,
    policy: PathPolicy,
    /// Set once by the runtime builder; rounds/evictions/reconfigurations
    /// emit journal events when present.
    journal: OnceLock<Arc<EventJournal>>,
    /// Set once by the runtime builder. Under a virtual [`TimeSource`]
    /// blocked callers park on the clock (deterministic, zero wall time)
    /// instead of on the condvar.
    time: OnceLock<TimeSource>,
    /// Set once by the runtime builder: per-path latency histograms.
    metrics: OnceLock<PathMetrics>,
}

impl std::fmt::Debug for CommGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("CommGroup")
            .field("generation", &st.generation)
            .field("members", &st.members)
            .field("round", &st.round)
            .field("len", &self.len)
            .finish()
    }
}

impl CommGroup {
    /// Creates an adaptive group over `members` reducing vectors of `len`
    /// elements, using the pinned tuning profile and no topology (the
    /// hierarchical path stays off until a [`CommTopology`] is supplied
    /// via [`CommGroup::with_tuning`]).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `len` is zero.
    pub fn new(members: impl IntoIterator<Item = WorkerId>, len: usize) -> Self {
        Self::with_tuning(members, len, TuningProfile::pinned(), None)
    }

    /// Creates an adaptive group with explicit crossovers and an optional
    /// topology enabling the hierarchical path. This is the runtime's
    /// constructor: it passes the probed (or pinned, under virtual time)
    /// [`TuningProfile`] and the builder's [`CommTopology`].
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `len` is zero.
    pub fn with_tuning(
        members: impl IntoIterator<Item = WorkerId>,
        len: usize,
        profile: TuningProfile,
        topology: Option<CommTopology>,
    ) -> Self {
        Self::with_policy(members, len, PathPolicy::Adaptive { profile, topology })
    }

    /// Creates a group pinned to the chunked engine with an explicit
    /// chunk size (elements). Adaptive dispatch is disabled: every round
    /// runs the work-stealing path with this exact chunk geometry, which
    /// is what determinism tests and benchmarks pin against.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `len` or `chunk_elems` is zero.
    pub fn with_chunk_elems(
        members: impl IntoIterator<Item = WorkerId>,
        len: usize,
        chunk_elems: usize,
    ) -> Self {
        assert!(chunk_elems > 0, "chunk size must be non-zero");
        Self::with_policy(members, len, PathPolicy::FixedChunk { chunk_elems })
    }

    fn with_policy(
        members: impl IntoIterator<Item = WorkerId>,
        len: usize,
        policy: PathPolicy,
    ) -> Self {
        let members: BTreeSet<WorkerId> = members.into_iter().collect();
        assert!(!members.is_empty(), "group needs at least one member");
        assert!(len > 0, "vectors must be non-empty");
        CommGroup {
            state: Mutex::new(GroupState {
                generation: 0,
                members,
                round: 0,
                contributions: Vec::new(),
                reducing: None,
                reducing_world: 0,
                reducing_path: ReducePath::Flat,
                reducing_since_us: 0,
                out_buf: None,
                pool: Vec::new(),
                pool_fresh: 0,
                result: Arc::new(vec![0.0; len]),
                result_round: u64::MAX,
                result_world: 0,
            }),
            cvar: Condvar::new(),
            slots: ReduceSlots {
                inputs: UnsafeCell::new(Vec::new()),
                out: AtomicPtr::new(std::ptr::null_mut()),
                work: UnsafeCell::new(None),
                cursor: AtomicUsize::new(usize::MAX),
                done: AtomicUsize::new(0),
            },
            len,
            policy,
            journal: OnceLock::new(),
            time: OnceLock::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Attaches the runtime's event journal (one-shot; later calls are
    /// ignored). Rounds, evictions, and reconfigurations then emit
    /// [`EventKind::AllreduceRound`]-family events, and every publish
    /// journals its strategy via [`EventKind::AllreducePath`].
    pub fn set_journal(&self, journal: Arc<EventJournal>) {
        let _ = self.journal.set(journal);
    }

    /// Attaches the runtime's clock (one-shot; later calls are ignored).
    /// Required for deterministic simulation: virtual-time callers must
    /// park on the clock so the scheduler can account for them.
    pub fn set_time(&self, time: TimeSource) {
        let _ = self.time.set(time);
    }

    /// Attaches per-path round-latency histograms from the runtime's
    /// metrics registry (one-shot; later calls are ignored). Rounds then
    /// record `allreduce.<path>.round_us`.
    pub fn set_metrics(&self, registry: &MetricsRegistry) {
        let _ = self.metrics.set(PathMetrics {
            flat: registry.histogram("allreduce.flat.round_us"),
            chunked: registry.histogram("allreduce.chunked.round_us"),
            hier: registry.histogram("allreduce.hier.round_us"),
        });
    }

    /// The attached virtual clock, if any (`None` in real time — the
    /// condvar path needs no clock).
    fn virtual_time(&self) -> Option<&TimeSource> {
        self.time.get().filter(|t| t.is_virtual())
    }

    /// Wakes parked virtual-time callers after publishing state they may
    /// be waiting on (pairs every `cvar.notify_all`).
    fn wake_virtual(&self) {
        if let Some(t) = self.virtual_time() {
            t.wake_all();
        }
    }

    /// Test-only: blocks on the condvar (no sleep-polling) until the open
    /// round holds at least `n` contributions. Contribution inserts notify
    /// the condvar, so this returns as soon as the `n`-th one lands.
    #[cfg(test)]
    fn wait_for_contributions(&self, n: usize) {
        let mut st = self.state.lock();
        while st.contributions.len() < n {
            self.cvar.wait(&mut st);
        }
    }

    /// Current generation (bumps on every reconfiguration).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Current members.
    pub fn members(&self) -> Vec<WorkerId> {
        self.state.lock().members.iter().copied().collect()
    }

    /// World size of the current generation.
    pub fn world_size(&self) -> u32 {
        self.state.lock().members.len() as u32
    }

    /// Number of contributions parked in the open round (diagnostic —
    /// the value is stale the moment the lock drops).
    pub fn pending_contributions(&self) -> usize {
        self.state.lock().contributions.len()
    }

    /// The reduction chunk size (elements) a full-membership round would
    /// use on the chunked path: the fixed size for
    /// [`CommGroup::with_chunk_elems`] groups, else the world-coupled
    /// [`adaptive_chunk_elems`] derivation.
    pub fn chunk_elems(&self) -> usize {
        match &self.policy {
            PathPolicy::FixedChunk { chunk_elems } => *chunk_elems,
            PathPolicy::Adaptive { .. } => adaptive_chunk_elems(self.len, self.world_size()),
        }
    }

    /// The strategy the dispatcher would select for a full-membership
    /// round right now (the actual choice is re-made at every round
    /// publish from the members present).
    pub fn planned_path(&self) -> ReducePath {
        let st = self.state.lock();
        self.select_path(st.members.len() as u32, &st.members)
    }

    /// Fresh `O(len)` accumulator allocations performed so far. Flat
    /// after warm-up: the steady-state hot path recycles pooled buffers
    /// instead of allocating per round.
    pub fn pool_allocations(&self) -> u64 {
        self.state.lock().pool_fresh
    }

    /// Per-round dispatch: flat below the length crossover, hierarchical
    /// for large worlds with enough topology groups, chunked otherwise.
    fn select_path(&self, world: u32, members: &BTreeSet<WorkerId>) -> ReducePath {
        match &self.policy {
            PathPolicy::FixedChunk { .. } => ReducePath::Chunked,
            PathPolicy::Adaptive { profile, topology } => {
                if world <= 1 || self.len <= profile.flat_max_len {
                    ReducePath::Flat
                } else if world >= profile.hier_min_world {
                    match topology {
                        Some(t)
                            if hier::domain_count(t, members.iter().copied())
                                >= MIN_HIER_GROUPS =>
                        {
                            ReducePath::Hier
                        }
                        _ => ReducePath::Chunked,
                    }
                } else {
                    ReducePath::Chunked
                }
            }
        }
    }

    /// Contributes `data` to the current round and blocks until every
    /// member has contributed; returns the element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the group's vector length.
    pub fn allreduce(&self, worker: WorkerId, data: &[f32]) -> AllreduceOutcome {
        self.allreduce_with(worker, data, || {})
    }

    /// Like [`allreduce`](CommGroup::allreduce), but invokes `on_wait`
    /// (with the group lock released) roughly every 50 ms while blocked
    /// waiting for slower members.
    ///
    /// This is how live workers keep heartbeating the application master
    /// from inside the data plane: without it, one dead member would make
    /// every survivor fall silent too, and the failure detector could not
    /// tell the victim from the hostages.
    ///
    /// While blocked, the caller also *works*: once the round's inputs
    /// are complete, every parked caller claims reduction chunks from the
    /// shared (or, on the hierarchical path, its own group's) cursor
    /// instead of idling on the condvar.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the group's vector length.
    pub fn allreduce_with(
        &self,
        worker: WorkerId,
        data: &[f32],
        mut on_wait: impl FnMut(),
    ) -> AllreduceOutcome {
        let mut st = self.state.lock();
        if !st.members.contains(&worker) {
            return AllreduceOutcome::NotMember;
        }
        assert_eq!(self.len, data.len(), "vector length mismatch");
        match st.contributions.binary_search_by_key(&worker, |(w, _)| *w) {
            Ok(_) => return AllreduceOutcome::DuplicateContribution,
            Err(pos) => st
                .contributions
                .insert(pos, (worker, SharedSlice::new(data))),
        }
        let my_round = st.round;
        // Announce the contribution to the test-only partial-round
        // watchers (`wait_for_contributions`). Production waiters only
        // care about publish/finish, and waking `world` parked threads
        // per contribution is an O(world²) context-switch storm per
        // round — measurably sinking the flat path at world ≥ 8 — so
        // the notify stays out of non-test builds.
        #[cfg(test)]
        self.cvar.notify_all();

        if st.contributions.len() == st.members.len() {
            // Last arriver: publish the reduction (the flat path completes
            // it right here; the others hand work to the helpers below).
            self.publish_round(&mut st);
        }
        // Wait for the round to publish its result, helping with the
        // reduction when it is in flight and surfacing periodic wait
        // ticks otherwise.
        let mut helped = false;
        while st.result_round != my_round {
            if !helped && st.reducing == Some(my_round) {
                drop(st);
                self.help_reduce(Some(worker));
                helped = true;
                st = self.state.lock();
                continue;
            }
            match self.virtual_time() {
                Some(time) => {
                    // Virtual time: park on the clock (releasing the group
                    // lock) so the scheduler knows this thread is blocked;
                    // a round completion wakes us early via `wake_virtual`,
                    // otherwise the wait-slice deadline fires `on_wait`.
                    let deadline = time.now() + std_to_sim(WAIT_SLICE);
                    drop(st);
                    time.park_until(deadline);
                    on_wait();
                    st = self.state.lock();
                }
                None => {
                    if self.cvar.wait_for(&mut st, WAIT_SLICE).timed_out() {
                        drop(st);
                        on_wait();
                        st = self.state.lock();
                    }
                }
            }
        }
        AllreduceOutcome::Sum {
            sum: Arc::clone(&st.result),
            world: st.result_world,
        }
    }

    /// Acquires an output accumulator: recycles a pooled buffer whose
    /// previous consumers have all dropped their handles, else allocates.
    /// Returns the buffer and its (uniquely owned) base pointer.
    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (CommGroup::acquire_accumulator)
    fn acquire_accumulator(&self, st: &mut GroupState) -> (Arc<Vec<f32>>, *mut f32) {
        let mut buf = match st.pool.iter().position(|b| Arc::strong_count(b) == 1) {
            Some(i) => st.pool.swap_remove(i),
            None => {
                st.pool_fresh += 1;
                Arc::new(vec![0.0f32; self.len])
            }
        };
        let ptr = Arc::get_mut(&mut buf)
            .expect("pooled buffer uniquely owned")
            .as_mut_ptr();
        (buf, ptr)
    }

    /// Closes the open round: selects a strategy for the contributors
    /// actually present and either completes the reduction inline (flat)
    /// or transitions into the cooperative-reduction phase (chunked /
    /// hierarchical). Must be called with the lock held and a complete
    /// contribution set.
    fn publish_round(&self, st: &mut GroupState) {
        debug_assert!(st.reducing.is_none(), "previous reduction still active");
        debug_assert!(!st.contributions.is_empty());
        let world = st.members.len() as u32;
        let round = st.round;
        let path = self.select_path(world, &st.members);
        let now_us = self.journal.get().map(|j| j.now_us()).unwrap_or(0);

        if path == ReducePath::Flat {
            // Flat fast path: reduce inline under the lock. No cursor, no
            // round-buffer handoff, no per-chunk atomics — the entire
            // round completes before the lock drops.
            let (buf, out_ptr) = self.acquire_accumulator(st);
            // SAFETY: `buf` is uniquely owned (checked by
            // `acquire_accumulator`) and we hold the group lock; the
            // contributions are borrowed slices of contributors parked
            // for the whole round (see `SharedSlice`).
            unsafe {
                let out = std::slice::from_raw_parts_mut(out_ptr, self.len);
                flat::reduce_into(&st.contributions, out);
            }
            st.contributions.clear();
            if let Some(journal) = self.journal.get() {
                journal.emit(EventKind::AllreducePath {
                    round,
                    path,
                    world,
                    groups: 1,
                });
            }
            if let Some(m) = self.metrics.get() {
                let elapsed = self
                    .journal
                    .get()
                    .map(|j| j.now_us().saturating_sub(now_us))
                    .unwrap_or(0);
                m.for_path(path).record(elapsed);
            }
            self.install_result(st, buf, round, world);
            return;
        }

        // Cooperative paths: build this round's work plan from the
        // contributors actually present (membership may have shrunk since
        // the last round — the plan, including hierarchical groups, is
        // re-derived every time).
        let (work, path) = match path {
            ReducePath::Hier => {
                let workers: Vec<WorkerId> = st.contributions.iter().map(|(w, _)| *w).collect();
                let topology = match &self.policy {
                    PathPolicy::Adaptive {
                        topology: Some(t), ..
                    } => t,
                    // select_path only returns Hier with a topology.
                    _ => unreachable!("hier path selected without a topology"),
                };
                let groups = hier::plan_groups(topology, &workers, self.len);
                if groups.len() >= MIN_HIER_GROUPS {
                    (RoundWork::hier(groups), ReducePath::Hier)
                } else {
                    // Tiny vectors can collapse every span into one group;
                    // a single cursor is then strictly better.
                    (self.chunked_work(world), ReducePath::Chunked)
                }
            }
            _ => (self.chunked_work(world), ReducePath::Chunked),
        };
        let n_chunks = work.n_chunks();
        let groups = work.n_groups() as u32;

        let (buf, out_ptr) = self.acquire_accumulator(st);
        // SAFETY: no helper holds a claimed chunk (the previous round's
        // chunks were all done before its result published, and a new
        // round cannot publish before the previous result does), so we
        // have exclusive access to `inputs` and `work` under the lock.
        unsafe {
            let inputs = &mut *self.slots.inputs.get();
            inputs.clear();
            inputs.extend(st.contributions.iter().map(|(_, s)| *s));
            *self.slots.work.get() = Some(work);
        }
        st.contributions.clear();
        self.slots.out.store(out_ptr, Ordering::Relaxed);
        self.slots.done.store(0, Ordering::Relaxed);
        // The Release reset publishes `inputs`/`work`/`out`/`done` to
        // every helper whose claiming fetch_add observes it.
        self.slots.cursor.store(
            if n_chunks == 0 { usize::MAX } else { 0 },
            Ordering::Release,
        );
        st.out_buf = Some(buf);
        st.reducing = Some(round);
        st.reducing_world = world;
        st.reducing_path = path;
        st.reducing_since_us = now_us;
        if let Some(journal) = self.journal.get() {
            journal.emit(EventKind::AllreducePath {
                round,
                path,
                world,
                groups,
            });
        }
        // Wake parked waiters so they become reduction helpers.
        self.cvar.notify_all();
        self.wake_virtual();
    }

    /// The chunked path's work plan for a `world`-member round.
    fn chunked_work(&self, world: u32) -> RoundWork {
        let chunk = match &self.policy {
            PathPolicy::FixedChunk { chunk_elems } => *chunk_elems,
            PathPolicy::Adaptive { .. } => adaptive_chunk_elems(self.len, world),
        };
        RoundWork::chunked(self.len, chunk)
    }

    /// Claims and reduces chunks until every cursor this thread may drain
    /// is exhausted. The thread that completes the final chunk publishes
    /// the result. `me` is the helping contributor (if any): on the
    /// hierarchical path it drains its own group's span first and then
    /// steals cross-group only if it is the group's leader; an anonymous
    /// helper (an evicting thread) sweeps every group.
    fn help_reduce(&self, me: Option<WorkerId>) {
        // SAFETY: callers observed `reducing == Some(round)` under the
        // group lock (or published the round themselves), which
        // happens-after `publish_round`'s writes to the slots.
        let work = unsafe { &*self.slots.work.get() };
        let Some(work) = work else { return };
        match work {
            RoundWork::Chunked { plan } => {
                let n_chunks = plan.n_chunks();
                loop {
                    let c = self.slots.cursor.fetch_add(1, Ordering::AcqRel);
                    if c >= n_chunks {
                        return;
                    }
                    // SAFETY: chunk `c` was claimed by exactly this thread
                    // (the fetch_add is a unique ticket), so the output
                    // range is written by one thread only; the inputs are
                    // borrowed slices of contributors parked for the whole
                    // round (see `SharedSlice`).
                    unsafe {
                        chunked::reduce_range(
                            &*self.slots.inputs.get(),
                            self.slots.out.load(Ordering::Relaxed),
                            plan.range(c),
                        );
                    }
                    if self.slots.done.fetch_add(1, Ordering::AcqRel) + 1 == n_chunks {
                        self.finish_round();
                        return;
                    }
                }
            }
            RoundWork::Hier { groups, n_chunks } => {
                self.drain_hier(me, groups, *n_chunks);
            }
        }
    }

    /// The hierarchical drain: own group's span first; then, for group
    /// leaders (min-id member) and anonymous helpers, a cross-group sweep
    /// so the tail cannot starve even if other groups' members are all
    /// momentarily outside the lock in `on_wait` callbacks.
    fn drain_hier(&self, me: Option<WorkerId>, groups: &[hier::GroupWork], n_chunks: usize) {
        let own = me.and_then(|w| groups.iter().position(|g| g.has_member(w)));
        let is_leader = match (me, own) {
            (Some(w), Some(i)) => groups[i].leader() == w,
            // Anonymous helpers and members whose span collapsed to
            // nothing sweep everything.
            _ => true,
        };
        let start = own.unwrap_or(0);
        for i in 0..groups.len() {
            let g = &groups[(start + i) % groups.len()];
            let group_chunks = g.plan.n_chunks();
            loop {
                let c = g.cursor.fetch_add(1, Ordering::AcqRel);
                if c >= group_chunks {
                    break;
                }
                let local = g.plan.range(c);
                let range = (g.span_start + local.start)..(g.span_start + local.end);
                // SAFETY: chunk `c` of this group was claimed by exactly
                // this thread (unique ticket); the global range is disjoint
                // across groups (contiguous spans) and across chunks within
                // a group, so each output element is written once.
                unsafe {
                    chunked::reduce_range(
                        &*self.slots.inputs.get(),
                        self.slots.out.load(Ordering::Relaxed),
                        range,
                    );
                }
                if self.slots.done.fetch_add(1, Ordering::AcqRel) + 1 == n_chunks {
                    self.finish_round();
                    return;
                }
            }
            if !is_leader {
                // Non-leaders stop after their own span: the leaders
                // finish the tail among themselves (less cursor traffic),
                // and the round-completion broadcast releases everyone.
                return;
            }
        }
    }

    /// Publishes the finished accumulator as the round result and opens
    /// the next round. Called by whichever helper reduced the last chunk.
    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (CommGroup::finish_round)
    fn finish_round(&self) {
        let mut st = self.state.lock();
        let buf = st.out_buf.take().expect("reducing buffer present");
        let round = st.reducing.take().expect("round was reducing");
        let world = st.reducing_world;
        if let (Some(m), Some(j)) = (self.metrics.get(), self.journal.get()) {
            m.for_path(st.reducing_path)
                .record(j.now_us().saturating_sub(st.reducing_since_us));
        }
        self.install_result(&mut st, buf, round, world);
    }

    /// Installs a completed round's accumulator as the published result,
    /// keeps a pool handle for recycling, journals the round, and wakes
    /// every waiter. Lock held.
    fn install_result(&self, st: &mut GroupState, buf: Arc<Vec<f32>>, round: u64, world: u32) {
        // Keep a pool handle so the buffer is recycled once every
        // consumer of this sum drops its Arc.
        st.pool.push(Arc::clone(&buf));
        st.result = buf;
        st.result_round = round;
        st.result_world = world;
        st.round = round + 1;
        if let Some(journal) = self.journal.get() {
            journal.emit(EventKind::AllreduceRound { round, world });
        }
        self.cvar.notify_all();
        self.wake_virtual();
    }

    /// Removes a (presumed dead) member mid-generation, discarding any
    /// contribution it made to the in-flight round; returns whether it was
    /// a member.
    ///
    /// If the victim was the only member the round was still waiting for,
    /// eviction completes the round on the spot, releasing the surviving
    /// members with a sum over the survivors — [`AllreduceOutcome::Sum`]
    /// carries the shrunken `world` so their averages stay correct. The
    /// round's strategy (and, on the hierarchical path, its group plan)
    /// is selected at this publish from the *surviving* contributors, so
    /// a membership change mid-round re-plans automatically. This is the
    /// data-plane half of failure-driven scale-in: the control plane
    /// evicts first so nobody blocks, then reconfigures the group at the
    /// next boundary. The evicting thread itself helps reduce, so the
    /// round is guaranteed to complete even if every survivor is
    /// momentarily outside the lock in its `on_wait` callback.
    pub fn evict(&self, worker: WorkerId) -> bool {
        let mut st = self.state.lock();
        let was_member = st.members.remove(&worker);
        if was_member {
            if let Some(journal) = self.journal.get() {
                journal.emit(EventKind::WorkerEvicted { worker });
            }
        }
        if let Ok(pos) = st.contributions.binary_search_by_key(&worker, |(w, _)| *w) {
            st.contributions.remove(pos);
        }
        if was_member
            && !st.members.is_empty()
            && st.reducing.is_none()
            && !st.contributions.is_empty()
            && st.contributions.len() == st.members.len()
        {
            self.publish_round(&mut st);
            // The flat path completes inline; only a cooperative
            // publication needs the evictor's help.
            let published = st.reducing.is_some();
            drop(st);
            if published {
                self.help_reduce(None);
            }
        }
        was_member
    }

    /// Reconstructs the communication group (step ⑤): replaces the member
    /// set and bumps the generation. Must not race an in-flight round.
    /// Hierarchical group plans need no explicit invalidation — they are
    /// re-derived from the member set at every round publish.
    ///
    /// # Panics
    ///
    /// Panics if called while contributions are pending or a reduction is
    /// in flight, or with an empty member set.
    pub fn reconfigure(&self, members: impl IntoIterator<Item = WorkerId>) -> u64 {
        let mut st = self.state.lock();
        assert!(
            st.contributions.is_empty() && st.reducing.is_none(),
            "reconfigure raced an in-flight allreduce round"
        );
        let members: BTreeSet<WorkerId> = members.into_iter().collect();
        assert!(!members.is_empty(), "group needs at least one member");
        st.members = members;
        st.generation += 1;
        if let Some(journal) = self.journal.get() {
            journal.emit(EventKind::CommReconfigured {
                generation: st.generation,
                world: st.members.len() as u32,
            });
        }
        st.generation
    }
}

/// The bit-exact reference reduction: element-wise sum of `inputs` in the
/// order given (callers pass contributions sorted by worker id). Every
/// output element sees the additions `((in₀ + in₁) + in₂) + …` — the
/// sequence every [`CommGroup`] path reproduces chunk-by-chunk.
///
/// # Panics
///
/// Panics if `inputs` is empty or lengths differ.
#[allow(clippy::expect_used)] // waived: see verify-allow.toml (reference_sum)
pub fn reference_sum<S: AsRef<[f32]>>(inputs: &[S]) -> Vec<f32> {
    let first = inputs.first().expect("at least one input").as_ref();
    let mut sum = first.to_vec();
    for inp in &inputs[1..] {
        let inp = inp.as_ref();
        assert_eq!(inp.len(), sum.len(), "input length mismatch");
        for (a, &d) in sum.iter_mut().zip(inp) {
            *a += d;
        }
    }
    sum
}

/// The pre-optimization flat allreduce, preserved verbatim as the
/// benchmark baseline and regression reference.
///
/// Every caller heap-copies its contribution (`data.to_vec()`), and the
/// last arriver allocates a fresh accumulator and serially sums
/// `world × len` floats **while holding the group lock** — the naive
/// data plane the adaptive [`CommGroup`] is measured against in
/// `BENCH_dataplane.json`. (Note the difference from the adaptive
/// [`flat`] fast path, which copies nothing and allocates nothing in the
/// steady state.) Not used by the live runtime.
pub mod naive {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(Debug)]
    struct NaiveState {
        members: BTreeSet<WorkerId>,
        round: u64,
        contributions: BTreeMap<WorkerId, Vec<f32>>,
        vec_len: usize,
        result: Arc<Vec<f32>>,
        result_round: u64,
        result_world: u32,
    }

    /// Flat, lock-held, copy-on-entry allreduce (benchmark baseline).
    #[derive(Debug)]
    pub struct NaiveCommGroup {
        state: Mutex<NaiveState>,
        cvar: Condvar,
    }

    impl NaiveCommGroup {
        /// Creates a group over `members` reducing vectors of `len`
        /// elements.
        ///
        /// # Panics
        ///
        /// Panics if `members` is empty or `len` is zero.
        pub fn new(members: impl IntoIterator<Item = WorkerId>, len: usize) -> Self {
            let members: BTreeSet<WorkerId> = members.into_iter().collect();
            assert!(!members.is_empty(), "group needs at least one member");
            assert!(len > 0, "vectors must be non-empty");
            NaiveCommGroup {
                state: Mutex::new(NaiveState {
                    members,
                    round: 0,
                    contributions: BTreeMap::new(),
                    vec_len: len,
                    result: Arc::new(vec![0.0; len]),
                    result_round: u64::MAX,
                    result_world: 0,
                }),
                cvar: Condvar::new(),
            }
        }

        /// World size.
        pub fn world_size(&self) -> u32 {
            self.state.lock().members.len() as u32
        }

        /// The flat allreduce: copy in, last arriver sums under the lock.
        ///
        /// # Panics
        ///
        /// Panics if `data` length differs from the group's vector length.
        pub fn allreduce(&self, worker: WorkerId, data: &[f32]) -> AllreduceOutcome {
            let mut st = self.state.lock();
            if !st.members.contains(&worker) {
                return AllreduceOutcome::NotMember;
            }
            assert_eq!(st.vec_len, data.len(), "vector length mismatch");
            if st.contributions.contains_key(&worker) {
                return AllreduceOutcome::DuplicateContribution;
            }
            st.contributions.insert(worker, data.to_vec());
            let my_round = st.round;
            if st.contributions.len() == st.members.len() {
                // Last arriver sums everything serially under the lock.
                let mut sum = vec![0.0f32; st.vec_len];
                for contribution in std::mem::take(&mut st.contributions).into_values() {
                    for (a, d) in sum.iter_mut().zip(contribution) {
                        *a += d;
                    }
                }
                st.result = Arc::new(sum);
                st.result_round = st.round;
                st.result_world = st.members.len() as u32;
                st.round += 1;
                self.cvar.notify_all();
                return AllreduceOutcome::Sum {
                    sum: Arc::clone(&st.result),
                    world: st.result_world,
                };
            }
            while st.result_round != my_round {
                self.cvar.wait(&mut st);
            }
            AllreduceOutcome::Sum {
                sum: Arc::clone(&st.result),
                world: st.result_world,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan_topology::{ClusterSpec, Placement};
    use std::thread;

    fn spawn_allreduce(
        group: &Arc<CommGroup>,
        worker: WorkerId,
        data: Vec<f32>,
    ) -> thread::JoinHandle<AllreduceOutcome> {
        let g = Arc::clone(group);
        thread::spawn(move || g.allreduce(worker, &data))
    }

    /// An 8-GPUs-per-node, 4-per-socket test cluster (4 nodes).
    fn test_topology() -> CommTopology {
        CommTopology::new(Placement::linear(ClusterSpec::new(4, 2, 2, 2).build()))
    }

    #[test]
    fn sums_across_members() {
        let group = Arc::new(CommGroup::new((0..4).map(WorkerId), 8));
        let handles: Vec<_> = (0..4)
            .map(|i| spawn_allreduce(&group, WorkerId(i), vec![i as f32; 8]))
            .collect();
        for h in handles {
            match h.join().unwrap() {
                AllreduceOutcome::Sum { sum, world } => {
                    assert!(sum.iter().all(|&v| v == 6.0));
                    assert_eq!(world, 4);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn consecutive_rounds_do_not_mix() {
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 2));
        for round in 0..10 {
            let h = spawn_allreduce(&group, WorkerId(1), vec![round as f32; 2]);
            let a = group.allreduce(WorkerId(0), &[1.0; 2]);
            let b = h.join().unwrap();
            assert_eq!(a, b);
            match a {
                AllreduceOutcome::Sum { sum, .. } => assert_eq!(sum[0], round as f32 + 1.0),
                _ => panic!("not a sum"),
            }
        }
    }

    #[test]
    fn non_member_is_told_to_leave() {
        let group = CommGroup::new([WorkerId(0)], 2);
        assert_eq!(
            group.allreduce(WorkerId(9), &[0.0; 2]),
            AllreduceOutcome::NotMember
        );
    }

    #[test]
    fn duplicate_contribution_is_rejected_not_overwritten() {
        // Worker 0 contributes and blocks in a background thread; a bogus
        // second contribution from worker 0 must be rejected as an error,
        // and the round must still complete with the *original* data.
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 4));
        let h = spawn_allreduce(&group, WorkerId(0), vec![5.0; 4]);
        // Wait for the first contribution to land (condvar, no polling).
        group.wait_for_contributions(1);
        assert_eq!(
            group.allreduce(WorkerId(0), &[99.0; 4]),
            AllreduceOutcome::DuplicateContribution
        );
        // The round completes with the original value, not the duplicate.
        match group.allreduce(WorkerId(1), &[1.0; 4]) {
            AllreduceOutcome::Sum { sum, world } => {
                assert!(sum.iter().all(|&v| v == 6.0));
                assert_eq!(world, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn reconfigure_bumps_generation_and_membership() {
        let group = CommGroup::new([WorkerId(0), WorkerId(1)], 2);
        assert_eq!(group.generation(), 0);
        let g = group.reconfigure((0..4).map(WorkerId));
        assert_eq!(g, 1);
        assert_eq!(group.world_size(), 4);
    }

    #[test]
    fn allreduce_works_after_scale_out() {
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 4));
        // Round with 2 members.
        let h = spawn_allreduce(&group, WorkerId(1), vec![1.0; 4]);
        group.allreduce(WorkerId(0), &[1.0; 4]);
        h.join().unwrap();
        // Scale out to 3 and reduce again.
        group.reconfigure((0..3).map(WorkerId));
        let h1 = spawn_allreduce(&group, WorkerId(1), vec![1.0; 4]);
        let h2 = spawn_allreduce(&group, WorkerId(2), vec![1.0; 4]);
        let a = group.allreduce(WorkerId(0), &[1.0; 4]);
        match a {
            AllreduceOutcome::Sum { sum, world } => {
                assert_eq!(sum[0], 3.0);
                assert_eq!(world, 3);
            }
            _ => panic!("not a sum"),
        }
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn evict_unblocks_a_waiting_round() {
        // Three members; only two contribute; the third is evicted. The
        // eviction must complete the round with world == 2.
        let group = Arc::new(CommGroup::new((0..3).map(WorkerId), 4));
        let h0 = spawn_allreduce(&group, WorkerId(0), vec![1.0; 4]);
        let h1 = spawn_allreduce(&group, WorkerId(1), vec![2.0; 4]);
        // Both contributions must land before the eviction (condvar wait).
        group.wait_for_contributions(2);
        assert!(group.evict(WorkerId(2)));
        for h in [h0, h1] {
            match h.join().unwrap() {
                AllreduceOutcome::Sum { sum, world } => {
                    assert_eq!(sum[0], 3.0);
                    assert_eq!(world, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(group.world_size(), 2);
    }

    #[test]
    fn evict_unblocks_a_waiting_cooperative_round() {
        // Same as above but forced onto the chunked engine, so the
        // eviction publishes cooperative work and must help drain it.
        let group = Arc::new(CommGroup::with_chunk_elems((0..3).map(WorkerId), 64, 8));
        let h0 = spawn_allreduce(&group, WorkerId(0), vec![1.0; 64]);
        let h1 = spawn_allreduce(&group, WorkerId(1), vec![2.0; 64]);
        group.wait_for_contributions(2);
        assert!(group.evict(WorkerId(2)));
        for h in [h0, h1] {
            match h.join().unwrap() {
                AllreduceOutcome::Sum { sum, world } => {
                    assert_eq!(sum[0], 3.0);
                    assert_eq!(world, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn evict_non_member_is_a_noop() {
        let group = CommGroup::new([WorkerId(0)], 2);
        assert!(!group.evict(WorkerId(9)));
        assert_eq!(group.world_size(), 1);
    }

    #[test]
    fn on_wait_fires_while_blocked() {
        // The blocked caller signals each wait tick through a channel; the
        // test blocks on the channel (no sleeps) until at least one tick
        // has provably fired, then completes the round.
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 2));
        let (tx, rx) = crossbeam::channel::unbounded();
        let g = Arc::clone(&group);
        let h = thread::spawn(move || {
            g.allreduce_with(WorkerId(0), &[1.0; 2], || {
                let _ = tx.send(());
            })
        });
        rx.recv().expect("waiter must surface wait ticks");
        group.allreduce(WorkerId(1), &[1.0; 2]);
        assert!(matches!(
            h.join().unwrap(),
            AllreduceOutcome::Sum { world: 2, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let group = CommGroup::new([WorkerId(0)], 4);
        let _ = group.allreduce(WorkerId(0), &[0.0; 3]);
    }

    #[test]
    fn many_threads_many_rounds_stress() {
        let n = 8u32;
        let rounds = 50u64;
        // Small chunks force multi-chunk cooperative rounds every time.
        let group = Arc::new(CommGroup::with_chunk_elems((0..n).map(WorkerId), 16, 3));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let g = Arc::clone(&group);
                thread::spawn(move || {
                    let mut acc = 0.0f64;
                    for r in 0..rounds {
                        let data = vec![(i as f32) + (r as f32); 16];
                        match g.allreduce(WorkerId(i), &data) {
                            AllreduceOutcome::Sum { sum, .. } => acc += sum[0] as f64,
                            _ => panic!("membership lost"),
                        }
                    }
                    acc
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every member observed the identical sequence of sums.
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn many_threads_many_rounds_hier_stress() {
        // Hierarchical counterpart of the stress test: 10 workers over a
        // 4-per-socket topology (3 groups), vector long enough to clear
        // the pinned flat crossover.
        let n = 10u32;
        let rounds = 30u64;
        let len = tune::PINNED_FLAT_MAX_LEN * 2;
        let profile = TuningProfile {
            flat_max_len: tune::PINNED_FLAT_MAX_LEN,
            hier_min_world: 2,
        };
        let group = Arc::new(CommGroup::with_tuning(
            (0..n).map(WorkerId),
            len,
            profile,
            Some(test_topology()),
        ));
        assert_eq!(group.planned_path(), ReducePath::Hier);
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let g = Arc::clone(&group);
                thread::spawn(move || {
                    let mut acc = 0.0f64;
                    for r in 0..rounds {
                        let data = vec![(i as f32) + (r as f32); len];
                        match g.allreduce(WorkerId(i), &data) {
                            AllreduceOutcome::Sum { sum, .. } => {
                                acc += sum[0] as f64 + sum[len - 1] as f64
                            }
                            _ => panic!("membership lost"),
                        }
                    }
                    acc
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn chunked_matches_reference_bitwise() {
        // Irregular length with a chunk size that does not divide it.
        let len = 1030;
        let world = 5u32;
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|w| {
                (0..len)
                    .map(|j| ((w as f32 + 1.3) * 0.1 + j as f32 * 1e-3).sin())
                    .collect()
            })
            .collect();
        let expect = reference_sum(&inputs);
        let group = Arc::new(CommGroup::with_chunk_elems(
            (0..world).map(WorkerId),
            len,
            64,
        ));
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(w, data)| spawn_allreduce(&group, WorkerId(w as u32), data.clone()))
            .collect();
        for h in handles {
            match h.join().unwrap() {
                AllreduceOutcome::Sum { sum, .. } => {
                    let got: Vec<u32> = sum.iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got, want, "bitwise mismatch");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn flat_and_hier_match_reference_bitwise() {
        // The same irregular inputs through the flat and hierarchical
        // engines must reproduce `reference_sum` bit-for-bit.
        let len = 1030;
        let world = 9u32; // 3 socket groups of 4+4+1 on the test topology
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|w| {
                (0..len)
                    .map(|j| ((w as f32 + 0.7) * 0.3 + j as f32 * 2e-3).cos())
                    .collect()
            })
            .collect();
        let expect: Vec<u32> = reference_sum(&inputs).iter().map(|v| v.to_bits()).collect();
        let flat_profile = TuningProfile {
            flat_max_len: usize::MAX,
            hier_min_world: u32::MAX,
        };
        let hier_profile = TuningProfile {
            flat_max_len: 0,
            hier_min_world: 2,
        };
        for (profile, topo, want_path) in [
            (flat_profile, None, ReducePath::Flat),
            (hier_profile, Some(test_topology()), ReducePath::Hier),
        ] {
            let group = Arc::new(CommGroup::with_tuning(
                (0..world).map(WorkerId),
                len,
                profile,
                topo,
            ));
            assert_eq!(group.planned_path(), want_path);
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(w, data)| spawn_allreduce(&group, WorkerId(w as u32), data.clone()))
                .collect();
            for h in handles {
                match h.join().unwrap() {
                    AllreduceOutcome::Sum { sum, .. } => {
                        let got: Vec<u32> = sum.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(got, expect, "{want_path} bitwise mismatch");
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn dispatch_selects_by_world_and_len() {
        let profile = TuningProfile {
            flat_max_len: 1024,
            hier_min_world: 8,
        };
        // Small message: flat regardless of world size.
        let g = CommGroup::with_tuning((0..16).map(WorkerId), 1024, profile, Some(test_topology()));
        assert_eq!(g.planned_path(), ReducePath::Flat);
        // Mid-range world: chunked.
        let g = CommGroup::with_tuning((0..4).map(WorkerId), 4096, profile, Some(test_topology()));
        assert_eq!(g.planned_path(), ReducePath::Chunked);
        // Large world with topology groups: hierarchical.
        let g = CommGroup::with_tuning((0..16).map(WorkerId), 4096, profile, Some(test_topology()));
        assert_eq!(g.planned_path(), ReducePath::Hier);
        // Large world, no topology: stays chunked.
        let g = CommGroup::with_tuning((0..16).map(WorkerId), 4096, profile, None);
        assert_eq!(g.planned_path(), ReducePath::Chunked);
        // Single member: always flat (nothing to cooperate on).
        let g = CommGroup::with_tuning([WorkerId(0)], 4096, profile, None);
        assert_eq!(g.planned_path(), ReducePath::Flat);
        // Fixed-chunk compatibility groups never dispatch.
        let g = CommGroup::with_chunk_elems((0..16).map(WorkerId), 1024, 64);
        assert_eq!(g.planned_path(), ReducePath::Chunked);
    }

    #[test]
    fn naive_and_chunked_agree() {
        let len = 257;
        let world = 4u32;
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|w| {
                (0..len)
                    .map(|j| (w * 1000 + j as u32) as f32 * 1e-4)
                    .collect()
            })
            .collect();
        let chunked = Arc::new(CommGroup::with_chunk_elems(
            (0..world).map(WorkerId),
            len,
            32,
        ));
        let flat = Arc::new(naive::NaiveCommGroup::new((0..world).map(WorkerId), len));
        let mut sums = Vec::new();
        for group in 0..2 {
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(w, data)| {
                    let data = data.clone();
                    let (c, f) = (Arc::clone(&chunked), Arc::clone(&flat));
                    thread::spawn(move || {
                        if group == 0 {
                            c.allreduce(WorkerId(w as u32), &data)
                        } else {
                            f.allreduce(WorkerId(w as u32), &data)
                        }
                    })
                })
                .collect();
            let mut outs = Vec::new();
            for h in handles {
                match h.join().unwrap() {
                    AllreduceOutcome::Sum { sum, .. } => outs.push(sum),
                    other => panic!("unexpected {other:?}"),
                }
            }
            sums.push(outs.pop().unwrap());
        }
        let a: Vec<u32> = sums[0].iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = sums[1].iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "naive and chunked diverge");
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        // After warm-up the pool must satisfy every round: the fresh
        // allocation counter goes flat (zero O(len) allocations/round).
        // len == the pinned flat crossover, so this exercises the flat
        // fast path's pool discipline too.
        let n = 4u32;
        let warmup = 5u64;
        let rounds = 60u64;
        let group = Arc::new(CommGroup::new((0..n).map(WorkerId), 4096));
        let run = |rounds: u64| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let g = Arc::clone(&group);
                    thread::spawn(move || {
                        for r in 0..rounds {
                            let data = vec![r as f32; 4096];
                            // Drop the sum before the next round, as the
                            // training loop does after its optimizer step.
                            match g.allreduce(WorkerId(i), &data) {
                                AllreduceOutcome::Sum { .. } => {}
                                other => panic!("unexpected {other:?}"),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        };
        run(warmup);
        let after_warmup = group.pool_allocations();
        run(rounds);
        assert_eq!(
            group.pool_allocations(),
            after_warmup,
            "steady-state rounds allocated fresh buffers"
        );
        assert!(after_warmup <= 3, "warm-up needed {after_warmup} buffers");
    }

    #[test]
    fn single_member_group_reduces_alone() {
        let group = CommGroup::with_chunk_elems([WorkerId(0)], 10, 4);
        match group.allreduce(WorkerId(0), &[2.5; 10]) {
            AllreduceOutcome::Sum { sum, world } => {
                assert!(sum.iter().all(|&v| v == 2.5));
                assert_eq!(world, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reference_sum_matches_manual() {
        let a = [1.0f32, 2.0];
        let b = [10.0f32, 20.0];
        assert_eq!(reference_sum(&[a, b]), vec![11.0, 22.0]);
    }

    #[test]
    fn path_names_are_stable() {
        assert_eq!(ReducePath::Flat.name(), "flat");
        assert_eq!(ReducePath::Chunked.name(), "chunked");
        assert_eq!(ReducePath::Hier.name(), "hier");
        assert_eq!(ReducePath::Hier.to_string(), "hier");
    }
}
