//! The small-message fast path: a single-owner inline reduce.
//!
//! Below the flat crossover ([`super::tune::TuningProfile::flat_max_len`])
//! the fixed cost of the cooperative machinery — resetting the chunk
//! cursor, waking helpers, bouncing the done-counter cache line — exceeds
//! the reduction itself, which is how the chunked path managed to *lose*
//! to the naive baseline at `len = 1024`. Here the last arriver simply
//! sums every contribution into the pooled accumulator while still
//! holding the group lock and publishes the result in the same critical
//! section. No cursor, no per-chunk atomics, no helper handoff; the
//! zero-copy contributions and the round-buffer pool are shared with the
//! other paths, so the steady state still performs no `O(len)` work
//! beyond the sum itself.
//!
//! Summation order is ascending worker id (the contribution list is
//! sorted), the exact addition sequence of [`super::reference_sum`] — the
//! flat path is bit-identical to the cooperative paths by construction.

use elan_core::state::WorkerId;

use super::SharedSlice;

/// Reduces `contributions` (sorted by worker id, non-empty) element-wise
/// into `out`: initialize from the first contribution (no zeroing pass),
/// then accumulate the rest in order.
///
/// # Safety
///
/// Every `SharedSlice` must honor its lifecycle contract (the owning
/// contributor is parked for the duration of the call), and each slice's
/// length must equal `out.len()`.
pub(super) unsafe fn reduce_into(contributions: &[(WorkerId, SharedSlice)], out: &mut [f32]) {
    debug_assert!(!contributions.is_empty());
    out.copy_from_slice(contributions[0].1.slice());
    for (_, inp) in &contributions[1..] {
        for (o, &v) in out.iter_mut().zip(inp.slice()) {
            *o += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::reference_sum;
    use super::*;

    #[test]
    fn flat_kernel_matches_reference_bitwise() {
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|w| {
                (0..97)
                    .map(|j| ((w as f32 + 0.9) * 0.2 + j as f32 * 3e-3).sin())
                    .collect()
            })
            .collect();
        let contributions: Vec<(WorkerId, SharedSlice)> = inputs
            .iter()
            .enumerate()
            .map(|(w, v)| (WorkerId(w as u32), SharedSlice::new(v)))
            .collect();
        let mut out = vec![0.0f32; 97];
        // SAFETY: the borrowed vectors outlive the call.
        unsafe { reduce_into(&contributions, &mut out) };
        let want: Vec<u32> = reference_sum(&inputs).iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }
}
