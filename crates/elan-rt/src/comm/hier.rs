//! The large-world path: two-level, topology-aware reduction.
//!
//! A single shared chunk cursor treats a 16-worker round on a two-node
//! cluster exactly like 16 threads on one socket: every claim bounces the
//! cursor cache line across sockets (and, in the real deployment, the
//! interconnect), which is where the measured world 8 → 16 speedup
//! collapse came from. This path instead consults a [`CommTopology`] and
//! splits the round **by elements, not by arithmetic**:
//!
//! 1. Contributors are partitioned into groups by the node/socket
//!    locality domain of their placed GPU ([`SocketDomain`]).
//! 2. The element space `[0, len)` is sharded into one contiguous span
//!    per group, sized proportionally to the group's member count, each
//!    span with its own [`ChunkPlan`] and its own claim cursor.
//! 3. Every helper drains its **own group's** cursor first — intra-group,
//!    cache-blocked work with zero cross-socket cursor traffic. Each
//!    group's min-id member is its elected *leader*: once its group's
//!    span drains, a leader moves on to steal from the other groups'
//!    cursors (the leaders run the work-stealing tail among themselves),
//!    while non-leaders go back to waiting. The helper that completes the
//!    final chunk publishes the result, and the round-completion
//!    broadcast (condvar + virtual-time wake) releases every parked
//!    member — the "broadcast down" of the two-level scheme.
//!
//! Crucially, **every chunk still reduces all `world` contributions** in
//! ascending worker-id order over its span — only the *ownership* of
//! elements is hierarchical, never the arithmetic. A classic two-level
//! scheme (per-group partial sums combined across groups) would change
//! the f32 addition order: `(a+b)+(c+d)` is not `((a+b)+c)+d`, so it
//! could never be bit-identical to [`super::reference_sum`]. Element
//! sharding gives the same cross-socket contention win — each socket's
//! threads hammer only their own cursor and write only their own span of
//! the accumulator — while keeping the reduction bit-deterministic.
//!
//! Group plans are **rebuilt at every round publish** from the
//! contributors actually present, so adjustments and mid-round evictions
//! re-plan automatically; there is no cached plan to invalidate.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicUsize;

use elan_core::messages::ChunkPlan;
use elan_core::state::WorkerId;
use elan_topology::{ClusterSpec, Placement, SocketDomain};

use super::chunked::DEFAULT_CHUNK_ELEMS;

/// Worker → cluster-position map consumed by the hierarchical path.
///
/// Wraps an [`elan_topology`] [`Placement`] (worker id = rank) and
/// answers the only question the data plane asks: which node/socket
/// locality domain does a worker live in? Handed to the runtime via
/// `ElasticRuntime::builder().topology(...)`.
#[derive(Debug, Clone)]
pub struct CommTopology {
    placement: Placement,
}

/// Planning-default cluster shape: nodes of 2 sockets × 2 switches × 2
/// GPUs (8 GPUs per node, 4 per socket), big enough that any realistic
/// elastic world fits without wrapping.
const PLANNING_NODES: u32 = 64;
const PLANNING_SOCKETS: u32 = 2;
const PLANNING_SWITCHES: u32 = 2;
const PLANNING_GPUS: u32 = 2;

impl CommTopology {
    /// A topology from an explicit rank placement.
    pub fn new(placement: Placement) -> Self {
        CommTopology { placement }
    }

    /// The planning-default topology: workers laid out linearly over the
    /// same 64-node cluster shape the replication planner assumes
    /// (8 GPUs per node, 4 per socket), so worker `w` lives on
    /// `GpuId(w)`.
    pub fn planning_default() -> Self {
        CommTopology {
            placement: Placement::linear(
                ClusterSpec::new(
                    PLANNING_NODES,
                    PLANNING_SOCKETS,
                    PLANNING_SWITCHES,
                    PLANNING_GPUS,
                )
                .build(),
            ),
        }
    }

    /// The underlying rank placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The locality domain hosting `worker`.
    pub fn domain_of(&self, worker: WorkerId) -> SocketDomain {
        self.placement.domain_of(worker.0)
    }
}

impl Default for CommTopology {
    fn default() -> Self {
        Self::planning_default()
    }
}

/// Number of distinct locality domains across `workers` — the dispatch
/// predicate for the hierarchical path (needs at least two).
pub(super) fn domain_count(
    topo: &CommTopology,
    workers: impl IntoIterator<Item = WorkerId>,
) -> usize {
    workers
        .into_iter()
        .map(|w| topo.domain_of(w))
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

/// One topology group's share of a hierarchical round: its members, its
/// contiguous element span, and the span's private work-stealing cursor.
pub(super) struct GroupWork {
    /// Group members, ascending worker id. The first is the leader.
    members: Vec<WorkerId>,
    /// First element of the group's span in the full vector.
    pub(super) span_start: usize,
    /// Cache-blocked plan over the span.
    pub(super) plan: ChunkPlan,
    /// The group's private claim cursor.
    pub(super) cursor: AtomicUsize,
}

impl GroupWork {
    /// Whether `worker` belongs to this group.
    pub(super) fn has_member(&self, worker: WorkerId) -> bool {
        self.members.binary_search(&worker).is_ok()
    }

    /// The group's elected leader: its minimum worker id.
    pub(super) fn leader(&self) -> WorkerId {
        self.members[0]
    }
}

/// Builds the per-group spans for one round: partitions `workers`
/// (ascending, non-empty) by locality domain, then shards `[0, len)`
/// into contiguous spans proportional to group sizes. Groups whose span
/// rounds to zero elements are dropped (their members steal as
/// span-less helpers); the returned groups are ordered by domain, spans
/// ascending and disjoint, covering `[0, len)` exactly.
pub(super) fn plan_groups(topo: &CommTopology, workers: &[WorkerId], len: usize) -> Vec<GroupWork> {
    debug_assert!(!workers.is_empty());
    let mut domains: BTreeMap<SocketDomain, Vec<WorkerId>> = BTreeMap::new();
    for &w in workers {
        domains.entry(topo.domain_of(w)).or_default().push(w);
    }
    let total = workers.len();
    let mut groups = Vec::with_capacity(domains.len());
    let mut seen = 0usize;
    for (_, members) in domains {
        let start = len * seen / total;
        seen += members.len();
        let end = len * seen / total;
        if start == end {
            continue;
        }
        let span = end - start;
        // L1-sized tiles, not the world-coupled formula: the private
        // per-group cursor already bounds claim traffic to the group's
        // members, so the hierarchical path keeps the cache-blocking win
        // of small chunks without the shared-cursor cost that forced the
        // flat chunked path onto `adaptive_chunk_elems`.
        groups.push(GroupWork {
            members,
            span_start: start,
            plan: ChunkPlan::new(span, DEFAULT_CHUNK_ELEMS),
            cursor: AtomicUsize::new(0),
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_topo() -> CommTopology {
        // 4 GPUs per socket, 8 per node.
        CommTopology::new(Placement::linear(ClusterSpec::new(4, 2, 2, 2).build()))
    }

    #[test]
    fn groups_follow_socket_domains() {
        let topo = small_topo();
        let workers: Vec<WorkerId> = (0..10).map(WorkerId).collect();
        // Ranks 0-3 → (node0, socket0), 4-7 → (node0, socket1),
        // 8-9 → (node1, socket0).
        assert_eq!(domain_count(&topo, workers.iter().copied()), 3);
        let groups = plan_groups(&topo, &workers, 100_000);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].leader(), WorkerId(0));
        assert_eq!(groups[1].leader(), WorkerId(4));
        assert_eq!(groups[2].leader(), WorkerId(8));
        assert!(groups[0].has_member(WorkerId(3)));
        assert!(!groups[0].has_member(WorkerId(4)));
    }

    #[test]
    fn spans_are_contiguous_proportional_and_exhaustive() {
        let topo = small_topo();
        let workers: Vec<WorkerId> = (0..10).map(WorkerId).collect();
        let len = 100_001; // deliberately not divisible
        let groups = plan_groups(&topo, &workers, len);
        let mut cursor = 0usize;
        for g in &groups {
            assert_eq!(g.span_start, cursor, "spans must be contiguous");
            cursor += g.plan.total_elems();
        }
        assert_eq!(cursor, len, "spans must cover the vector exactly");
        // 4-member groups get twice the span of the 2-member group (±1).
        let s0 = groups[0].plan.total_elems();
        let s2 = groups[2].plan.total_elems();
        assert!(s0 >= 2 * s2 - 2 && s0 <= 2 * s2 + 2, "{s0} vs {s2}");
    }

    #[test]
    fn tiny_vectors_collapse_to_fewer_groups() {
        let topo = small_topo();
        let workers: Vec<WorkerId> = (0..10).map(WorkerId).collect();
        // One element: only one group can own a non-empty span.
        let groups = plan_groups(&topo, &workers, 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].plan.total_elems(), 1);
    }

    #[test]
    fn planning_default_matches_the_replication_planner_shape() {
        let topo = CommTopology::planning_default();
        // 8 GPUs per node, 4 per socket: workers 0 and 3 share a domain,
        // 0 and 4 do not, 8 starts the second node.
        assert_eq!(topo.domain_of(WorkerId(0)), topo.domain_of(WorkerId(3)));
        assert_ne!(topo.domain_of(WorkerId(0)), topo.domain_of(WorkerId(4)));
        assert_ne!(
            topo.domain_of(WorkerId(7)).node,
            topo.domain_of(WorkerId(8)).node
        );
    }
}
