//! The mid-range work-stealing path: cache-blocked cooperative reduction
//! over one shared chunk cursor, plus the shared chunk kernel and the
//! world-coupled chunk-size derivation used by every cooperative path.
//!
//! When the last member arrives, the round's inputs are split into
//! cache-sized chunks ([`ChunkPlan`]); every blocked waiter (plus the
//! last arriver, plus an evicting thread if eviction completes the
//! round) claims chunks from an atomic work-stealing cursor and reduces
//! them **outside the group lock**. Each chunk sums its contributions in
//! ascending worker-id order, so every output element sees the identical
//! f32 addition sequence regardless of chunk size, thread count, or
//! arrival order — bit-deterministic (the EasyScale requirement) while
//! the accumulator chunk stays hot in L1.

use std::ops::Range;

use elan_core::messages::ChunkPlan;

use super::hier::GroupWork;
use super::SharedSlice;

/// Floor for the reduction chunk size: 4096 f32 = 16 KiB, sized so one
/// accumulator chunk plus a contribution chunk fit comfortably in L1.
/// Also the fixed default for [`super::CommGroup::with_chunk_elems`]-era
/// callers.
pub const DEFAULT_CHUNK_ELEMS: usize = 4096;

/// The world-coupled chunk size: `max(len / world, DEFAULT_CHUNK_ELEMS)`.
///
/// The old fixed 4096-element chunks made the chunk *count* independent
/// of the world size, so at world=16 / len=4M a round had 1024 chunks and
/// sixteen workers hammered the cursor cache line once per 16 KiB of
/// work — the measured speedup collapse (6.1x → 2.9x going world 8 → 16).
/// Deriving the size from `len / world` pins the chunk count to roughly
/// one chunk per worker (never more than `world` full chunks, plus at
/// most one remainder chunk), so cursor traffic stays O(world) per round
/// while the floor keeps tiny quotients from shredding cache locality.
pub fn adaptive_chunk_elems(len: usize, world: u32) -> usize {
    (len / (world.max(1) as usize)).max(DEFAULT_CHUNK_ELEMS)
}

/// The published work plan of one cooperative round, rebuilt at every
/// publish from the contributors actually present.
pub(super) enum RoundWork {
    /// One shared cursor over a flat chunk plan.
    Chunked { plan: ChunkPlan },
    /// One span + cursor per topology group (hierarchical path).
    Hier {
        groups: Vec<GroupWork>,
        /// Total chunk count across all groups (the finish threshold for
        /// the shared done-counter).
        n_chunks: usize,
    },
}

impl RoundWork {
    /// A chunked plan over `len` elements in `chunk_elems` blocks.
    pub(super) fn chunked(len: usize, chunk_elems: usize) -> Self {
        RoundWork::Chunked {
            plan: ChunkPlan::new(len, chunk_elems),
        }
    }

    /// A hierarchical plan over the given per-group spans.
    pub(super) fn hier(groups: Vec<GroupWork>) -> Self {
        let n_chunks = groups.iter().map(|g| g.plan.n_chunks()).sum();
        RoundWork::Hier { groups, n_chunks }
    }

    /// Total chunks this round's done-counter must reach.
    pub(super) fn n_chunks(&self) -> usize {
        match self {
            RoundWork::Chunked { plan } => plan.n_chunks(),
            RoundWork::Hier { n_chunks, .. } => *n_chunks,
        }
    }

    /// Number of parallel work groups (1 for the shared-cursor path).
    pub(super) fn n_groups(&self) -> usize {
        match self {
            RoundWork::Chunked { .. } => 1,
            RoundWork::Hier { groups, .. } => groups.len(),
        }
    }
}

/// Reduces the element `range` of every input (ascending worker-id
/// order) into the accumulator at `out_base`: the shared chunk kernel of
/// the chunked and hierarchical paths.
///
/// # Safety
///
/// The caller must hold a unique claim on `range` (no other thread
/// writes it this round), `out_base` must point at an accumulator of at
/// least `range.end` elements, `inputs` must be non-empty with every
/// slice at least `range.end` long, and every `SharedSlice` must honor
/// its lifecycle contract (owners parked for the whole round).
pub(super) unsafe fn reduce_range(inputs: &[SharedSlice], out_base: *mut f32, range: Range<usize>) {
    let out = std::slice::from_raw_parts_mut(out_base.add(range.start), range.len());
    // Sum in ascending worker-id order: initialize from the first
    // contribution (no zeroing pass), then accumulate. Contributions are
    // fused eight (then four, two, one) to a sweep so the accumulator
    // chunk is read and written once per *eight* inputs instead of once
    // per input — at large vectors the round is memory-bound and
    // accumulator traffic is the dominant term. Per element the addition
    // sequence is still `((first + a) + b) + …` in ascending worker-id
    // order (Rust evaluates the chain left-to-right), i.e. the exact
    // sequence of `reference_sum`, so fusing changes traffic, not bits.
    // The zipped-iterator bodies (rather than `a[i]` indexing) let the
    // compiler prove every access in-bounds and vectorize the sweeps.
    let n = out.len();
    out.copy_from_slice(&inputs[0].slice()[range.clone()]);
    let mut rest = &inputs[1..];
    while rest.len() >= 8 {
        let a = &rest[0].slice()[range.clone()][..n];
        let b = &rest[1].slice()[range.clone()][..n];
        let c = &rest[2].slice()[range.clone()][..n];
        let d = &rest[3].slice()[range.clone()][..n];
        let e = &rest[4].slice()[range.clone()][..n];
        let f = &rest[5].slice()[range.clone()][..n];
        let g = &rest[6].slice()[range.clone()][..n];
        let h = &rest[7].slice()[range.clone()][..n];
        for (o, (((((((a, b), c), d), e), f), g), h)) in out.iter_mut().zip(
            a.iter()
                .zip(b.iter())
                .zip(c.iter())
                .zip(d.iter())
                .zip(e.iter())
                .zip(f.iter())
                .zip(g.iter())
                .zip(h.iter()),
        ) {
            *o = (((((((*o + a) + b) + c) + d) + e) + f) + g) + h;
        }
        rest = &rest[8..];
    }
    while rest.len() >= 4 {
        let a = &rest[0].slice()[range.clone()][..n];
        let b = &rest[1].slice()[range.clone()][..n];
        let c = &rest[2].slice()[range.clone()][..n];
        let d = &rest[3].slice()[range.clone()][..n];
        for (o, (((a, b), c), d)) in out
            .iter_mut()
            .zip(a.iter().zip(b.iter()).zip(c.iter()).zip(d.iter()))
        {
            *o = (((*o + a) + b) + c) + d;
        }
        rest = &rest[4..];
    }
    if rest.len() >= 2 {
        let a = &rest[0].slice()[range.clone()][..n];
        let b = &rest[1].slice()[range.clone()][..n];
        for (o, (a, b)) in out.iter_mut().zip(a.iter().zip(b.iter())) {
            *o = (*o + a) + b;
        }
        rest = &rest[2..];
    }
    if let [last] = rest {
        let a = &last.slice()[range.clone()][..n];
        for (o, a) in out.iter_mut().zip(a.iter()) {
            *o += a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_chunk_formula_is_pinned() {
        // The satellite fix for the world=16 pathology: chunk size is
        // len/world with a DEFAULT_CHUNK_ELEMS floor, so the chunk count
        // tracks the world size instead of the vector length.
        assert_eq!(adaptive_chunk_elems(4_194_304, 16), 262_144);
        assert_eq!(
            ChunkPlan::new(4_194_304, adaptive_chunk_elems(4_194_304, 16)).n_chunks(),
            16
        );
        assert_eq!(adaptive_chunk_elems(4_194_304, 8), 524_288);
        assert_eq!(adaptive_chunk_elems(65_536, 4), 16_384);
        assert_eq!(
            ChunkPlan::new(65_536, adaptive_chunk_elems(65_536, 4)).n_chunks(),
            4
        );
        // The floor: small quotients clamp to one cache-sized chunk.
        assert_eq!(adaptive_chunk_elems(1024, 16), DEFAULT_CHUNK_ELEMS);
        assert_eq!(
            ChunkPlan::new(1024, adaptive_chunk_elems(1024, 16)).n_chunks(),
            1
        );
        // Degenerate worlds never divide by zero.
        assert_eq!(adaptive_chunk_elems(8192, 0), 8192);
        assert_eq!(adaptive_chunk_elems(8192, 1), 8192);
    }

    #[test]
    fn round_work_counts_chunks_and_groups() {
        let w = RoundWork::chunked(100, 30);
        assert_eq!(w.n_chunks(), 4);
        assert_eq!(w.n_groups(), 1);
    }
}
