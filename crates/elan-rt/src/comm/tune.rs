//! Crossover tuning for the adaptive dispatcher.
//!
//! The flat/chunked crossover is a property of the *machine* (lock
//! handoff latency vs. memory bandwidth), so hard-coding it would bake
//! one box's numbers into every deployment. Instead the runtime asks
//! this module once at startup:
//!
//! - **Real time**: [`probe`] runs a one-shot micro-benchmark — for each
//!   candidate length it races a flat-forced group against a
//!   chunked-forced group over a few rounds and keeps the largest length
//!   where flat still wins. The result is cached process-wide, so a
//!   process pays the (few-millisecond) probe at most once. Timing uses
//!   the runtime's [`TimeSource`] only — no `Instant` in this crate
//!   outside `time.rs` (the WALL_CLOCK invariant).
//! - **Virtual time**: [`TuningProfile::pinned`] — fixed, named
//!   constants, because a probed crossover would make path dispatch (and
//!   therefore the journal) a function of host load instead of the seed.
//!   Deterministic simulation requires *same seed ⇒ byte-identical
//!   journal*, so under virtual time the profile must be pinned.
//!
//! Every number here is a named constant on purpose: the MAGIC_NUMBER
//! invariant (elan-verify) scopes this file, so future tuning tweaks
//! must stay named and documented rather than sprinkled inline.

use std::sync::{Arc, Barrier, OnceLock};

use elan_core::state::WorkerId;

use super::CommGroup;
use crate::time::TimeSource;

/// Pinned flat/chunked crossover: vectors of at most this many elements
/// take the flat fast path. 4096 f32 = 16 KiB — one L1-resident message;
/// matches the measured crossover on the reference box and guarantees
/// the benchmark's len=1024 cells always dispatch flat.
pub const PINNED_FLAT_MAX_LEN: usize = 4096;

/// Pinned chunked/hierarchical crossover: rounds with at least this many
/// members dispatch hierarchically (topology permitting). Nine is the
/// first world size that cannot fit inside one 8-GPU planning node, i.e.
/// the first world where cursor traffic must cross a node boundary.
pub const PINNED_HIER_MIN_WORLD: u32 = 9;

/// Candidate flat crossovers the probe measures, ascending. The probed
/// profile is clamped to this menu, so a pathological measurement can
/// never push the flat path into multi-megabyte territory (or below the
/// benchmark-guaranteed 1024 floor).
const PROBE_LENS: [usize; 3] = [1024, 4096, 16384];

/// World size of the probe groups: big enough to exercise the helper
/// handoff the chunked path pays for, small enough to run anywhere.
const PROBE_WORLD: u32 = 4;

/// Rounds per measurement; the first few double as pool warm-up (both
/// engines share the round-buffer pool, so warm-up bias cancels).
const PROBE_ROUNDS: u32 = 24;

/// The adaptive dispatcher's crossover points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningProfile {
    /// Vectors of at most this many elements dispatch to the flat path.
    pub flat_max_len: usize,
    /// Rounds with at least this many members dispatch hierarchically
    /// (when a topology with ≥ 2 locality domains is attached).
    pub hier_min_world: u32,
}

impl TuningProfile {
    /// The pinned profile: fixed crossovers for deterministic simulation
    /// (and the fallback when probing is unavailable).
    pub fn pinned() -> Self {
        TuningProfile {
            flat_max_len: PINNED_FLAT_MAX_LEN,
            hier_min_world: PINNED_HIER_MIN_WORLD,
        }
    }

    /// The profile appropriate for `time`: pinned under virtual time
    /// (dispatch must be a pure function of the seed), probed once per
    /// process on real time.
    pub fn for_time(time: &TimeSource) -> Self {
        if time.is_virtual() {
            Self::pinned()
        } else {
            probe(time)
        }
    }
}

/// One-shot machine probe (cached process-wide): measures the flat vs
/// chunked crossover on this host and returns it as a profile. The
/// hierarchical crossover stays pinned — it is a property of the
/// topology (first cross-node world), not of per-round overhead.
///
/// Must be called on real time (virtual callers get
/// [`TuningProfile::pinned`] via [`TuningProfile::for_time`]).
pub fn probe(time: &TimeSource) -> TuningProfile {
    static PROBED: OnceLock<TuningProfile> = OnceLock::new();
    *PROBED.get_or_init(|| {
        let mut flat_max_len = PROBE_LENS[0];
        for &len in &PROBE_LENS {
            let flat_ns = measure(time, len, true);
            let chunked_ns = measure(time, len, false);
            if flat_ns <= chunked_ns {
                flat_max_len = len;
            } else {
                break;
            }
        }
        TuningProfile {
            flat_max_len,
            hier_min_world: PINNED_HIER_MIN_WORLD,
        }
    })
}

/// Times `PROBE_ROUNDS` allreduce rounds of `PROBE_WORLD` threads over
/// `len`-element vectors on a group forced to the flat (or chunked)
/// engine; returns total nanoseconds (`u64::MAX` if a probe thread
/// panicked, which disqualifies the measurement).
fn measure(time: &TimeSource, len: usize, flat: bool) -> u64 {
    let profile = if flat {
        TuningProfile {
            flat_max_len: usize::MAX,
            hier_min_world: u32::MAX,
        }
    } else {
        TuningProfile {
            flat_max_len: 0,
            hier_min_world: u32::MAX,
        }
    };
    let group = Arc::new(CommGroup::with_tuning(
        (0..PROBE_WORLD).map(WorkerId),
        len,
        profile,
        None,
    ));
    let barrier = Arc::new(Barrier::new(PROBE_WORLD as usize + 1));
    let handles: Vec<_> = (0..PROBE_WORLD)
        .map(|w| {
            let g = Arc::clone(&group);
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let data = vec![w as f32; len];
                b.wait();
                for _ in 0..PROBE_ROUNDS {
                    let _ = g.allreduce(WorkerId(w), &data);
                }
            })
        })
        .collect();
    barrier.wait();
    let start = time.now();
    let mut ok = true;
    for h in handles {
        ok &= h.join().is_ok();
    }
    if !ok {
        return u64::MAX;
    }
    time.now().saturating_duration_since(start).as_nanos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_profile_uses_the_named_constants() {
        let p = TuningProfile::pinned();
        assert_eq!(p.flat_max_len, PINNED_FLAT_MAX_LEN);
        assert_eq!(p.hier_min_world, PINNED_HIER_MIN_WORLD);
    }

    #[test]
    fn virtual_time_always_gets_the_pinned_profile() {
        let time = TimeSource::virtual_seeded(7);
        assert_eq!(TuningProfile::for_time(&time), TuningProfile::pinned());
    }

    #[test]
    fn probe_stays_on_the_candidate_menu_and_caches() {
        let time = TimeSource::real();
        let p = probe(&time);
        assert!(PROBE_LENS.contains(&p.flat_max_len), "{p:?}");
        assert_eq!(p.hier_min_world, PINNED_HIER_MIN_WORLD);
        // Cached: a second probe is free and identical.
        assert_eq!(probe(&time), p);
    }
}
