//! Reliable messaging over the (possibly chaotic) bus.
//!
//! Implements the paper's §V-D recipe on the live runtime: every message
//! carries a unique id, the sender resends on timeout until acked, and
//! the receiver deduplicates with bounded memory. [`ReliableEndpoint`]
//! wraps a raw [`Endpoint`] with:
//!
//! - an owner-scoped [`MsgIdAllocator`] (the AM's owner encodes its epoch,
//!   so a replacement AM is a *fresh* sender stream at every receiver),
//! - a [`RetryTracker`] ticking on the bus's [`TimeSource`] (wall clock in
//!   production, virtual time in simulation) with an optional give-up
//!   budget — the runtime's failure detector,
//! - automatic transport acks ([`RtMsg::MsgAck`]) for received messages,
//! - a [`BoundedDedupFilter`] suppressing chaos- and resend-duplicates.

use std::sync::Arc;
use std::time::Duration;

use elan_core::messages::{BoundedDedupFilter, MsgId, MsgIdAllocator, RetryOutcome, RetryTracker};
use elan_core::obs::{Counter, MetricsRegistry};

use crate::bus::{Bus, Endpoint, EndpointId, Envelope, RtMsg};
use crate::obs::EventKind;
use crate::time::{sim_to_std, std_to_sim, TimeSource};

/// Shared fault-tolerance counters, aggregated across every endpoint.
///
/// Since the observability redesign the fields are registry-backed
/// [`Counter`] handles: construct with [`RtMetrics::registered`] to share
/// the atomics with a [`MetricsRegistry`] (under `rt.*` names), or use
/// `Default` for standalone counters in tests.
#[derive(Debug, Default)]
pub struct RtMetrics {
    /// Transport-level resends after ack timeouts.
    pub resends: Counter,
    /// Duplicate deliveries suppressed by receivers.
    pub duplicates: Counter,
    /// Messages abandoned after the attempt budget (peer presumed dead).
    pub give_ups: Counter,
    /// Replacement AMs elected by the watchdog.
    pub am_recoveries: Counter,
    /// Failure-driven scale-ins executed after missed heartbeats.
    pub failure_scale_ins: Counter,
    /// State chunks sent while replicating training state (first sends
    /// only; chunk *re*sends are counted under `resends`).
    pub state_chunks: Counter,
}

impl RtMetrics {
    /// Counters registered in (and shared with) `registry` under the
    /// `rt.resends`, `rt.duplicates`, … names, so a registry snapshot and
    /// this struct always agree.
    pub fn registered(registry: &MetricsRegistry) -> Self {
        RtMetrics {
            resends: registry.counter("rt.resends"),
            duplicates: registry.counter("rt.duplicates"),
            give_ups: registry.counter("rt.give_ups"),
            am_recoveries: registry.counter("rt.am_recoveries"),
            failure_scale_ins: registry.counter("rt.failure_scale_ins"),
            state_chunks: registry.counter("rt.state_chunks"),
        }
    }
}

/// A point-in-time copy of [`RtMetrics`] plus bus-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtMetricsSnapshot {
    /// Transport-level resends after ack timeouts.
    pub resends: u64,
    /// Duplicate deliveries suppressed by receivers.
    pub duplicates: u64,
    /// Messages abandoned after the attempt budget.
    pub give_ups: u64,
    /// Replacement AMs elected by the watchdog.
    pub am_recoveries: u64,
    /// Failure-driven scale-ins executed after missed heartbeats.
    pub failure_scale_ins: u64,
    /// State chunks sent while replicating training state.
    pub state_chunks: u64,
    /// Sends to unregistered/departed endpoints (from the bus).
    pub dead_letters: u64,
}

impl RtMetrics {
    /// Snapshots the counters; `dead_letters` is supplied by the caller
    /// (it lives on the bus).
    pub fn snapshot(&self, dead_letters: u64) -> RtMetricsSnapshot {
        RtMetricsSnapshot {
            resends: self.resends.get(),
            duplicates: self.duplicates.get(),
            give_ups: self.give_ups.get(),
            am_recoveries: self.am_recoveries.get(),
            failure_scale_ins: self.failure_scale_ins.get(),
            state_chunks: self.state_chunks.get(),
            dead_letters,
        }
    }
}

/// Attempt number stamped on the first *resend* of a message. The
/// original transmission is attempt 1; if the tracker has already
/// forgotten the entry by poll time we conservatively report the second
/// attempt rather than inventing attempt 0/1.
const FIRST_RESEND_ATTEMPT: u32 = 2;

/// First-contact grace (ms) the failure detector extends in remote mode
/// to members it has never heard from. Remote founding workers are OS
/// processes spawned by an external orchestrator *after* the coordinator
/// is up; on a loaded machine, spawn + connect + init can easily outlast
/// a heartbeat timeout tuned for steady-state silence, and condemning a
/// worker that never arrived deadlocks the job (its late `Report` is not
/// an admission path). Once a worker has been heard from, the normal
/// heartbeat timeout applies. The epoch machine reuses this span as the
/// default per-epoch join window (DESIGN.md §17): both answer "how long
/// do we wait for a member we have never heard from".
pub const REMOTE_FIRST_CONTACT_GRACE_MS: u64 = 10_000;

/// A message the endpoint gave up on: the peer never acked within the
/// attempt budget.
#[derive(Debug, Clone)]
pub struct GiveUp {
    /// The abandoned message id.
    pub id: MsgId,
    /// The unresponsive destination.
    pub to: EndpointId,
    /// The abandoned payload.
    pub body: RtMsg,
}

/// An endpoint with at-least-once delivery and duplicate suppression.
pub struct ReliableEndpoint {
    bus: Bus,
    endpoint: Endpoint,
    ids: MsgIdAllocator,
    retry: RetryTracker<(EndpointId, RtMsg)>,
    dedup: BoundedDedupFilter,
    metrics: Arc<RtMetrics>,
}

impl std::fmt::Debug for ReliableEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableEndpoint")
            .field("id", &self.endpoint.id())
            .field("pending", &self.retry.pending())
            .finish()
    }
}

impl ReliableEndpoint {
    /// Wraps `endpoint` with reliable semantics. `owner` scopes the id
    /// stream; `max_attempts` of `None` retries forever.
    pub fn new(
        bus: Bus,
        endpoint: Endpoint,
        owner: u32,
        retry_timeout: Duration,
        max_attempts: Option<u32>,
        metrics: Arc<RtMetrics>,
    ) -> Self {
        let mut retry = RetryTracker::new(std_to_sim(retry_timeout));
        if let Some(max) = max_attempts {
            retry = retry.with_max_attempts(max);
        }
        ReliableEndpoint {
            bus,
            endpoint,
            ids: MsgIdAllocator::for_owner(owner),
            retry,
            dedup: BoundedDedupFilter::default(),
            metrics,
        }
    }

    /// This endpoint's bus id.
    pub fn id(&self) -> EndpointId {
        self.endpoint.id()
    }

    /// The underlying bus (for stats or bare sends).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The clock this endpoint's retry timers tick on (the bus clock).
    pub fn time(&self) -> &TimeSource {
        self.bus.time()
    }

    /// Sends `body` reliably: it will be resent every timeout until the
    /// receiver acks (or the attempt budget runs out). Returns the id.
    pub fn send(&mut self, to: EndpointId, body: RtMsg) -> MsgId {
        let id = self.ids.next_id();
        if matches!(body, RtMsg::StateChunk { .. }) {
            self.metrics.state_chunks.inc();
        }
        let sent_at = self.bus.time().now();
        self.retry.track(id, (to, body.clone()), sent_at);
        self.bus.send_envelope(
            to,
            Envelope {
                id,
                from: self.endpoint.id(),
                attempt: 1,
                body,
            },
        );
        id
    }

    /// Sends `body` once, fire-and-forget (heartbeats, acks).
    pub fn send_unreliable(&mut self, to: EndpointId, body: RtMsg) -> MsgId {
        let id = self.ids.next_id();
        self.bus.send_envelope(
            to,
            Envelope {
                id,
                from: self.endpoint.id(),
                attempt: 1,
                body,
            },
        );
        id
    }

    /// Resends every overdue message and returns the ones given up on.
    /// Call this regularly (every receive timeout at least).
    pub fn tick(&mut self) -> Vec<GiveUp> {
        let mut gave_up = Vec::new();
        let now = self.bus.time().now();
        for outcome in self.retry.poll(now) {
            match outcome {
                RetryOutcome::Resend(id, (to, body)) => {
                    let attempt = self.retry.attempts(id).unwrap_or(FIRST_RESEND_ATTEMPT);
                    self.metrics.resends.inc();
                    if let Some(journal) = self.bus.journal() {
                        journal.emit(EventKind::MessageResent { to, attempt });
                    }
                    self.bus.send_envelope(
                        to,
                        Envelope {
                            id,
                            from: self.endpoint.id(),
                            attempt,
                            body,
                        },
                    );
                }
                RetryOutcome::GaveUp(id, (to, body)) => {
                    self.metrics.give_ups.inc();
                    if let Some(journal) = self.bus.journal() {
                        journal.emit(EventKind::MessageGaveUp { to });
                    }
                    gave_up.push(GiveUp { id, to, body });
                }
            }
        }
        gave_up
    }

    /// Receives the next *fresh* application message, waiting up to
    /// `timeout`. Transport acks are absorbed (they settle the retry
    /// tracker), incoming messages are acked automatically, and duplicates
    /// are suppressed. Returns `None` on timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<(EndpointId, RtMsg)> {
        let deadline = self.bus.time().deadline_after(timeout);
        loop {
            let now = self.bus.time().now();
            if now >= deadline {
                return None;
            }
            let remaining = sim_to_std(deadline - now);
            let env = self.endpoint.recv_timeout(remaining)?;
            match &env.body {
                RtMsg::MsgAck { of } => {
                    self.retry.ack(*of);
                    continue;
                }
                // Heartbeats are unreliable by design: no ack traffic.
                RtMsg::Heartbeat { .. } => {}
                _ => {
                    // Ack first — even duplicates need re-acking, because a
                    // resend means our previous ack was lost.
                    let ack_id = self.ids.next_id();
                    self.bus.send_envelope(
                        env.from,
                        Envelope {
                            id: ack_id,
                            from: self.endpoint.id(),
                            attempt: 1,
                            body: RtMsg::MsgAck { of: env.id },
                        },
                    );
                }
            }
            if !self.dedup.first_delivery(env.id) {
                self.metrics.duplicates.inc();
                // Heartbeat duplicates are pure chaos noise; keep them out
                // of the journal so the ring retains adjustment events.
                if !matches!(env.body, RtMsg::Heartbeat { .. }) {
                    if let Some(journal) = self.bus.journal() {
                        journal.emit(EventKind::DuplicateSuppressed { from: env.from });
                    }
                }
                continue;
            }
            return Some((env.from, env.body));
        }
    }

    /// Non-blocking receive: drains acks and duplicates, returns the
    /// first payload already sitting in the queue, or `None` when the
    /// queue is empty *right now*. Unlike [`recv_timeout`], this never
    /// parks — under a virtual clock a hot system (every thread
    /// runnable) never advances time, so a pure-timeout wait on an
    /// empty queue would starve; use this where "whatever is queued at
    /// this instant" is the actual requirement.
    ///
    /// [`recv_timeout`]: Self::recv_timeout
    pub fn try_recv(&mut self) -> Option<(EndpointId, RtMsg)> {
        loop {
            let env = self.endpoint.try_recv()?;
            match &env.body {
                RtMsg::MsgAck { of } => {
                    self.retry.ack(*of);
                    continue;
                }
                RtMsg::Heartbeat { .. } => {}
                _ => {
                    let ack_id = self.ids.next_id();
                    self.bus.send_envelope(
                        env.from,
                        Envelope {
                            id: ack_id,
                            from: self.endpoint.id(),
                            attempt: 1,
                            body: RtMsg::MsgAck { of: env.id },
                        },
                    );
                }
            }
            if !self.dedup.first_delivery(env.id) {
                self.metrics.duplicates.inc();
                if !matches!(env.body, RtMsg::Heartbeat { .. }) {
                    if let Some(journal) = self.bus.journal() {
                        journal.emit(EventKind::DuplicateSuppressed { from: env.from });
                    }
                }
                continue;
            }
            return Some((env.from, env.body));
        }
    }

    /// Messages awaiting acknowledgement.
    pub fn pending(&self) -> usize {
        self.retry.pending()
    }

    /// Resends performed by this endpoint.
    pub fn resend_count(&self) -> u64 {
        self.retry.resend_count()
    }

    /// Duplicates suppressed by this endpoint.
    pub fn duplicate_count(&self) -> u64 {
        self.dedup.duplicate_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPolicy;
    use elan_core::state::WorkerId;

    /// A virtual-time bus with the test thread registered as the only
    /// schedulable thread: every `recv_timeout`/`sleep` auto-advances the
    /// clock, so these tests take zero wall-clock waiting.
    fn vbus(seed: u64, policy: Option<ChaosPolicy>) -> (Bus, TimeSource) {
        let time = TimeSource::virtual_seeded(seed);
        time.register_current();
        let mut builder = Bus::builder().time(time.clone());
        if let Some(policy) = policy {
            builder = builder.chaos(policy);
        }
        (builder.build(), time)
    }

    fn pair(bus: &Bus, metrics: &Arc<RtMetrics>) -> (ReliableEndpoint, ReliableEndpoint) {
        let a = ReliableEndpoint::new(
            bus.clone(),
            bus.register(EndpointId::Am),
            1,
            Duration::from_millis(20),
            None,
            Arc::clone(metrics),
        );
        let b = ReliableEndpoint::new(
            bus.clone(),
            bus.register(EndpointId::Worker(WorkerId(0))),
            16,
            Duration::from_millis(20),
            None,
            Arc::clone(metrics),
        );
        (a, b)
    }

    #[test]
    fn delivery_and_ack_settle_the_tracker() {
        let (bus, time) = vbus(1, None);
        let metrics = Arc::new(RtMetrics::default());
        let (mut am, mut w) = pair(&bus, &metrics);
        am.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        assert_eq!(am.pending(), 1);
        // Worker receives (and acks)...
        let (from, msg) = w.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(from, EndpointId::Am);
        assert!(matches!(msg, RtMsg::Leave { term: 0 }));
        // ...AM absorbs the ack on its next receive attempt.
        assert!(am.recv_timeout(Duration::from_millis(50)).is_none());
        assert_eq!(am.pending(), 0);
        time.deregister();
    }

    #[test]
    fn lost_messages_are_resent_until_acked() {
        // Over half the traffic vanishes; retries must win eventually.
        // Virtual time: five "seconds" of retrying cost no wall clock.
        let (bus, time) = vbus(3, Some(ChaosPolicy::new(3).drop(0.55)));
        let metrics = Arc::new(RtMetrics::default());
        let (mut am, mut w) = pair(&bus, &metrics);
        for _ in 0..10 {
            am.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        }
        let deadline = time.deadline_after(Duration::from_secs(5));
        let mut got = 0;
        while got < 10 && time.now() < deadline {
            am.tick();
            w.tick();
            if w.recv_timeout(Duration::from_millis(5)).is_some() {
                got += 1;
            }
            // Let the AM absorb acks.
            while am.recv_timeout(Duration::from_millis(1)).is_some() {}
        }
        assert_eq!(got, 10, "all messages eventually delivered");
        let deadline = time.deadline_after(Duration::from_secs(2));
        while am.pending() > 0 && time.now() < deadline {
            am.tick();
            // Keep pumping the worker: duplicates are absorbed but re-acked,
            // which is what finally settles the AM when acks themselves drop.
            let _ = w.recv_timeout(Duration::from_millis(1));
            let _ = am.recv_timeout(Duration::from_millis(5));
        }
        assert_eq!(am.pending(), 0, "all sends eventually acked");
        assert!(metrics.resends.get() > 0);
        time.deregister();
    }

    #[test]
    fn duplicates_are_suppressed() {
        let (bus, time) = vbus(5, Some(ChaosPolicy::new(5).duplicate(1.0)));
        let metrics = Arc::new(RtMetrics::default());
        let (mut am, mut w) = pair(&bus, &metrics);
        am.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        assert!(w.recv_timeout(Duration::from_millis(50)).is_some());
        // The duplicate copy is absorbed, not surfaced.
        assert!(w.recv_timeout(Duration::from_millis(30)).is_none());
        assert_eq!(w.duplicate_count(), 1);
        assert!(metrics.duplicates.get() >= 1);
        time.deregister();
    }

    #[test]
    fn give_up_after_budget_surfaces_the_peer() {
        let (bus, time) = vbus(7, None);
        let metrics = Arc::new(RtMetrics::default());
        // No receiver registered for the worker: acks never come.
        let mut am = ReliableEndpoint::new(
            bus.clone(),
            bus.register(EndpointId::Am),
            1,
            Duration::from_millis(5),
            Some(3),
            Arc::clone(&metrics),
        );
        am.send(EndpointId::Worker(WorkerId(9)), RtMsg::Leave { term: 0 });
        let deadline = time.deadline_after(Duration::from_secs(2));
        let mut gave_up = Vec::new();
        while gave_up.is_empty() && time.now() < deadline {
            time.sleep(Duration::from_millis(6));
            gave_up = am.tick();
        }
        assert_eq!(gave_up.len(), 1);
        assert_eq!(gave_up[0].to, EndpointId::Worker(WorkerId(9)));
        assert_eq!(metrics.give_ups.get(), 1);
        assert_eq!(am.pending(), 0);
        time.deregister();
    }

    #[test]
    fn resent_message_is_not_reprocessed() {
        // Ack dropped → sender resends → receiver must suppress the dup.
        let (bus, time) = vbus(9, None);
        let metrics = Arc::new(RtMetrics::default());
        let (mut am, mut w) = pair(&bus, &metrics);
        am.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        assert!(w.recv_timeout(Duration::from_millis(50)).is_some());
        // Simulate a lost ack: force a resend by waiting out the timeout
        // without letting the AM read its queue.
        time.sleep(Duration::from_millis(25));
        am.tick();
        assert!(w.recv_timeout(Duration::from_millis(30)).is_none());
        assert_eq!(w.duplicate_count(), 1);
        time.deregister();
    }

    #[test]
    fn retry_timers_tick_on_the_bus_clock() {
        // Regression (clock unification): a resend must fire exactly when
        // *virtual* time crosses the retry timeout, independent of wall
        // time and of how often `tick()` is called.
        let (bus, time) = vbus(11, None);
        let metrics = Arc::new(RtMetrics::default());
        let (mut am, _w) = pair(&bus, &metrics);
        am.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        // Many ticks with no time passage: nothing is overdue.
        for _ in 0..100 {
            assert!(am.tick().is_empty());
        }
        assert_eq!(am.resend_count(), 0);
        // One nanosecond short of the 20 ms timeout: still nothing.
        time.sleep(Duration::from_nanos(20_000_000 - 1));
        am.tick();
        assert_eq!(am.resend_count(), 0);
        // Crossing the timeout fires exactly one resend.
        time.sleep(Duration::from_nanos(1));
        am.tick();
        assert_eq!(am.resend_count(), 1);
        time.deregister();
    }
}
