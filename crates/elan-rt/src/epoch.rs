//! Epoch-based open membership (DESIGN.md §17).
//!
//! Elan's §IV–V adjustment pipeline scales *trusted* workers on a
//! controller's command. This module generalizes it to *open*
//! membership: untrusted workers join and leave at **epoch boundaries**
//! instead of mid-adjustment, the way Psyche's coordinator ticks its
//! round machine. The [`EpochMachine`] is a pure, deterministic state
//! machine —
//!
//! ```text
//! WaitingForMembers ── min members met, join window elapsed ──► Warmup
//!       ▲                                                         │
//!       │                        joiners replicate state, witness │
//!       │ next epoch                       step audits their      │
//!       │                                  warmup digests         ▼
//!   Cooldown ◄── train_boundaries boundaries released ◄──────── Train
//! ```
//!
//! — driven entirely by explicit inputs (`tick`, `join_request`,
//! `witness_vote`, `member_left`, `boundary_released`) carrying an
//! explicit virtual timestamp. It owns no clock, no thread, and no IO:
//! the live AM embeds it and translates its [`EpochCmd`]s into bus
//! traffic (the existing chunked replication path does the warmup), and
//! the [`run_churn`] harness drives the *same* machine with thousands
//! of scripted members on a synthetic clock, so a 10k-member churn
//! storm replays in milliseconds and the journal is a pure function of
//! the seed.
//!
//! The witness step is the open-membership analogue of Elan's
//! consistency checks: a joiner finishing warmup *claims* a digest over
//! its replicated state; the machine samples peers
//! ([`sample_witnesses`]) that recompute the digest over their own
//! replicas — identical by data-parallel invariant — and vote
//! admit/evict. No joiner enters `Train` un-witnessed, and the
//! [`check_epoch_safety`](crate::safety::check_epoch_safety) auditor
//! re-proves that from the journal alone.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use elan_core::protocol::EpochPhase;
use elan_core::state::WorkerId;

use crate::obs::{Event, EventJournal, EventKind};
use crate::reliable::REMOTE_FIRST_CONTACT_GRACE_MS;
use crate::time::TimeSource;

/// Configuration of the epoch machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Members required before the machine leaves `WaitingForMembers`.
    /// The join window stays open (and keeps accepting announces) until
    /// the threshold is met, even past its nominal duration.
    pub min_members: usize,
    /// Hard cap on membership; announces over the cap are deferred.
    pub max_members: usize,
    /// Nominal duration of each epoch's join window, in milliseconds of
    /// virtual time. Also bounds how long `Warmup` waits for a joiner's
    /// digest before evicting it.
    pub join_window_ms: u64,
    /// Coordination boundaries released per `Train` phase — the epoch
    /// length in boundaries.
    pub train_boundaries: u64,
    /// Peers sampled to witness each joiner's warmup digest.
    pub witness_sample: usize,
    /// Data shards re-partitioned over the membership each epoch.
    pub shard_count: u64,
    /// Seed for witness sampling and shard re-assignment.
    pub seed: u64,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            min_members: 1,
            max_members: 64,
            // The remote-mode first-contact grace answers the same
            // question — how long to wait for a member we have never
            // heard from — so it is the natural default window.
            join_window_ms: REMOTE_FIRST_CONTACT_GRACE_MS,
            train_boundaries: 4,
            witness_sample: 3,
            shard_count: 64,
            seed: 0,
        }
    }
}

/// An instruction the machine hands its driver (the live AM, or the
/// churn harness). Commands are the machine's only side-channel: it
/// never touches a bus itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochCmd {
    /// Replicate state to these joiners over the chunked transfer path.
    StartWarmup {
        /// The epoch admitting them.
        epoch: u64,
        /// The joiners entering warmup, in id order.
        joiners: Vec<WorkerId>,
    },
    /// Ask each witness to recompute its state digest against `probe`
    /// and vote on `subject`'s admission.
    QueryWitnesses {
        /// The epoch of the admission.
        epoch: u64,
        /// The joiner under audit.
        subject: WorkerId,
        /// The joiner's claimed warmup digest.
        probe: u64,
        /// The sampled voters.
        witnesses: Vec<WorkerId>,
    },
    /// The witness vote admitted `subject`; it is now a member.
    Admit {
        /// The epoch that admitted it.
        epoch: u64,
        /// The new member.
        subject: WorkerId,
    },
    /// The witness vote (or a warmup timeout) evicted `subject`.
    Evict {
        /// The epoch that evicted it.
        epoch: u64,
        /// The evicted joiner.
        subject: WorkerId,
    },
    /// The machine entered a phase; the live AM broadcasts this as an
    /// `EpochAdvance` message.
    Announce {
        /// The training epoch.
        epoch: u64,
        /// The phase just entered.
        phase: EpochPhase,
    },
}

/// One joiner being considered in the current epoch.
#[derive(Debug, Clone, Default)]
struct PendingJoin {
    /// Claimed warmup digest, once the joiner reported it.
    digest: Option<u64>,
    /// Sampled witnesses still expected to vote.
    expected: BTreeSet<WorkerId>,
    /// Votes received: witness → admit.
    votes: BTreeMap<WorkerId, bool>,
}

impl PendingJoin {
    fn tally(&self) -> (u64, u64) {
        let votes_for = self.votes.values().filter(|v| **v).count() as u64;
        let votes_against = self.votes.len() as u64 - votes_for;
        (votes_for, votes_against)
    }
}

/// The deterministic epoch state machine. See the module docs for the
/// phase diagram; all state is ordered (`BTreeMap`/`BTreeSet`), so a
/// replay from the same inputs is byte-identical.
#[derive(Debug)]
pub struct EpochMachine {
    cfg: EpochConfig,
    epoch: u64,
    phase: EpochPhase,
    members: BTreeSet<WorkerId>,
    pending: BTreeMap<WorkerId, PendingJoin>,
    /// `WaitingForMembers`: nominal close of the join window.
    /// `Warmup`: deadline after which unresolved joiners are evicted.
    deadline_us: u64,
    /// Boundaries left before `Train` rolls into `Cooldown`.
    boundaries_left: u64,
    /// Joiners already told "not this epoch" (dedups `JoinDeferred`).
    deferred: BTreeSet<WorkerId>,
}

impl EpochMachine {
    /// A machine at epoch 0 in `WaitingForMembers`, with `founding`
    /// already members (the live runtime's launch cohort; empty for a
    /// fully open job). Journals the configuration so the epoch-safety
    /// auditor can read the thresholds back out of the events.
    pub fn new(cfg: EpochConfig, now_us: u64, founding: &[WorkerId], j: &EventJournal) -> Self {
        j.emit_at(
            now_us,
            EventKind::EpochConfigured {
                min_members: cfg.min_members as u64,
                max_members: cfg.max_members as u64,
                join_window_ms: cfg.join_window_ms,
            },
        );
        let members: BTreeSet<WorkerId> = founding.iter().copied().collect();
        j.emit_at(
            now_us,
            EventKind::EpochPhaseEntered {
                epoch: 0,
                phase: EpochPhase::WaitingForMembers,
                members: members.len() as u64,
            },
        );
        EpochMachine {
            deadline_us: now_us + cfg.join_window_ms * 1_000,
            cfg,
            epoch: 0,
            phase: EpochPhase::WaitingForMembers,
            members,
            pending: BTreeMap::new(),
            boundaries_left: 0,
            deferred: BTreeSet::new(),
        }
    }

    /// Rebuilds a machine after an AM failover from the durable record's
    /// `(epoch, phase)`. Pending joiners are *not* restored — the join
    /// announce is client-driven, so joiners re-present themselves (and
    /// their digests) to the successor; a `Warmup` resumed this way
    /// re-adopts them as the digests arrive.
    pub fn recover(
        cfg: EpochConfig,
        epoch: u64,
        phase: EpochPhase,
        members: &[WorkerId],
        now_us: u64,
    ) -> Self {
        EpochMachine {
            deadline_us: now_us + cfg.join_window_ms * 1_000,
            cfg,
            epoch,
            phase,
            members: members.iter().copied().collect(),
            pending: BTreeMap::new(),
            boundaries_left: cfg.train_boundaries,
            deferred: BTreeSet::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &EpochConfig {
        &self.cfg
    }

    /// The current training epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current phase.
    pub fn phase(&self) -> EpochPhase {
        self.phase
    }

    /// Current members, in id order.
    pub fn members(&self) -> Vec<WorkerId> {
        self.members.iter().copied().collect()
    }

    /// Whether `worker` is a pending joiner of the current epoch.
    pub fn is_pending(&self, worker: WorkerId) -> bool {
        self.pending.contains_key(&worker)
    }

    /// Whether `worker` is a member.
    pub fn is_member(&self, worker: WorkerId) -> bool {
        self.members.contains(&worker)
    }

    /// Force-syncs the membership view — the live AM calls this after a
    /// *controller-driven* adjustment (scale-out/in, migrate) changes
    /// membership outside the machine's own admission path. Pending
    /// joiners and phase are untouched; threshold effects surface at the
    /// next tick or boundary.
    pub fn set_members(&mut self, members: &[WorkerId]) {
        self.members = members.iter().copied().collect();
    }

    /// Advances time-gated transitions: closes an elapsed join window
    /// (entering `Warmup`, or straight through to `Train` when nobody is
    /// pending), evicts warmup joiners that outlived the digest
    /// deadline, and rolls `Cooldown` into the next epoch's window.
    pub fn tick(&mut self, now_us: u64, j: &EventJournal) -> Vec<EpochCmd> {
        let mut cmds = Vec::new();
        match self.phase {
            EpochPhase::WaitingForMembers => {
                let quorum = self.members.len() + self.pending.len();
                if now_us >= self.deadline_us && quorum >= self.cfg.min_members {
                    j.emit_at(
                        now_us,
                        EventKind::JoinWindowClosed {
                            epoch: self.epoch,
                            pending: self.pending.len() as u64,
                        },
                    );
                    if self.members.is_empty() {
                        // Founding cohort: nobody holds state yet, so
                        // there is nothing to replicate and nobody to
                        // witness — the cohort *is* the genesis state.
                        let cohort: Vec<WorkerId> = self.pending.keys().copied().collect();
                        self.pending.clear();
                        self.members.extend(cohort);
                        self.goto(EpochPhase::Warmup, now_us, j, &mut cmds);
                        self.enter_train(now_us, j, &mut cmds);
                    } else if self.pending.is_empty() {
                        // No joiners this epoch: warmup is vacuous.
                        self.goto(EpochPhase::Warmup, now_us, j, &mut cmds);
                        self.enter_train(now_us, j, &mut cmds);
                    } else {
                        self.deadline_us = now_us + self.cfg.join_window_ms * 1_000;
                        self.goto(EpochPhase::Warmup, now_us, j, &mut cmds);
                        cmds.push(EpochCmd::StartWarmup {
                            epoch: self.epoch,
                            joiners: self.pending.keys().copied().collect(),
                        });
                    }
                }
            }
            EpochPhase::Warmup => {
                if now_us >= self.deadline_us {
                    // Digest deadline: whoever has not resolved is out.
                    let stale: Vec<WorkerId> = self.pending.keys().copied().collect();
                    for w in stale {
                        self.evict(w, now_us, j, &mut cmds);
                    }
                }
                self.maybe_finish_warmup(now_us, j, &mut cmds);
            }
            EpochPhase::Train => {}
            EpochPhase::Cooldown => {
                self.epoch += 1;
                self.pending.clear();
                self.deferred.clear();
                self.deadline_us = now_us + self.cfg.join_window_ms * 1_000;
                self.goto(EpochPhase::WaitingForMembers, now_us, j, &mut cmds);
            }
        }
        cmds
    }

    /// A join announce (`digest: None`) or a warmup-completion claim
    /// (`digest: Some`). Announces land in an open window; anything else
    /// is deferred to a later epoch — the joiner re-announces, which
    /// makes the handshake idempotent under duplication and partition.
    pub fn join_request(
        &mut self,
        worker: WorkerId,
        digest: Option<u64>,
        now_us: u64,
        j: &EventJournal,
    ) -> Vec<EpochCmd> {
        let mut cmds = Vec::new();
        if self.members.contains(&worker) {
            return cmds; // stale re-announce from an admitted member
        }
        match self.phase {
            EpochPhase::WaitingForMembers => {
                if self.pending.contains_key(&worker) {
                    return cmds; // duplicate announce
                }
                if self.members.len() + self.pending.len() >= self.cfg.max_members {
                    self.defer(worker, now_us, j);
                    return cmds;
                }
                self.pending.insert(worker, PendingJoin::default());
                j.emit_at(
                    now_us,
                    EventKind::JoinRequested {
                        worker,
                        epoch: self.epoch,
                    },
                );
            }
            EpochPhase::Warmup => match digest {
                Some(d) => {
                    // A digest claim: either a tracked joiner finishing
                    // warmup, or a joiner re-presenting itself to a
                    // post-failover AM that lost the pending set.
                    if !self.pending.contains_key(&worker) {
                        if self.members.len() + self.pending.len() >= self.cfg.max_members {
                            self.defer(worker, now_us, j);
                            return cmds;
                        }
                        self.pending.insert(worker, PendingJoin::default());
                        j.emit_at(
                            now_us,
                            EventKind::JoinRequested {
                                worker,
                                epoch: self.epoch,
                            },
                        );
                    }
                    self.claim_digest(worker, d, now_us, j, &mut cmds);
                }
                None => {
                    if !self.pending.contains_key(&worker) {
                        self.defer(worker, now_us, j);
                    }
                }
            },
            EpochPhase::Train | EpochPhase::Cooldown => {
                self.defer(worker, now_us, j);
            }
        }
        cmds
    }

    /// A witness's verdict on `subject`. Ignores votes for other epochs,
    /// unknown subjects, unsampled witnesses, and duplicates.
    pub fn witness_vote(
        &mut self,
        witness: WorkerId,
        subject: WorkerId,
        epoch: u64,
        admit: bool,
        now_us: u64,
        j: &EventJournal,
    ) -> Vec<EpochCmd> {
        let mut cmds = Vec::new();
        if epoch != self.epoch || self.phase != EpochPhase::Warmup {
            return cmds;
        }
        let Some(p) = self.pending.get_mut(&subject) else {
            return cmds;
        };
        if !p.expected.remove(&witness) {
            return cmds; // not sampled, or already voted
        }
        p.votes.insert(witness, admit);
        j.emit_at(
            now_us,
            EventKind::WitnessVoteCast {
                witness,
                subject,
                epoch,
                admit,
            },
        );
        if p.expected.is_empty() {
            self.resolve(subject, now_us, j, &mut cmds);
        }
        self.maybe_finish_warmup(now_us, j, &mut cmds);
        cmds
    }

    /// A member (or pending joiner) left or was declared dead. During
    /// `Warmup` this prunes it from every witness set it sat on; during
    /// `Train` a drop below the min threshold aborts the epoch.
    pub fn member_left(
        &mut self,
        worker: WorkerId,
        now_us: u64,
        j: &EventJournal,
    ) -> Vec<EpochCmd> {
        let mut cmds = Vec::new();
        self.pending.remove(&worker);
        if self.members.remove(&worker) && self.phase == EpochPhase::Warmup {
            // A lost witness can never vote: prune it everywhere and
            // re-check resolution with the smaller quorum.
            let subjects: Vec<WorkerId> = self.pending.keys().copied().collect();
            for s in subjects {
                let resolved = {
                    let Some(p) = self.pending.get_mut(&s) else {
                        continue;
                    };
                    p.expected.remove(&worker);
                    p.digest.is_some() && p.expected.is_empty()
                };
                if resolved {
                    self.resolve(s, now_us, j, &mut cmds);
                }
            }
        }
        if self.phase == EpochPhase::Train && self.members.len() < self.cfg.min_members {
            // The epoch lost its quorum mid-train: settle and re-open.
            self.goto(EpochPhase::Cooldown, now_us, j, &mut cmds);
        }
        self.maybe_finish_warmup(now_us, j, &mut cmds);
        cmds
    }

    /// One coordination boundary released during `Train`; the epoch
    /// rolls into `Cooldown` after `train_boundaries` of them.
    pub fn boundary_released(&mut self, now_us: u64, j: &EventJournal) -> Vec<EpochCmd> {
        let mut cmds = Vec::new();
        if self.phase != EpochPhase::Train {
            return cmds;
        }
        self.boundaries_left = self.boundaries_left.saturating_sub(1);
        if self.boundaries_left == 0 {
            self.goto(EpochPhase::Cooldown, now_us, j, &mut cmds);
        }
        cmds
    }

    fn defer(&mut self, worker: WorkerId, now_us: u64, j: &EventJournal) {
        if self.deferred.insert(worker) {
            j.emit_at(
                now_us,
                EventKind::JoinDeferred {
                    worker,
                    epoch: self.epoch,
                },
            );
        }
    }

    fn claim_digest(
        &mut self,
        worker: WorkerId,
        digest: u64,
        now_us: u64,
        j: &EventJournal,
        cmds: &mut Vec<EpochCmd>,
    ) {
        let witnesses = sample_witnesses(
            self.cfg.seed,
            self.epoch,
            worker,
            &self.members,
            self.cfg.witness_sample,
        );
        let Some(p) = self.pending.get_mut(&worker) else {
            return;
        };
        if p.digest.is_some() {
            return; // duplicate claim
        }
        p.digest = Some(digest);
        p.expected = witnesses.iter().copied().collect();
        if p.expected.is_empty() {
            // No peer can vouch for it: an un-witnessed admission is
            // forbidden, so the safe verdict is eviction.
            self.evict(worker, now_us, j, cmds);
            return;
        }
        cmds.push(EpochCmd::QueryWitnesses {
            epoch: self.epoch,
            subject: worker,
            probe: digest,
            witnesses,
        });
    }

    /// All sampled witnesses have voted: strict majority admits.
    fn resolve(
        &mut self,
        subject: WorkerId,
        now_us: u64,
        j: &EventJournal,
        cmds: &mut Vec<EpochCmd>,
    ) {
        let Some(p) = self.pending.get(&subject) else {
            return;
        };
        let (votes_for, votes_against) = p.tally();
        if votes_for > votes_against {
            self.pending.remove(&subject);
            self.members.insert(subject);
            j.emit_at(
                now_us,
                EventKind::JoinAdmitted {
                    worker: subject,
                    epoch: self.epoch,
                    votes_for,
                    votes_against,
                },
            );
            cmds.push(EpochCmd::Admit {
                epoch: self.epoch,
                subject,
            });
        } else {
            self.evict(subject, now_us, j, cmds);
        }
    }

    fn evict(
        &mut self,
        subject: WorkerId,
        now_us: u64,
        j: &EventJournal,
        cmds: &mut Vec<EpochCmd>,
    ) {
        let (votes_for, votes_against) = self
            .pending
            .remove(&subject)
            .map(|p| p.tally())
            .unwrap_or((0, 0));
        j.emit_at(
            now_us,
            EventKind::WitnessEvicted {
                worker: subject,
                epoch: self.epoch,
                votes_for,
                votes_against,
            },
        );
        cmds.push(EpochCmd::Evict {
            epoch: self.epoch,
            subject,
        });
    }

    fn maybe_finish_warmup(&mut self, now_us: u64, j: &EventJournal, cmds: &mut Vec<EpochCmd>) {
        if self.phase == EpochPhase::Warmup && self.pending.is_empty() {
            if self.members.len() >= self.cfg.min_members {
                self.enter_train(now_us, j, cmds);
            } else {
                // Evictions (or member loss) dropped the cohort below
                // the floor: the epoch aborts instead of training
                // under-strength.
                self.goto(EpochPhase::Cooldown, now_us, j, cmds);
            }
        }
    }

    fn enter_train(&mut self, now_us: u64, j: &EventJournal, cmds: &mut Vec<EpochCmd>) {
        let owners: Vec<WorkerId> = self.members.iter().copied().collect();
        j.emit_at(
            now_us,
            EventKind::ShardsReassigned {
                epoch: self.epoch,
                members: self.members.len() as u64,
                checksum: shard_checksum(self.cfg.seed, self.epoch, self.cfg.shard_count, &owners),
            },
        );
        self.boundaries_left = self.cfg.train_boundaries.max(1);
        self.goto(EpochPhase::Train, now_us, j, cmds);
    }

    fn goto(&mut self, phase: EpochPhase, now_us: u64, j: &EventJournal, cmds: &mut Vec<EpochCmd>) {
        self.phase = phase;
        j.emit_at(
            now_us,
            EventKind::EpochPhaseEntered {
                epoch: self.epoch,
                phase,
                members: self.members.len() as u64,
            },
        );
        cmds.push(EpochCmd::Announce {
            epoch: self.epoch,
            phase,
        });
    }
}

/// SplitMix64-style finalizer: the deterministic dice every seeded
/// decision in this module rolls.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Samples up to `k` distinct witnesses for `subject` from `members` —
/// a pure function of `(seed, epoch, subject)`, so the live AM, the
/// churn harness, and a post-failover successor all pick the same
/// panel.
pub fn sample_witnesses(
    seed: u64,
    epoch: u64,
    subject: WorkerId,
    members: &BTreeSet<WorkerId>,
    k: usize,
) -> Vec<WorkerId> {
    let pool: Vec<WorkerId> = members.iter().copied().filter(|w| *w != subject).collect();
    if pool.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(pool.len());
    let mut taken = vec![false; pool.len()];
    let mut picked = Vec::with_capacity(k);
    let mut x = mix(seed ^ epoch.wrapping_mul(0xa076_1d64_78bd_642f) ^ u64::from(subject.0));
    while picked.len() < k {
        x = mix(x);
        let mut i = (x % pool.len() as u64) as usize;
        while taken[i] {
            i = (i + 1) % pool.len();
        }
        taken[i] = true;
        picked.push(pool[i]);
    }
    picked
}

/// The epoch's shard→member assignment: shard `s` belongs to
/// `owners[mix(seed, epoch, s) % owners.len()]`. Pure in all arguments.
pub fn shard_owners(
    seed: u64,
    epoch: u64,
    shard_count: u64,
    members: &[WorkerId],
) -> Vec<WorkerId> {
    if members.is_empty() {
        return Vec::new();
    }
    (0..shard_count)
        .map(|s| {
            let x = mix(seed ^ epoch.wrapping_mul(0xd6e8_feb8_6659_fd93) ^ s);
            members[(x % members.len() as u64) as usize]
        })
        .collect()
}

/// FNV-1a checksum of the full shard assignment — what
/// [`EventKind::ShardsReassigned`] pins in the journal.
pub fn shard_checksum(seed: u64, epoch: u64, shard_count: u64, members: &[WorkerId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (s, owner) in shard_owners(seed, epoch, shard_count, members)
        .iter()
        .enumerate()
    {
        h = (h ^ s as u64).wrapping_mul(0x0000_0100_0000_01b3);
        h = (h ^ u64::from(owner.0)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Churn simulation harness
// ---------------------------------------------------------------------------

/// Configuration of a scripted churn storm over the epoch machine.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Simulated member population (identities that may try to join).
    pub population: u32,
    /// Seed for every scripted decision (join/leave/crash dice,
    /// corruption, and the machine's own sampling).
    pub seed: u64,
    /// Simulation steps; each step advances virtual time by
    /// [`ChurnConfig::step_us`] and, during `Train`, releases one
    /// coordination boundary.
    pub steps: u64,
    /// Virtual microseconds per step.
    pub step_us: u64,
    /// The embedded machine's configuration (its `seed` is overwritten
    /// with [`ChurnConfig::seed`]).
    pub epoch: EpochConfig,
    /// Per-step join probability of an idle identity, in permille.
    pub join_permille: u32,
    /// Per-step voluntary-leave probability of a member, in permille.
    pub leave_permille: u32,
    /// Per-step crash probability of a member, in permille.
    pub crash_permille: u32,
    /// Fraction of joiners that lie about their warmup digest, in
    /// permille — witness bait.
    pub corrupt_permille: u32,
    /// Steps a joiner spends replicating state before claiming a digest.
    pub warmup_steps: u64,
    /// Scripted partition windows `[from_us, until_us)` during which
    /// join announces and digest claims are swallowed (the machine
    /// never sees them — exactly what an edge cut does to the bus).
    pub partitions: Vec<(u64, u64)>,
    /// Journal ring capacity.
    pub ring_capacity: usize,
}

impl ChurnConfig {
    /// A storm sized for `population` members: thresholds scale with the
    /// population, windows are a few steps long, and every fault dial is
    /// on.
    pub fn sized(population: u32, seed: u64) -> Self {
        let pop = population as usize;
        ChurnConfig {
            population,
            seed,
            steps: 400,
            step_us: 5_000,
            epoch: EpochConfig {
                min_members: (pop / 20).max(2),
                max_members: (pop / 2).max(4),
                join_window_ms: 25, // 5 steps of 5ms
                train_boundaries: 6,
                witness_sample: 3,
                shard_count: 256,
                seed,
            },
            join_permille: 60,
            leave_permille: 8,
            crash_permille: 4,
            corrupt_permille: 50,
            warmup_steps: 2,
            partitions: vec![(60 * 5_000, 90 * 5_000), (200 * 5_000, 220 * 5_000)],
            ring_capacity: 1 << 20,
        }
    }
}

/// What one churn run did, plus its journal for auditing and hashing.
#[derive(Debug)]
pub struct ChurnReport {
    /// Population of the storm.
    pub population: u32,
    /// Seed of the storm.
    pub seed: u64,
    /// Steps simulated.
    pub steps: u64,
    /// Virtual milliseconds covered.
    pub virtual_ms: u64,
    /// `Train` phases entered (epochs that actually trained).
    pub epochs_trained: u64,
    /// Joiners admitted by witness vote.
    pub admitted: u64,
    /// Joiners evicted by witness vote or warmup timeout.
    pub evicted: u64,
    /// Join attempts deferred to a later epoch.
    pub deferred: u64,
    /// Announces and digest claims swallowed by partition windows.
    pub partitioned: u64,
    /// Voluntary leaves scripted.
    pub leaves: u64,
    /// Crashes scripted.
    pub crashes: u64,
    /// Peak concurrent membership.
    pub peak_members: usize,
    /// FNV-1a hash over the journal's rendered event lines.
    pub journal_hash: u64,
    /// The retained journal, for the epoch-safety auditor.
    pub events: Vec<Event>,
}

/// Where one scripted identity is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimState {
    Idle,
    Announced,
    Warming { claim_at: u64 },
    Active,
    Dead,
}

/// Runs a scripted join/leave/crash storm over an [`EpochMachine`] on a
/// synthetic virtual clock. Deterministic: the report (including the
/// journal hash) is a pure function of `cfg`.
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let mut epoch_cfg = cfg.epoch;
    epoch_cfg.seed = cfg.seed;
    let journal = EventJournal::with_time(
        cfg.ring_capacity,
        Vec::new(),
        TimeSource::virtual_seeded(cfg.seed),
    );
    let mut machine = EpochMachine::new(epoch_cfg, 0, &[], &journal);
    let mut states: BTreeMap<WorkerId, SimState> = (1..=cfg.population)
        .map(|i| (WorkerId(i), SimState::Idle))
        .collect();
    let mut queue: VecDeque<EpochCmd> = VecDeque::new();
    let (mut partitioned, mut leaves, mut crashes) = (0u64, 0u64, 0u64);
    let mut peak_members = 0usize;

    // The digest honest members reproduce for an epoch; corrupt joiners
    // claim a perturbed one and get out-voted.
    let true_digest = |epoch: u64| mix(cfg.seed ^ epoch.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let roll = |salt: u64, id: u32, step: u64| -> u32 {
        (mix(cfg.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(id) << 32) ^ step)
            % 1000) as u32
    };

    for step in 0..cfg.steps {
        let now = step * cfg.step_us;
        let cut = cfg.partitions.iter().any(|(f, u)| *f <= now && now < *u);

        // Scripted member behaviour, in id order for determinism.
        let ids: Vec<WorkerId> = states.keys().copied().collect();
        for id in ids {
            match states[&id] {
                SimState::Idle if roll(1, id.0, step) < cfg.join_permille => {
                    if cut {
                        partitioned += 1; // announce swallowed by the cut
                    } else {
                        queue.extend(machine.join_request(id, None, now, &journal));
                        if machine.is_pending(id) {
                            states.insert(id, SimState::Announced);
                        }
                    }
                }
                SimState::Warming { claim_at } if step >= claim_at => {
                    if cut {
                        partitioned += 1; // digest claim swallowed; retried
                        states.insert(id, SimState::Warming { claim_at: step + 1 });
                    } else {
                        let honest = roll(2, id.0, 0) >= cfg.corrupt_permille;
                        let digest = if honest {
                            true_digest(machine.epoch())
                        } else {
                            true_digest(machine.epoch()) ^ 0xdead_beef
                        };
                        queue.extend(machine.join_request(id, Some(digest), now, &journal));
                    }
                }
                SimState::Active => {
                    if roll(3, id.0, step) < cfg.crash_permille {
                        crashes += 1;
                        states.insert(id, SimState::Dead);
                        queue.extend(machine.member_left(id, now, &journal));
                    } else if roll(4, id.0, step) < cfg.leave_permille {
                        leaves += 1;
                        states.insert(id, SimState::Idle);
                        queue.extend(machine.member_left(id, now, &journal));
                    }
                }
                _ => {}
            }
        }

        queue.extend(machine.tick(now, &journal));
        if machine.phase() == EpochPhase::Train {
            queue.extend(machine.boundary_released(now, &journal));
        }

        // Drain commands; witness votes can cascade into more commands.
        while let Some(cmd) = queue.pop_front() {
            match cmd {
                EpochCmd::StartWarmup { joiners, .. } => {
                    for w in joiners {
                        states.insert(
                            w,
                            SimState::Warming {
                                claim_at: step + cfg.warmup_steps,
                            },
                        );
                    }
                }
                EpochCmd::QueryWitnesses {
                    epoch,
                    subject,
                    probe,
                    witnesses,
                } => {
                    for witness in witnesses {
                        if states.get(&witness) == Some(&SimState::Active) {
                            let admit = probe == true_digest(epoch);
                            let more =
                                machine.witness_vote(witness, subject, epoch, admit, now, &journal);
                            queue.extend(more);
                        }
                    }
                }
                EpochCmd::Admit { subject, .. } => {
                    states.insert(subject, SimState::Active);
                }
                EpochCmd::Evict { subject, .. } => {
                    // Evicted joiners cool off but may try again later.
                    states.insert(subject, SimState::Idle);
                }
                EpochCmd::Announce { phase, .. } => {
                    if phase == EpochPhase::Train {
                        // Entering Train seals the membership; sync the
                        // scripted lifecycle with it (this is how the
                        // founding cohort — admitted without witnesses —
                        // becomes active).
                        for m in machine.members() {
                            states.insert(m, SimState::Active);
                        }
                    }
                }
            }
        }
        peak_members = peak_members.max(machine.members().len());
    }

    let events = journal.events();
    let summary = journal.summary();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for e in &events {
        for b in format!("{e:?}").bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ u64::from(b'\n')).wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChurnReport {
        population: cfg.population,
        seed: cfg.seed,
        steps: cfg.steps,
        virtual_ms: cfg.steps * cfg.step_us / 1_000,
        epochs_trained: summary.count("shards_reassigned"),
        admitted: summary.count("join_admitted"),
        evicted: summary.count("witness_evicted"),
        deferred: summary.count("join_deferred"),
        partitioned,
        leaves,
        crashes,
        peak_members,
        journal_hash: h,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::check_epoch_safety;

    fn journal() -> EventJournal {
        EventJournal::with_time(4096, Vec::new(), TimeSource::virtual_seeded(0))
    }

    fn cfg() -> EpochConfig {
        EpochConfig {
            min_members: 2,
            max_members: 4,
            join_window_ms: 10,
            train_boundaries: 2,
            witness_sample: 2,
            shard_count: 16,
            seed: 7,
        }
    }

    const MS: u64 = 1_000;

    fn w(n: u32) -> WorkerId {
        WorkerId(n)
    }

    #[test]
    fn founding_cohort_trains_without_witnesses() {
        let j = journal();
        let mut m = EpochMachine::new(cfg(), 0, &[], &j);
        assert_eq!(m.phase(), EpochPhase::WaitingForMembers);
        m.join_request(w(1), None, MS, &j);
        m.join_request(w(2), None, 2 * MS, &j);
        assert!(m.tick(5 * MS, &j).is_empty(), "window still open");
        let cmds = m.tick(10 * MS, &j);
        assert_eq!(m.phase(), EpochPhase::Train);
        assert_eq!(m.members(), vec![w(1), w(2)]);
        assert!(cmds.iter().any(|c| matches!(
            c,
            EpochCmd::Announce {
                phase: EpochPhase::Train,
                ..
            }
        )));
        let report = check_epoch_safety(&j.events());
        assert!(report.is_safe(), "{report}");
    }

    #[test]
    fn window_stays_open_below_min_members() {
        let j = journal();
        let mut m = EpochMachine::new(cfg(), 0, &[], &j);
        m.join_request(w(1), None, MS, &j);
        assert!(m.tick(50 * MS, &j).is_empty());
        assert_eq!(m.phase(), EpochPhase::WaitingForMembers);
        // A late join still lands, then the window can close.
        m.join_request(w(2), None, 51 * MS, &j);
        m.tick(52 * MS, &j);
        assert_eq!(m.phase(), EpochPhase::Train);
    }

    fn train_with_founders(j: &EventJournal) -> EpochMachine {
        let mut m = EpochMachine::new(cfg(), 0, &[w(1), w(2)], j);
        m.tick(10 * MS, j);
        assert_eq!(m.phase(), EpochPhase::Train);
        m
    }

    fn roll_to_next_window(m: &mut EpochMachine, j: &EventJournal, now: u64) {
        m.boundary_released(now, j);
        m.boundary_released(now, j);
        assert_eq!(m.phase(), EpochPhase::Cooldown);
        m.tick(now + MS, j);
        assert_eq!(m.phase(), EpochPhase::WaitingForMembers);
    }

    #[test]
    fn joiner_is_witnessed_then_admitted() {
        let j = journal();
        let mut m = train_with_founders(&j);
        roll_to_next_window(&mut m, &j, 20 * MS);
        assert_eq!(m.epoch(), 1);

        m.join_request(w(9), None, 22 * MS, &j);
        let cmds = m.tick(40 * MS, &j);
        assert_eq!(m.phase(), EpochPhase::Warmup);
        assert!(
            matches!(&cmds[..], [EpochCmd::Announce { .. }, EpochCmd::StartWarmup { joiners, .. }] if joiners == &vec![w(9)])
        );

        let cmds = m.join_request(w(9), Some(0xfeed), 41 * MS, &j);
        let [EpochCmd::QueryWitnesses {
            witnesses, probe, ..
        }] = &cmds[..]
        else {
            panic!("expected a witness query, got {cmds:?}");
        };
        assert_eq!(*probe, 0xfeed);
        assert_eq!(witnesses.len(), 2);
        let ws: Vec<WorkerId> = witnesses.clone();
        m.witness_vote(ws[0], w(9), 1, true, 42 * MS, &j);
        let cmds = m.witness_vote(ws[1], w(9), 1, true, 43 * MS, &j);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, EpochCmd::Admit { subject, .. } if *subject == w(9))));
        assert_eq!(m.phase(), EpochPhase::Train);
        assert!(m.is_member(w(9)));
        assert!(check_epoch_safety(&j.events()).is_safe());
    }

    #[test]
    fn split_vote_evicts() {
        let j = journal();
        let mut m = train_with_founders(&j);
        roll_to_next_window(&mut m, &j, 20 * MS);
        m.join_request(w(9), None, 22 * MS, &j);
        m.tick(40 * MS, &j);
        m.join_request(w(9), Some(0xbad), 41 * MS, &j);
        m.witness_vote(w(1), w(9), 1, true, 42 * MS, &j);
        let cmds = m.witness_vote(w(2), w(9), 1, false, 43 * MS, &j);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, EpochCmd::Evict { subject, .. } if *subject == w(9))));
        assert!(!m.is_member(w(9)));
        assert_eq!(m.phase(), EpochPhase::Train, "survivors train on");
        assert!(check_epoch_safety(&j.events()).is_safe());
    }

    #[test]
    fn silent_joiner_is_evicted_at_the_digest_deadline() {
        let j = journal();
        let mut m = train_with_founders(&j);
        roll_to_next_window(&mut m, &j, 20 * MS);
        m.join_request(w(9), None, 22 * MS, &j);
        m.tick(40 * MS, &j);
        assert_eq!(m.phase(), EpochPhase::Warmup);
        // No digest ever arrives (partitioned / crashed joiner).
        let cmds = m.tick(60 * MS, &j);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, EpochCmd::Evict { subject, .. } if *subject == w(9))));
        assert_eq!(m.phase(), EpochPhase::Train);
        assert!(check_epoch_safety(&j.events()).is_safe());
    }

    #[test]
    fn join_outside_window_is_deferred_once() {
        let j = journal();
        let mut m = train_with_founders(&j);
        m.join_request(w(9), None, 11 * MS, &j);
        m.join_request(w(9), None, 12 * MS, &j);
        assert!(!m.is_pending(w(9)));
        let deferred = j
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JoinDeferred { .. }))
            .count();
        assert_eq!(deferred, 1, "re-announces dedup to one deferral");
    }

    #[test]
    fn overflow_beyond_max_members_is_deferred() {
        let j = journal();
        let mut m = EpochMachine::new(cfg(), 0, &[], &j);
        for n in 1..=6 {
            m.join_request(w(n), None, MS, &j);
        }
        assert_eq!(m.tick(10 * MS, &j).len(), 2, "announce x2 (warmup+train)");
        assert_eq!(m.members().len(), 4, "capped at max_members");
    }

    #[test]
    fn losing_quorum_mid_train_aborts_the_epoch() {
        let j = journal();
        let mut m = train_with_founders(&j);
        m.member_left(w(2), 11 * MS, &j);
        assert_eq!(m.phase(), EpochPhase::Cooldown);
        m.tick(12 * MS, &j);
        assert_eq!(m.phase(), EpochPhase::WaitingForMembers);
        assert_eq!(m.epoch(), 1);
        assert!(check_epoch_safety(&j.events()).is_safe());
    }

    #[test]
    fn witness_sampling_is_deterministic_and_excludes_subject() {
        let members: BTreeSet<WorkerId> = (1..=10).map(WorkerId).collect();
        let a = sample_witnesses(42, 3, w(5), &members, 4);
        let b = sample_witnesses(42, 3, w(5), &members, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(!a.contains(&w(5)));
        let c = sample_witnesses(42, 4, w(5), &members, 4);
        assert_ne!(a, c, "different epochs sample different panels");
    }

    #[test]
    fn shard_assignment_is_deterministic_and_total() {
        let members: Vec<WorkerId> = (1..=7).map(WorkerId).collect();
        let a = shard_owners(1, 2, 64, &members);
        assert_eq!(a.len(), 64);
        assert_eq!(a, shard_owners(1, 2, 64, &members));
        assert_ne!(
            shard_checksum(1, 2, 64, &members),
            shard_checksum(1, 3, 64, &members),
            "re-assignment actually moves between epochs"
        );
    }

    #[test]
    fn churn_storm_is_deterministic_and_safe() {
        let cfg = ChurnConfig::sized(200, 11);
        let a = run_churn(&cfg);
        let b = run_churn(&cfg);
        assert_eq!(a.journal_hash, b.journal_hash);
        assert!(a.epochs_trained > 0, "storm never trained: {a:?}");
        assert!(a.admitted > 0, "storm admitted nobody");
        assert!(a.evicted > 0, "corrupt joiners were never evicted");
        let report = check_epoch_safety(&a.events);
        assert!(report.is_safe(), "{report}");
        assert_ne!(
            a.journal_hash,
            run_churn(&ChurnConfig::sized(200, 12)).journal_hash,
            "different seeds produce different storms"
        );
    }
}
