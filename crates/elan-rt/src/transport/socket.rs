//! Socket transport: the control-plane protocol over real TCP or
//! Unix-domain streams, so a coordinator and N workers run as separate
//! OS processes.
//!
//! Topology is hub-and-spoke. The coordinator process calls
//! [`SocketTransport::listen`]; every worker process calls
//! [`SocketTransport::connect`]. A connection's first frame is
//! [`WireFrame::Hello`], announcing which endpoint lives behind it; the
//! hub records the mapping and from then on relays
//! [`WireFrame::Msg`] frames between connections, so worker↔worker
//! traffic (`StateChunk` replication streams) crosses two hops without
//! the workers knowing each other's addresses.
//!
//! Reconnect semantics: a fresh `Hello` for an already-known endpoint
//! simply remaps it to the newest connection — a restarted worker
//! process dials in, announces itself, and the `Rejoin` flow takes it
//! from there. Messages addressed to an endpoint whose connection died
//! become dead letters; the reliable layer's MsgId resend/dedup
//! machinery (unchanged from the in-memory bus) masks the gap exactly
//! like it masks chaos drops.
//!
//! Delivery guarantees match the in-memory transport: per-connection
//! FIFO, at-most-once, no backpressure. Every frame is CRC32-checked
//! ([`elan_core::codec::decode_frame`]); a connection that produces an
//! undecodable frame is dropped rather than guessed at.
//!
//! This file (under `transport/`) is the only place in `elan-rt`
//! allowed to touch `std::net` — enforced by elan-verify's `NETWORK_IO`
//! rule.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use elan_core::codec::{decode_frame, encode_frame, WireFrame, MAX_FRAME_LEN};

use crate::bus::{Endpoint, EndpointId, EndpointStats, Envelope, RtMsg};
use crate::obs::{EventJournal, EventKind};
use crate::time::TimeSource;

use super::Transport;

/// Bytes in the little-endian length prefix preceding every frame.
const LEN_PREFIX: usize = 4;

/// One bidirectional stream, TCP or Unix-domain.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The write half of one connection, shared by every sender routing to
/// it. The mutex makes frame writes atomic (length prefix + frame);
/// nothing else is held while writing.
struct ConnWriter {
    stream: Mutex<Stream>,
}

impl ConnWriter {
    fn write_frame(&self, frame: &WireFrame) -> io::Result<()> {
        let bytes = encode_frame(frame);
        let mut s = self.stream.lock();
        s.write_all(&(bytes.len() as u32).to_le_bytes())?;
        s.write_all(&bytes)?;
        s.flush()
    }
}

/// Reads one length-prefixed frame. Errors on EOF, short reads, or a
/// length prefix exceeding [`MAX_FRAME_LEN`] (a corrupted prefix must
/// not drive a huge allocation).
fn read_frame(stream: &mut Stream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; LEN_PREFIX];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

struct Shared {
    /// Endpoints living in this process, by id.
    local: RwLock<HashMap<EndpointId, Sender<Envelope>>>,
    /// Hub only: remote endpoint → the connection it announced on.
    routes: RwLock<HashMap<EndpointId, Arc<ConnWriter>>>,
    /// Client only: the single connection to the hub.
    uplink: RwLock<Option<Arc<ConnWriter>>>,
    stats: Mutex<HashMap<EndpointId, EndpointStats>>,
    journal: RwLock<Option<Arc<EventJournal>>>,
    time: RwLock<TimeSource>,
}

impl Shared {
    fn new() -> Self {
        Shared {
            local: RwLock::new(HashMap::new()),
            routes: RwLock::new(HashMap::new()),
            uplink: RwLock::new(None),
            stats: Mutex::new(HashMap::new()),
            journal: RwLock::new(None),
            time: RwLock::new(TimeSource::real()),
        }
    }

    /// Delivers `env` to `to` — local channel first, then a remote
    /// route, then the uplink — and books delivered/dead-letter stats.
    /// Returns whether a destination was known at all.
    fn deliver(&self, to: EndpointId, env: Envelope) -> bool {
        let noisy = matches!(env.body, RtMsg::Heartbeat { .. } | RtMsg::MsgAck { .. });
        // Clone the sender out of the guard: an `if let` scrutinee guard
        // would otherwise stay live through the `else` branch, holding the
        // `local` read lock across the blocking socket write below.
        let local_tx = self.local.read().get(&to).cloned();
        let delivered = if let Some(tx) = local_tx {
            tx.send(env).is_ok()
        } else {
            let writer = self
                .routes
                .read()
                .get(&to)
                .cloned()
                .or_else(|| self.uplink.read().clone());
            match writer {
                Some(w) => {
                    let ok = w.write_frame(&WireFrame::Msg { to, env }).is_ok();
                    if !ok {
                        // The connection is gone; forget the route so
                        // later sends dead-letter immediately instead of
                        // hitting a broken pipe each time.
                        let mut routes = self.routes.write();
                        if let Some(cur) = routes.get(&to) {
                            if Arc::ptr_eq(cur, &w) {
                                routes.remove(&to);
                            }
                        }
                    }
                    ok
                }
                None => false,
            }
        };
        let mut stats = self.stats.lock();
        let entry = stats.entry(to).or_default();
        if delivered {
            entry.delivered += 1;
        } else {
            entry.dead_letters += 1;
            drop(stats);
            if !noisy {
                if let Some(journal) = self.journal.read().as_ref() {
                    journal.emit(EventKind::DeadLetter { to });
                }
            }
        }
        delivered
    }
}

/// The multi-process transport. Construct with
/// [`SocketTransport::listen`] (coordinator) or
/// [`SocketTransport::connect`] (worker), then hand it to
/// `ElasticRuntime::builder().transport(...)` or wrap it in a
/// `Bus::with_transport`.
pub struct SocketTransport {
    shared: Arc<Shared>,
    /// The resolved address ("tcp:ip:port" / "unix:path") — useful when
    /// listening on `tcp:127.0.0.1:0`.
    local_addr: String,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketTransport({})", self.local_addr)
    }
}

enum ParsedAddr<'a> {
    Tcp(&'a str),
    Unix(&'a str),
}

fn parse_addr(addr: &str) -> io::Result<ParsedAddr<'_>> {
    if let Some(rest) = addr.strip_prefix("tcp:") {
        Ok(ParsedAddr::Tcp(rest))
    } else if let Some(rest) = addr.strip_prefix("unix:") {
        Ok(ParsedAddr::Unix(rest))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address `{addr}` must start with tcp: or unix:"),
        ))
    }
}

impl SocketTransport {
    /// Binds the coordinator hub on `addr` (`"tcp:host:port"` or
    /// `"unix:/path"`) and starts accepting worker connections.
    ///
    /// # Errors
    ///
    /// Propagates bind/listen failures.
    pub fn listen(addr: &str) -> io::Result<SocketTransport> {
        let shared = Arc::new(Shared::new());
        let local_addr;
        match parse_addr(addr)? {
            ParsedAddr::Tcp(a) => {
                let listener = TcpListener::bind(a)?;
                local_addr = format!("tcp:{}", listener.local_addr()?);
                let hub = Arc::clone(&shared);
                thread::Builder::new()
                    .name("elan-accept".into())
                    .spawn(move || {
                        for conn in listener.incoming() {
                            match conn {
                                Ok(s) => spawn_hub_conn(&hub, Stream::Tcp(s)),
                                Err(_) => break,
                            }
                        }
                    })?;
            }
            ParsedAddr::Unix(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                local_addr = format!("unix:{path}");
                let hub = Arc::clone(&shared);
                thread::Builder::new()
                    .name("elan-accept".into())
                    .spawn(move || {
                        for conn in listener.incoming() {
                            match conn {
                                Ok(s) => spawn_hub_conn(&hub, Stream::Unix(s)),
                                Err(_) => break,
                            }
                        }
                    })?;
            }
        }
        Ok(SocketTransport { shared, local_addr })
    }

    /// Dials the coordinator hub at `addr` and starts the receive loop.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> io::Result<SocketTransport> {
        let stream = match parse_addr(addr)? {
            ParsedAddr::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
            ParsedAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        let shared = Arc::new(Shared::new());
        let writer = Arc::new(ConnWriter {
            stream: Mutex::new(stream.try_clone()?),
        });
        *shared.uplink.write() = Some(writer);
        let client = Arc::clone(&shared);
        thread::Builder::new()
            .name("elan-uplink".into())
            .spawn(move || client_conn_loop(&client, stream))?;
        Ok(SocketTransport {
            shared,
            local_addr: addr.to_string(),
        })
    }

    /// The bound/dialed address, scheme-prefixed. For
    /// `listen("tcp:127.0.0.1:0")` this carries the real port.
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }
}

/// Hub side: one reader thread per accepted connection.
fn spawn_hub_conn(shared: &Arc<Shared>, stream: Stream) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => return, // conn unusable before the first frame
    };
    let hub = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("elan-conn".into())
        .spawn(move || hub_conn_loop(&hub, stream, &writer));
    // A spawn failure orphans the connection; the peer sees EOF and the
    // reliable layer treats it like any other dead route.
    drop(spawned);
}

fn hub_conn_loop(shared: &Arc<Shared>, mut stream: Stream, writer: &Arc<ConnWriter>) {
    let mut announced: Vec<EndpointId> = Vec::new();
    // Until EOF or a socket error — either way the connection is done.
    while let Ok(bytes) = read_frame(&mut stream) {
        match decode_frame(&bytes) {
            Ok(WireFrame::Hello { from }) => {
                // Latest Hello wins: a reconnecting endpoint remaps to
                // this connection, orphaning the stale one.
                shared.routes.write().insert(from, Arc::clone(writer));
                announced.push(from);
            }
            Ok(WireFrame::Msg { to, env }) => {
                shared.deliver(to, env);
            }
            // CRC or schema failure: this stream can no longer be
            // trusted byte-for-byte, so drop the whole connection and
            // let resends re-establish the flow.
            Err(_) => break,
        }
    }
    let mut routes = shared.routes.write();
    for id in announced {
        if let Some(cur) = routes.get(&id) {
            if Arc::ptr_eq(cur, writer) {
                routes.remove(&id);
            }
        }
    }
}

/// Client side: the single reader on the hub connection.
fn client_conn_loop(shared: &Arc<Shared>, mut stream: Stream) {
    while let Ok(bytes) = read_frame(&mut stream) {
        match decode_frame(&bytes) {
            Ok(WireFrame::Msg { to, env }) => {
                shared.deliver(to, env);
            }
            Ok(WireFrame::Hello { .. }) => {} // hub never sends Hello
            Err(_) => break,
        }
    }
    // Hub gone: sends now dead-letter instead of blocking on a corpse.
    *shared.uplink.write() = None;
}

impl Transport for SocketTransport {
    fn register(&self, id: EndpointId) -> Endpoint {
        let (tx, rx) = unbounded();
        let prev = self.shared.local.write().insert(id, tx);
        assert!(prev.is_none(), "endpoint {id} registered twice");
        // Announce the endpoint upstream so the hub can route to it.
        // A write failure means the hub is gone; the reader loop has
        // noticed (or will), and registration itself still succeeds —
        // exactly like registering on a partitioned in-memory bus.
        // The uplink guard is dropped before the (blocking) frame write:
        // an `if let` scrutinee temp would pin the `uplink` read lock
        // across socket IO otherwise.
        let uplink = self.shared.uplink.read().clone();
        if let Some(uplink) = uplink {
            let _ = uplink.write_frame(&WireFrame::Hello { from: id });
        }
        Endpoint::assemble(id, rx, self.shared.time.read().clone())
    }

    fn unregister(&self, id: EndpointId) {
        self.shared.local.write().remove(&id);
    }

    fn send_envelope(&self, to: EndpointId, env: Envelope) -> bool {
        {
            let mut stats = self.shared.stats.lock();
            stats.entry(to).or_default().sent += 1;
        }
        self.shared.deliver(to, env)
    }

    fn stats(&self, id: EndpointId) -> EndpointStats {
        self.shared
            .stats
            .lock()
            .get(&id)
            .copied()
            .unwrap_or_default()
    }

    fn all_stats(&self) -> Vec<(EndpointId, EndpointStats)> {
        let mut v: Vec<_> = self
            .shared
            .stats
            .lock()
            .iter()
            .map(|(&k, &s)| (k, s))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    fn total_dead_letters(&self) -> u64 {
        self.shared
            .stats
            .lock()
            .values()
            .map(|s| s.dead_letters)
            .sum()
    }

    fn attach(&self, journal: Option<Arc<EventJournal>>, time: TimeSource) {
        *self.shared.journal.write() = journal;
        *self.shared.time.write() = time;
    }

    fn journal(&self) -> Option<Arc<EventJournal>> {
        self.shared.journal.read().clone()
    }

    fn time(&self) -> TimeSource {
        self.shared.time.read().clone()
    }

    fn endpoint_count(&self) -> usize {
        self.shared.local.read().len()
    }

    fn supports_virtual_time(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Bus;
    use elan_core::state::WorkerId;
    use std::time::Duration;

    /// Generous receive window for loopback delivery; sub-millisecond in
    /// practice, but CI machines stall.
    const RECV_WINDOW: Duration = Duration::from_secs(5);

    fn uds_pair(name: &str) -> Result<(SocketTransport, SocketTransport), String> {
        let path = std::env::temp_dir().join(format!("elan-sock-{}-{name}", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let hub = SocketTransport::listen(&addr).map_err(|e| format!("listen {addr}: {e}"))?;
        let client = SocketTransport::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        Ok((hub, client))
    }

    #[test]
    fn uds_roundtrip_hub_to_client_and_back() -> Result<(), String> {
        let (hub, client) = uds_pair("roundtrip")?;
        let hub_bus = Bus::with_transport(Arc::new(hub));
        let client_bus = Bus::with_transport(Arc::new(client));

        let am = hub_bus.register(EndpointId::Am);
        let w0 = client_bus.register(EndpointId::Worker(WorkerId(0)));

        // Worker → AM crosses the socket via the uplink.
        assert!(client_bus.send(
            EndpointId::Am,
            RtMsg::Report {
                worker: WorkerId(0)
            }
        ));
        let env = am.recv_timeout(RECV_WINDOW).ok_or("no report over UDS")?;
        assert!(matches!(env.body, RtMsg::Report { worker } if worker == WorkerId(0)));

        // AM → worker uses the route the Hello established.
        assert!(hub_bus.send(
            EndpointId::Worker(WorkerId(0)),
            RtMsg::Proceed {
                boundary: 5,
                term: 0
            }
        ));
        let env = w0.recv_timeout(RECV_WINDOW).ok_or("no proceed over UDS")?;
        assert!(matches!(env.body, RtMsg::Proceed { boundary: 5, .. }));
        Ok(())
    }

    #[test]
    fn tcp_relay_between_two_clients() -> Result<(), String> {
        let hub = SocketTransport::listen("tcp:127.0.0.1:0").map_err(|e| e.to_string())?;
        let addr = hub.local_addr().to_string();
        let _hub_bus = Bus::with_transport(Arc::new(hub));

        let connect = |a: &str| SocketTransport::connect(a).map_err(|e| e.to_string());
        let a = Bus::with_transport(Arc::new(connect(&addr)?));
        let b = Bus::with_transport(Arc::new(connect(&addr)?));
        let _w1 = a.register(EndpointId::Worker(WorkerId(1)));
        let w2 = b.register(EndpointId::Worker(WorkerId(2)));

        // Worker 1 → worker 2: client a → hub → client b (two hops), the
        // path a StateChunk replication stream takes.
        let payload = Arc::new(vec![1.0f32, 2.0, 3.0]);
        // The Hello frames race the first routed send; retry like the
        // reliable layer would until the route exists.
        let mut delivered = None;
        for _ in 0..200 {
            a.send(
                EndpointId::Worker(WorkerId(2)),
                RtMsg::StateChunk {
                    kind: elan_core::messages::StateKind::Params,
                    iteration: 10,
                    data_cursor: 0,
                    index: 0,
                    total: 1,
                    offset: 0,
                    data: Arc::clone(&payload),
                },
            );
            if let Some(env) = w2.recv_timeout(Duration::from_millis(50)) {
                delivered = Some(env);
                break;
            }
        }
        let env = delivered.ok_or("state chunk not relayed hub-and-spoke")?;
        match env.body {
            RtMsg::StateChunk { data, .. } => assert_eq!(*data, *payload),
            other => return Err(format!("unexpected {other:?}")),
        }
        Ok(())
    }

    #[test]
    fn unknown_destination_is_a_dead_letter() -> Result<(), String> {
        let (hub, _client) = uds_pair("deadletter")?;
        let hub_bus = Bus::with_transport(Arc::new(hub));
        assert!(!hub_bus.send(EndpointId::Worker(WorkerId(9)), RtMsg::Leave { term: 0 }));
        assert_eq!(
            hub_bus.stats(EndpointId::Worker(WorkerId(9))).dead_letters,
            1
        );
        Ok(())
    }

    #[test]
    fn bad_address_scheme_is_rejected() {
        assert!(SocketTransport::listen("carrier-pigeon:coop").is_err());
        assert!(SocketTransport::connect("127.0.0.1:0").is_err());
    }
}
