//! Pluggable control-plane transports behind the [`Bus`](crate::bus::Bus)
//! facade.
//!
//! The runtime speaks one protocol (`elan_core::protocol`) over two very
//! different fabrics:
//!
//! - [`MemoryTransport`] — the original in-process chaos bus: crossbeam
//!   channels, deterministic fault injection, virtual-time aware. Every
//!   deterministic simulation and seed sweep runs on it, byte-identical
//!   to the pre-trait implementation.
//! - [`SocketTransport`] — real TCP or
//!   Unix-domain sockets with the length-prefixed, CRC32-framed codec
//!   from `elan_core::codec`, so a coordinator and N workers run as
//!   separate OS processes.
//!
//! The trait is object-safe on purpose: the runtime holds an
//! `Arc<dyn Transport>` and never knows which fabric it is on. Anything
//! fault-injection-specific ([`Transport::chaos_stats`],
//! [`Transport::add_partition`]) has a "not supported" default so socket
//! transports don't fake chaos.
//!
//! This module is also the *only* place in `elan-rt` allowed to touch
//! `std::net`/socket APIs — the `NETWORK_IO` rule in `elan-verify`
//! enforces that, mirroring how `WALL_CLOCK` confines clock access to
//! `time.rs`.

pub mod memory;
pub mod socket;

use std::sync::Arc;

use crate::bus::{Endpoint, EndpointId, EndpointStats, Envelope};
use crate::chaos::{ChaosStats, PartitionWindow};
use crate::obs::EventJournal;
use crate::time::TimeSource;

pub use memory::MemoryTransport;
pub use socket::SocketTransport;

/// A message fabric the runtime's endpoints send and receive through.
///
/// Implementations must be `Send + Sync`: one transport is shared by the
/// AM thread, every worker, and the controller. Delivery is per-receiver
/// FIFO (whatever the fabric) and at-most-once; the
/// [`crate::reliable`] layer adds ids, acks, resends, and dedup on top,
/// which is what lets a socket transport survive reconnects with the
/// same machinery that masks chaos drops in-memory.
pub trait Transport: Send + Sync {
    /// Registers `id` locally and returns its receive side.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered on this transport instance
    /// (a local protocol bug, identical to the historical bus behavior).
    fn register(&self, id: EndpointId) -> Endpoint;

    /// Removes a local endpoint; later sends to it become dead letters.
    fn unregister(&self, id: EndpointId);

    /// Sends `env` to `to`, through fault injection or the wire. Returns
    /// whether the destination is currently known/reachable — an
    /// in-network loss (chaos drop, peer crash mid-flight) still reports
    /// true, because a real sender cannot observe it.
    fn send_envelope(&self, to: EndpointId, env: Envelope) -> bool;

    /// Delivery counters for one destination, as seen from this process.
    fn stats(&self, id: EndpointId) -> EndpointStats;

    /// All per-destination counters, sorted by endpoint.
    fn all_stats(&self) -> Vec<(EndpointId, EndpointStats)>;

    /// Total messages that could not be delivered anywhere.
    fn total_dead_letters(&self) -> u64;

    /// Fault-injection counters. `None` when the transport carries no
    /// chaos engine (the default, and always for socket transports).
    fn chaos_stats(&self) -> Option<ChaosStats> {
        None
    }

    /// Whether an open partition window currently cuts the `a`↔`b` edge.
    /// Transports without scripted chaos never report a partition.
    fn is_partitioned(&self, _a: EndpointId, _b: EndpointId) -> bool {
        false
    }

    /// Injects a partition window at runtime. Returns false when the
    /// transport has no chaos engine to carry it (the default).
    fn add_partition(&self, _window: PartitionWindow) -> bool {
        false
    }

    /// Late-binds the runtime's journal and clock, before any
    /// [`Transport::register`] call and before the transport is wrapped
    /// in a `Bus`. The runtime builder calls this on user-supplied
    /// transports so transport construction doesn't need the runtime's
    /// observability plumbing.
    fn attach(&self, journal: Option<Arc<EventJournal>>, time: TimeSource);

    /// The attached event journal, if observability is wired up.
    fn journal(&self) -> Option<Arc<EventJournal>>;

    /// The clock this transport (and the runtime around it) ticks on.
    fn time(&self) -> TimeSource;

    /// Locally registered endpoint count.
    fn endpoint_count(&self) -> usize;

    /// Whether the transport can run under a virtual clock. True for the
    /// in-memory bus; false for socket transports, whose IO waits are
    /// invisible to the virtual scheduler.
    fn supports_virtual_time(&self) -> bool {
        true
    }
}
