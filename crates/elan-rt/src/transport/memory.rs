//! The in-process transport: crossbeam channels with optional chaos.
//!
//! This is the original `Bus` delivery engine, extracted behind the
//! [`Transport`] trait. Behavior is unchanged — the deterministic
//! simulation suite produces byte-identical journals on the same seeds —
//! which is the whole point of the split: sockets get their own
//! implementation without perturbing the sim.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use crate::bus::{Endpoint, EndpointId, EndpointStats, Envelope, RtMsg};
use crate::chaos::{ChaosEngine, ChaosPolicy, ChaosStats, PartitionWindow};
use crate::obs::{EventJournal, EventKind};
use crate::time::TimeSource;

use super::Transport;

/// Crossbeam-channel delivery with optional deterministic fault
/// injection — one process, many threads, virtual-time aware.
pub struct MemoryTransport {
    senders: RwLock<HashMap<EndpointId, Sender<Envelope>>>,
    stats: Mutex<HashMap<EndpointId, EndpointStats>>,
    chaos: Option<Mutex<ChaosEngine>>,
    /// The runtime's event journal, when observability is attached: the
    /// transport emits dead-letter and chaos events into it.
    journal: RwLock<Option<Arc<EventJournal>>>,
    /// The runtime's clock; replaceable via [`Transport::attach`] until
    /// the first endpoint registers.
    time: RwLock<TimeSource>,
}

impl Default for MemoryTransport {
    fn default() -> Self {
        MemoryTransport::new(None, None, TimeSource::real())
    }
}

impl std::fmt::Debug for MemoryTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemoryTransport({} endpoints)", self.endpoint_count())
    }
}

impl MemoryTransport {
    /// Creates the transport with optional fault injection, an optional
    /// event journal, and the runtime's clock.
    pub fn new(
        chaos: Option<ChaosPolicy>,
        journal: Option<Arc<EventJournal>>,
        time: TimeSource,
    ) -> Self {
        MemoryTransport {
            senders: RwLock::new(HashMap::new()),
            stats: Mutex::new(HashMap::new()),
            chaos: chaos.map(|policy| Mutex::new(ChaosEngine::new(policy))),
            journal: RwLock::new(journal),
            time: RwLock::new(time),
        }
    }
}

impl Transport for MemoryTransport {
    fn register(&self, id: EndpointId) -> Endpoint {
        let (tx, rx) = unbounded();
        let prev = self.senders.write().insert(id, tx);
        assert!(prev.is_none(), "endpoint {id} registered twice");
        Endpoint::assemble(id, rx, self.time.read().clone())
    }

    fn unregister(&self, id: EndpointId) {
        self.senders.write().remove(&id);
    }

    fn send_envelope(&self, to: EndpointId, env: Envelope) -> bool {
        {
            let mut stats = self.stats.lock();
            stats.entry(to).or_default().sent += 1;
        }
        let time = self.time.read().clone();
        let journal = self.journal.read().clone();
        // Heartbeats and transport acks dominate chaotic traffic; their
        // fates stay out of the journal so the ring retains the events
        // that matter for adjustment forensics.
        let noisy = matches!(env.body, RtMsg::Heartbeat { .. } | RtMsg::MsgAck { .. });
        let deliveries = match &self.chaos {
            Some(engine) => {
                let now = time.now();
                let mut engine = engine.lock();
                // Window lifecycle transitions are observed on sends; with
                // heartbeats flowing constantly that pins the journal event
                // to within one beacon period of the scripted instant.
                let (started, healed) = engine.poll_windows(now);
                let (deliveries, fate) = engine.route(now, to, env);
                drop(engine);
                if let Some(journal) = journal.as_ref() {
                    for name in started {
                        journal.emit(EventKind::PartitionStart { name });
                    }
                    for name in healed {
                        journal.emit(EventKind::PartitionHeal { name });
                    }
                    if let (Some(fate), false) = (fate, noisy) {
                        journal.emit(EventKind::ChaosInjected { fate, to });
                    }
                }
                deliveries
            }
            None => vec![(to, env)],
        };
        for (dst, envelope) in deliveries {
            let env_noisy = matches!(
                envelope.body,
                RtMsg::Heartbeat { .. } | RtMsg::MsgAck { .. }
            );
            let delivered = match self.senders.read().get(&dst) {
                Some(tx) => tx.send(envelope).is_ok(),
                None => false,
            };
            let mut stats = self.stats.lock();
            let entry = stats.entry(dst).or_default();
            if delivered {
                entry.delivered += 1;
            } else {
                entry.dead_letters += 1;
                if let (Some(journal), false) = (journal.as_ref(), env_noisy) {
                    journal.emit(EventKind::DeadLetter { to: dst });
                }
            }
        }
        let registered = self.senders.read().contains_key(&to);
        // Under virtual time, parked receivers re-check their queues only
        // when woken; publish the delivery. (No transport lock is held
        // here, and `wake_all` only flips scheduler states — it never
        // blocks.)
        time.wake_all();
        registered
    }

    fn stats(&self, id: EndpointId) -> EndpointStats {
        self.stats.lock().get(&id).copied().unwrap_or_default()
    }

    fn all_stats(&self) -> Vec<(EndpointId, EndpointStats)> {
        let mut v: Vec<_> = self.stats.lock().iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    fn total_dead_letters(&self) -> u64 {
        self.stats.lock().values().map(|s| s.dead_letters).sum()
    }

    fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|e| e.lock().stats())
    }

    fn is_partitioned(&self, a: EndpointId, b: EndpointId) -> bool {
        match &self.chaos {
            Some(engine) => {
                let now = self.time.read().now();
                engine.lock().is_partitioned(now, a, b)
            }
            None => false,
        }
    }

    fn add_partition(&self, window: PartitionWindow) -> bool {
        match &self.chaos {
            Some(engine) => {
                engine.lock().add_window(window);
                true
            }
            None => false,
        }
    }

    fn attach(&self, journal: Option<Arc<EventJournal>>, time: TimeSource) {
        *self.journal.write() = journal;
        *self.time.write() = time;
    }

    fn journal(&self) -> Option<Arc<EventJournal>> {
        self.journal.read().clone()
    }

    fn time(&self) -> TimeSource {
        self.time.read().clone()
    }

    fn endpoint_count(&self) -> usize {
        self.senders.read().len()
    }
}
