//! Deterministic, seeded fault injection for the control-plane bus.
//!
//! A [`ChaosPolicy`] describes per-edge probabilities of dropping,
//! duplicating, and delaying messages; the bus consults the policy on
//! every send. The fate of a message is a **pure function** of
//! `(seed, edge, message id, attempt)`, so a chaotic run is exactly
//! reproducible from its seed, and — crucially — a *resend* of a dropped
//! message (same id, higher attempt) rolls new dice instead of being
//! dropped forever.
//!
//! Delays are modeled without timers: a delayed message sits in a limbo
//! buffer and is released only after `delay_ticks` further messages have
//! flowed through the bus, which also reorders it behind younger traffic.

use std::collections::HashMap;

use crate::bus::{EndpointId, Envelope};
use crate::obs::ChaosFate;

/// Fault probabilities for one directed bus edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeChaos {
    /// Probability the message silently vanishes.
    pub drop_p: f64,
    /// Probability the message is delivered twice.
    pub dup_p: f64,
    /// Probability the message is held back and reordered.
    pub delay_p: f64,
    /// How many subsequent bus sends a delayed message waits out.
    pub delay_ticks: u32,
}

impl Default for EdgeChaos {
    fn default() -> Self {
        EdgeChaos {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_ticks: 3,
        }
    }
}

/// A seeded, per-edge fault-injection policy.
///
/// # Examples
///
/// ```
/// use elan_rt::chaos::ChaosPolicy;
///
/// // 20% drop, 10% duplicate, 10% delay on every edge, seed 42.
/// let policy = ChaosPolicy::new(42).drop(0.2).duplicate(0.1).delay(0.1, 3);
/// assert_eq!(policy.seed, 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChaosPolicy {
    /// Seed making every fate decision reproducible.
    pub seed: u64,
    /// Faults applied to edges without a specific override.
    pub default_edge: EdgeChaos,
    /// Per-edge overrides, keyed by `(from, to)`.
    pub edges: HashMap<(EndpointId, EndpointId), EdgeChaos>,
}

impl ChaosPolicy {
    /// A policy with no faults (until probabilities are set).
    pub fn new(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            ..ChaosPolicy::default()
        }
    }

    /// Sets the default drop probability.
    pub fn drop(mut self, p: f64) -> Self {
        self.default_edge.drop_p = p;
        self
    }

    /// Sets the default duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.default_edge.dup_p = p;
        self
    }

    /// Sets the default delay probability and hold-back span.
    pub fn delay(mut self, p: f64, ticks: u32) -> Self {
        self.default_edge.delay_p = p;
        self.default_edge.delay_ticks = ticks;
        self
    }

    /// Overrides the faults on one directed edge.
    pub fn edge(mut self, from: EndpointId, to: EndpointId, chaos: EdgeChaos) -> Self {
        self.edges.insert((from, to), chaos);
        self
    }

    fn edge_for(&self, from: EndpointId, to: EndpointId) -> EdgeChaos {
        self.edges
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_edge)
    }
}

/// Counters of every fate the engine has decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Messages passed through untouched.
    pub delivered: u64,
    /// Messages silently discarded.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Messages held back and reordered.
    pub delayed: u64,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn endpoint_code(e: EndpointId) -> u64 {
    match e {
        EndpointId::Am => 1,
        EndpointId::Controller => 2,
        EndpointId::Worker(w) => 16 + w.0 as u64,
    }
}

/// The mutable fault-injection state attached to one bus.
#[derive(Debug)]
pub(crate) struct ChaosEngine {
    policy: ChaosPolicy,
    stats: ChaosStats,
    /// Delayed messages: (sends remaining before release, destination, msg).
    limbo: Vec<(u32, EndpointId, Envelope)>,
}

impl ChaosEngine {
    pub(crate) fn new(policy: ChaosPolicy) -> Self {
        ChaosEngine {
            policy,
            stats: ChaosStats::default(),
            limbo: Vec::new(),
        }
    }

    pub(crate) fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// A uniform value in `[0, 1)` that is a pure function of the message
    /// coordinates and the decision `salt`.
    fn unit(&self, salt: u64, from: EndpointId, to: EndpointId, env: &Envelope) -> f64 {
        let mut x = self.policy.seed ^ salt.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x = mix(x ^ (endpoint_code(from) << 40) ^ (endpoint_code(to) << 20));
        x = mix(x ^ env.id.0);
        x = mix(x ^ (env.attempt as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of `env` heading to `to` and advances limbo.
    /// Returns every delivery the bus should now perform (possibly zero,
    /// one, or two copies of `env`, plus any released delayed messages),
    /// together with the fate the engine chose for `env` itself (`None`
    /// when the message passed through untouched) — the bus turns
    /// non-trivial fates into journal events.
    pub(crate) fn route(
        &mut self,
        to: EndpointId,
        env: Envelope,
    ) -> (Vec<(EndpointId, Envelope)>, Option<ChaosFate>) {
        // Every send is a tick that ages the limbo buffer.
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.limbo.len() {
            if self.limbo[i].0 <= 1 {
                let (_, dst, delayed) = self.limbo.swap_remove(i);
                out.push((dst, delayed));
            } else {
                self.limbo[i].0 -= 1;
                i += 1;
            }
        }

        let edge = self.policy.edge_for(env.from, to);
        if self.unit(1, env.from, to, &env) < edge.drop_p {
            self.stats.dropped += 1;
            return (out, Some(ChaosFate::Dropped));
        }
        if self.unit(2, env.from, to, &env) < edge.delay_p {
            self.stats.delayed += 1;
            self.limbo.push((edge.delay_ticks.max(1), to, env));
            return (out, Some(ChaosFate::Delayed));
        }
        self.stats.delivered += 1;
        let mut fate = None;
        if self.unit(3, env.from, to, &env) < edge.dup_p {
            self.stats.duplicated += 1;
            fate = Some(ChaosFate::Duplicated);
            out.push((to, env.clone()));
        }
        out.push((to, env));
        (out, fate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::RtMsg;
    use elan_core::messages::MsgId;
    use elan_core::state::WorkerId;

    fn env(id: u64, attempt: u32) -> Envelope {
        Envelope {
            id: MsgId(id),
            from: EndpointId::Controller,
            attempt,
            body: RtMsg::Stop { seq: 0 },
        }
    }

    fn count_fates(seed: u64, policy: ChaosPolicy, n: u64) -> ChaosStats {
        let _ = seed;
        let mut engine = ChaosEngine::new(policy);
        for i in 0..n {
            let _ = engine.route(EndpointId::Am, env(i, 1));
        }
        engine.stats()
    }

    #[test]
    fn same_seed_same_fates() {
        let p = ChaosPolicy::new(7).drop(0.3).duplicate(0.2).delay(0.1, 2);
        let a = count_fates(7, p.clone(), 500);
        let b = count_fates(7, p, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = count_fates(1, ChaosPolicy::new(1).drop(0.3), 500);
        let b = count_fates(2, ChaosPolicy::new(2).drop(0.3), 500);
        assert_ne!(a.dropped, b.dropped);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let stats = count_fates(3, ChaosPolicy::new(3).drop(0.25), 4000);
        let rate = stats.dropped as f64 / 4000.0;
        assert!((0.20..0.30).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn resend_attempt_rolls_new_dice() {
        // A message dropped at attempt 1 must not be doomed forever: across
        // many ids, at least one dropped first attempt survives on retry.
        let policy = ChaosPolicy::new(11).drop(0.5);
        let mut engine = ChaosEngine::new(policy);
        let mut saved_by_retry = 0;
        for i in 0..200 {
            if engine.route(EndpointId::Am, env(i, 1)).0.is_empty()
                && !engine.route(EndpointId::Am, env(i, 2)).0.is_empty()
            {
                saved_by_retry += 1;
            }
        }
        assert!(saved_by_retry > 0);
    }

    #[test]
    fn delayed_messages_release_after_ticks() {
        let policy = ChaosPolicy::new(0).delay(1.0, 2); // always delay 2 ticks
        let mut engine = ChaosEngine::new(policy);
        assert!(engine.route(EndpointId::Am, env(1, 1)).0.is_empty());
        // Tick 1: msg 2 also delayed; msg 1 ages.
        assert!(engine.route(EndpointId::Am, env(2, 1)).0.is_empty());
        // Tick 2: msg 1 releases (behind msg 2 — reordered).
        let (out, _) = engine.route(EndpointId::Am, env(3, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.id, MsgId(1));
    }

    #[test]
    fn duplicates_deliver_two_copies() {
        let policy = ChaosPolicy::new(0).duplicate(1.0);
        let mut engine = ChaosEngine::new(policy);
        let (out, fate) = engine.route(EndpointId::Am, env(9, 1));
        assert_eq!(fate, Some(ChaosFate::Duplicated));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.id, out[1].1.id);
    }

    #[test]
    fn per_edge_override_wins() {
        let w = EndpointId::Worker(WorkerId(0));
        let policy = ChaosPolicy::new(5).drop(1.0).edge(
            EndpointId::Controller,
            w,
            EdgeChaos::default(), // pristine edge
        );
        let mut engine = ChaosEngine::new(policy);
        // Default edge drops everything…
        assert!(engine.route(EndpointId::Am, env(1, 1)).0.is_empty());
        // …but the overridden edge is clean.
        let mut clean = env(2, 1);
        clean.from = EndpointId::Controller;
        assert_eq!(engine.route(w, clean).0.len(), 1);
    }
}
