//! Deterministic, seeded fault injection for the control-plane bus.
//!
//! A [`ChaosPolicy`] describes per-edge probabilities of dropping,
//! duplicating, and delaying messages; the bus consults the policy on
//! every send. The fate of a message is a **pure function** of
//! `(seed, edge, message id, attempt)`, so a chaotic run is exactly
//! reproducible from its seed, and — crucially — a *resend* of a dropped
//! message (same id, higher attempt) rolls new dice instead of being
//! dropped forever.
//!
//! Delays are modeled without timers: a delayed message sits in a limbo
//! buffer and is released only after `delay_ticks` further messages have
//! flowed through the bus, which also reorders it behind younger traffic.
//!
//! Partitions are *scripted*, not rolled: a [`PartitionWindow`] names a
//! bidirectional edge cut between endpoint groups over a virtual-time
//! interval. While a window is open, every message crossing the cut is
//! discarded (fate [`ChaosFate::Partitioned`]) — deterministically, by
//! the clock rather than the dice — and on heal the reliable layer's
//! resends flow again. Windows compose with the per-edge fates: a message
//! that survives the cut still rolls for drop/delay/duplicate.

use std::collections::HashMap;
use std::time::Duration;

use elan_sim::SimTime;

use crate::bus::{EndpointId, Envelope};
use crate::obs::ChaosFate;
use crate::time::std_to_sim;

/// One named, scripted partition: a bidirectional edge cut between
/// `groups` that is open for virtual times in `[from, until)`.
///
/// Endpoints listed in *different* groups cannot exchange messages while
/// the window is open; an endpoint not listed in any group is cut from
/// every listed endpoint (so `[[Am]]` isolates the AM from the whole
/// world) but unlisted↔unlisted traffic flows freely.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// Human-readable label (journal events carry it implicitly by order).
    pub name: String,
    /// The sides of the cut.
    pub groups: Vec<Vec<EndpointId>>,
    /// Virtual time the cut opens.
    pub from: SimTime,
    /// Virtual time the cut heals (exclusive).
    pub until: SimTime,
}

impl PartitionWindow {
    fn contains(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }

    fn group_of(&self, e: EndpointId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&e))
    }

    /// Whether this window cuts the `a`↔`b` edge (direction-agnostic).
    fn cuts(&self, a: EndpointId, b: EndpointId) -> bool {
        match (self.group_of(a), self.group_of(b)) {
            (None, None) => false,
            (ga, gb) => ga != gb,
        }
    }
}

/// Fault probabilities for one directed bus edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeChaos {
    /// Probability the message silently vanishes.
    pub drop_p: f64,
    /// Probability the message is delivered twice.
    pub dup_p: f64,
    /// Probability the message is held back and reordered.
    pub delay_p: f64,
    /// How many subsequent bus sends a delayed message waits out.
    pub delay_ticks: u32,
}

impl Default for EdgeChaos {
    fn default() -> Self {
        EdgeChaos {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_ticks: 3,
        }
    }
}

/// A seeded, per-edge fault-injection policy.
///
/// # Examples
///
/// ```
/// use elan_rt::chaos::ChaosPolicy;
///
/// // 20% drop, 10% duplicate, 10% delay on every edge, seed 42.
/// let policy = ChaosPolicy::new(42).drop(0.2).duplicate(0.1).delay(0.1, 3);
/// assert_eq!(policy.seed, 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChaosPolicy {
    /// Seed making every fate decision reproducible.
    pub seed: u64,
    /// Faults applied to edges without a specific override.
    pub default_edge: EdgeChaos,
    /// Per-edge overrides, keyed by `(from, to)`.
    pub edges: HashMap<(EndpointId, EndpointId), EdgeChaos>,
    /// Scripted partition windows on the virtual-time axis.
    pub partitions: Vec<PartitionWindow>,
}

impl ChaosPolicy {
    /// A policy with no faults (until probabilities are set).
    pub fn new(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            ..ChaosPolicy::default()
        }
    }

    /// Sets the default drop probability.
    pub fn drop(mut self, p: f64) -> Self {
        self.default_edge.drop_p = p;
        self
    }

    /// Sets the default duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.default_edge.dup_p = p;
        self
    }

    /// Sets the default delay probability and hold-back span.
    pub fn delay(mut self, p: f64, ticks: u32) -> Self {
        self.default_edge.delay_p = p;
        self.default_edge.delay_ticks = ticks;
        self
    }

    /// Overrides the faults on one directed edge.
    pub fn edge(mut self, from: EndpointId, to: EndpointId, chaos: EdgeChaos) -> Self {
        self.edges.insert((from, to), chaos);
        self
    }

    /// Scripts a named partition: endpoints in different `groups` cannot
    /// exchange messages while the virtual clock is in `[from, until)`.
    /// Multiple windows may overlap; each opens and heals independently.
    pub fn partition(
        mut self,
        name: impl Into<String>,
        groups: Vec<Vec<EndpointId>>,
        from: Duration,
        until: Duration,
    ) -> Self {
        self.partitions.push(PartitionWindow {
            name: name.into(),
            groups,
            from: SimTime::ZERO + std_to_sim(from),
            until: SimTime::ZERO + std_to_sim(until),
        });
        self
    }

    fn edge_for(&self, from: EndpointId, to: EndpointId) -> EdgeChaos {
        self.edges
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_edge)
    }
}

/// Counters of every fate the engine has decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Messages passed through untouched.
    pub delivered: u64,
    /// Messages silently discarded.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Messages held back in limbo.
    pub delayed: u64,
    /// Delayed messages that were actually released *behind* traffic sent
    /// after them — the observable reordering the delay fate exists for.
    pub reordered: u64,
    /// Messages discarded by an open [`PartitionWindow`].
    pub partitioned: u64,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn endpoint_code(e: EndpointId) -> u64 {
    match e {
        EndpointId::Am => 1,
        EndpointId::Controller => 2,
        EndpointId::Worker(w) => 16 + w.0 as u64,
    }
}

/// Where a partition window is in its lifecycle — tracked so the bus can
/// journal `PartitionStart`/`PartitionHeal` exactly once per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowPhase {
    Pending,
    Active,
    Healed,
}

/// One delayed message sitting in limbo.
#[derive(Debug)]
struct Limbo {
    /// Sends remaining before release.
    ticks: u32,
    /// `stats.delivered` when the message entered limbo — if the counter
    /// grew by release time, younger traffic overtook it (a reorder).
    delivered_then: u64,
    to: EndpointId,
    env: Envelope,
}

/// The mutable fault-injection state attached to one bus.
#[derive(Debug)]
pub(crate) struct ChaosEngine {
    policy: ChaosPolicy,
    stats: ChaosStats,
    limbo: Vec<Limbo>,
    /// Partition windows (scripted plus runtime-injected) and their phase.
    windows: Vec<(PartitionWindow, WindowPhase)>,
}

impl ChaosEngine {
    pub(crate) fn new(policy: ChaosPolicy) -> Self {
        let windows = policy
            .partitions
            .iter()
            .cloned()
            .map(|w| (w, WindowPhase::Pending))
            .collect();
        ChaosEngine {
            policy,
            stats: ChaosStats::default(),
            limbo: Vec::new(),
            windows,
        }
    }

    pub(crate) fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Injects a partition window at runtime (e.g. mid-adjustment, from a
    /// test that wants the cut anchored to a protocol state rather than a
    /// pre-scripted instant).
    pub(crate) fn add_window(&mut self, window: PartitionWindow) {
        self.windows.push((window, WindowPhase::Pending));
    }

    /// Whether any open window cuts the `a`↔`b` edge at `now`.
    pub(crate) fn is_partitioned(&self, now: SimTime, a: EndpointId, b: EndpointId) -> bool {
        self.windows
            .iter()
            .any(|(w, _)| w.contains(now) && w.cuts(a, b))
    }

    /// Advances window lifecycles to `now`; returns the names of windows
    /// that just opened and just healed (for journal events). A window
    /// whose whole span elapsed between polls reports both transitions.
    pub(crate) fn poll_windows(&mut self, now: SimTime) -> (Vec<String>, Vec<String>) {
        let (mut started, mut healed) = (Vec::new(), Vec::new());
        for (w, phase) in &mut self.windows {
            if *phase == WindowPhase::Pending && now >= w.from {
                *phase = WindowPhase::Active;
                started.push(w.name.clone());
            }
            if *phase == WindowPhase::Active && now >= w.until {
                *phase = WindowPhase::Healed;
                healed.push(w.name.clone());
            }
        }
        (started, healed)
    }

    /// A uniform value in `[0, 1)` that is a pure function of the message
    /// coordinates and the decision `salt`.
    fn unit(&self, salt: u64, from: EndpointId, to: EndpointId, env: &Envelope) -> f64 {
        let mut x = self.policy.seed ^ salt.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x = mix(x ^ (endpoint_code(from) << 40) ^ (endpoint_code(to) << 20));
        x = mix(x ^ env.id.0);
        x = mix(x ^ (env.attempt as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of `env` heading to `to` and advances limbo.
    /// Returns every delivery the bus should now perform (possibly zero,
    /// one, or two copies of `env`, plus any released delayed messages),
    /// together with the fate the engine chose for `env` itself (`None`
    /// when the message passed through untouched) — the bus turns
    /// non-trivial fates into journal events.
    pub(crate) fn route(
        &mut self,
        now: SimTime,
        to: EndpointId,
        env: Envelope,
    ) -> (Vec<(EndpointId, Envelope)>, Option<ChaosFate>) {
        // Every send is a tick that ages the limbo buffer.
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.limbo.len() {
            if self.limbo[i].ticks <= 1 {
                let released = self.limbo.swap_remove(i);
                // A message released from limbo still has to survive any
                // window that opened while it was held back.
                if self.is_partitioned(now, released.env.from, released.to) {
                    self.stats.partitioned += 1;
                    continue;
                }
                if self.stats.delivered > released.delivered_then {
                    self.stats.reordered += 1;
                }
                out.push((released.to, released.env));
            } else {
                self.limbo[i].ticks -= 1;
                i += 1;
            }
        }

        // Scripted cuts come first: while a window is open the edge is
        // simply gone, no dice involved — resends after heal get through.
        if self.is_partitioned(now, env.from, to) {
            self.stats.partitioned += 1;
            return (out, Some(ChaosFate::Partitioned));
        }
        let edge = self.policy.edge_for(env.from, to);
        if self.unit(1, env.from, to, &env) < edge.drop_p {
            self.stats.dropped += 1;
            return (out, Some(ChaosFate::Dropped));
        }
        if self.unit(2, env.from, to, &env) < edge.delay_p {
            self.stats.delayed += 1;
            self.limbo.push(Limbo {
                ticks: edge.delay_ticks.max(1),
                delivered_then: self.stats.delivered,
                to,
                env,
            });
            return (out, Some(ChaosFate::Delayed));
        }
        self.stats.delivered += 1;
        let mut fate = None;
        if self.unit(3, env.from, to, &env) < edge.dup_p {
            self.stats.duplicated += 1;
            fate = Some(ChaosFate::Duplicated);
            out.push((to, env.clone()));
        }
        out.push((to, env));
        (out, fate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::RtMsg;
    use elan_core::messages::MsgId;
    use elan_core::state::WorkerId;

    fn env(id: u64, attempt: u32) -> Envelope {
        Envelope {
            id: MsgId(id),
            from: EndpointId::Controller,
            attempt,
            body: RtMsg::Stop { seq: 0 },
        }
    }

    fn count_fates(seed: u64, policy: ChaosPolicy, n: u64) -> ChaosStats {
        let _ = seed;
        let mut engine = ChaosEngine::new(policy);
        for i in 0..n {
            let _ = engine.route(SimTime::ZERO, EndpointId::Am, env(i, 1));
        }
        engine.stats()
    }

    #[test]
    fn same_seed_same_fates() {
        let p = ChaosPolicy::new(7).drop(0.3).duplicate(0.2).delay(0.1, 2);
        let a = count_fates(7, p.clone(), 500);
        let b = count_fates(7, p, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = count_fates(1, ChaosPolicy::new(1).drop(0.3), 500);
        let b = count_fates(2, ChaosPolicy::new(2).drop(0.3), 500);
        assert_ne!(a.dropped, b.dropped);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let stats = count_fates(3, ChaosPolicy::new(3).drop(0.25), 4000);
        let rate = stats.dropped as f64 / 4000.0;
        assert!((0.20..0.30).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn resend_attempt_rolls_new_dice() {
        // A message dropped at attempt 1 must not be doomed forever: across
        // many ids, at least one dropped first attempt survives on retry.
        let policy = ChaosPolicy::new(11).drop(0.5);
        let mut engine = ChaosEngine::new(policy);
        let mut saved_by_retry = 0;
        for i in 0..200 {
            if engine
                .route(SimTime::ZERO, EndpointId::Am, env(i, 1))
                .0
                .is_empty()
                && !engine
                    .route(SimTime::ZERO, EndpointId::Am, env(i, 2))
                    .0
                    .is_empty()
            {
                saved_by_retry += 1;
            }
        }
        assert!(saved_by_retry > 0);
    }

    #[test]
    fn delayed_messages_release_after_ticks() {
        let policy = ChaosPolicy::new(0).delay(1.0, 2); // always delay 2 ticks
        let mut engine = ChaosEngine::new(policy);
        assert!(engine
            .route(SimTime::ZERO, EndpointId::Am, env(1, 1))
            .0
            .is_empty());
        // Tick 1: msg 2 also delayed; msg 1 ages.
        assert!(engine
            .route(SimTime::ZERO, EndpointId::Am, env(2, 1))
            .0
            .is_empty());
        // Tick 2: msg 1 releases (behind msg 2 — reordered).
        let (out, _) = engine.route(SimTime::ZERO, EndpointId::Am, env(3, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.id, MsgId(1));
    }

    #[test]
    fn release_behind_younger_traffic_counts_as_reorder() {
        // Only the Controller→Am edge delays; Controller→Worker is clean.
        let w = EndpointId::Worker(WorkerId(0));
        let delayed_edge = EdgeChaos {
            delay_p: 1.0,
            delay_ticks: 2,
            ..EdgeChaos::default()
        };
        let policy = ChaosPolicy::new(0).edge(EndpointId::Controller, EndpointId::Am, delayed_edge);
        let mut engine = ChaosEngine::new(policy);
        // Msg 1 → Am goes into limbo.
        let (out, fate) = engine.route(SimTime::ZERO, EndpointId::Am, env(1, 1));
        assert!(out.is_empty());
        assert_eq!(fate, Some(ChaosFate::Delayed));
        // Msg 2 → worker delivers immediately (younger traffic overtakes).
        assert_eq!(engine.route(SimTime::ZERO, w, env(2, 1)).0.len(), 1);
        // Msg 3 ages msg 1 out of limbo: it lands *behind* msg 2.
        let (out, _) = engine.route(SimTime::ZERO, w, env(3, 1));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.id, MsgId(1), "released delayed message first");
        let stats = engine.stats();
        assert_eq!(stats.delayed, 1);
        assert_eq!(stats.reordered, 1, "overtaken release must count");
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn delayed_release_without_overtaking_is_not_a_reorder() {
        // Everything is delayed, so nothing ever overtakes the limbo.
        let policy = ChaosPolicy::new(0).delay(1.0, 1);
        let mut engine = ChaosEngine::new(policy);
        assert!(engine
            .route(SimTime::ZERO, EndpointId::Am, env(1, 1))
            .0
            .is_empty());
        let (out, _) = engine.route(SimTime::ZERO, EndpointId::Am, env(2, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(engine.stats().reordered, 0);
    }

    #[test]
    fn duplicates_deliver_two_copies() {
        let policy = ChaosPolicy::new(0).duplicate(1.0);
        let mut engine = ChaosEngine::new(policy);
        let (out, fate) = engine.route(SimTime::ZERO, EndpointId::Am, env(9, 1));
        assert_eq!(fate, Some(ChaosFate::Duplicated));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.id, out[1].1.id);
    }

    #[test]
    fn per_edge_override_wins() {
        let w = EndpointId::Worker(WorkerId(0));
        let policy = ChaosPolicy::new(5).drop(1.0).edge(
            EndpointId::Controller,
            w,
            EdgeChaos::default(), // pristine edge
        );
        let mut engine = ChaosEngine::new(policy);
        // Default edge drops everything…
        assert!(engine
            .route(SimTime::ZERO, EndpointId::Am, env(1, 1))
            .0
            .is_empty());
        // …but the overridden edge is clean.
        let mut clean = env(2, 1);
        clean.from = EndpointId::Controller;
        assert_eq!(engine.route(SimTime::ZERO, w, clean).0.len(), 1);
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + std_to_sim(Duration::from_millis(ms))
    }

    #[test]
    fn partition_window_cuts_both_directions_and_heals() {
        let w = EndpointId::Worker(WorkerId(0));
        let policy = ChaosPolicy::new(0).partition(
            "am-isolated",
            vec![vec![EndpointId::Am]],
            Duration::from_millis(100),
            Duration::from_millis(200),
        );
        let mut engine = ChaosEngine::new(policy);
        // Before the window: traffic flows.
        assert_eq!(
            engine.route(at_ms(50), EndpointId::Am, env(1, 1)).0.len(),
            1
        );
        assert!(!engine.is_partitioned(at_ms(50), EndpointId::Am, w));
        // Open: both directions are cut.
        let mut from_am = env(2, 1);
        from_am.from = EndpointId::Am;
        let (out, fate) = engine.route(at_ms(150), w, from_am);
        assert!(out.is_empty());
        assert_eq!(fate, Some(ChaosFate::Partitioned));
        let (out, fate) = engine.route(at_ms(150), EndpointId::Am, env(3, 1));
        assert!(out.is_empty());
        assert_eq!(fate, Some(ChaosFate::Partitioned));
        assert!(engine.is_partitioned(at_ms(150), EndpointId::Am, w));
        // Unlisted endpoints still talk to each other under [[Am]].
        let mut c_to_w = env(4, 1);
        c_to_w.from = EndpointId::Controller;
        assert_eq!(engine.route(at_ms(150), w, c_to_w).0.len(), 1);
        // Healed: a resend of the cut message gets through.
        assert_eq!(
            engine.route(at_ms(250), EndpointId::Am, env(3, 2)).0.len(),
            1
        );
        assert_eq!(engine.stats().partitioned, 2);
    }

    #[test]
    fn partition_groups_cut_across_but_not_within() {
        let w0 = EndpointId::Worker(WorkerId(0));
        let w1 = EndpointId::Worker(WorkerId(1));
        let policy = ChaosPolicy::new(0).partition(
            "split",
            vec![vec![EndpointId::Am, w0], vec![w1]],
            Duration::ZERO,
            Duration::from_millis(100),
        );
        let engine = ChaosEngine::new(policy);
        let now = at_ms(10);
        assert!(!engine.is_partitioned(now, EndpointId::Am, w0), "same side");
        assert!(engine.is_partitioned(now, EndpointId::Am, w1), "across");
        assert!(engine.is_partitioned(now, w0, w1), "across");
        // w1 is also cut from unlisted endpoints (different group vs None).
        assert!(engine.is_partitioned(now, EndpointId::Controller, w1));
    }

    #[test]
    fn window_phases_report_start_and_heal_once() {
        let policy = ChaosPolicy::new(0).partition(
            "w",
            vec![vec![EndpointId::Am]],
            Duration::from_millis(100),
            Duration::from_millis(200),
        );
        let mut engine = ChaosEngine::new(policy);
        assert_eq!(engine.poll_windows(at_ms(50)), (vec![], vec![]));
        assert_eq!(
            engine.poll_windows(at_ms(100)),
            (vec!["w".to_string()], vec![])
        );
        assert_eq!(engine.poll_windows(at_ms(150)), (vec![], vec![]));
        assert_eq!(
            engine.poll_windows(at_ms(200)),
            (vec![], vec!["w".to_string()])
        );
        assert_eq!(engine.poll_windows(at_ms(300)), (vec![], vec![]));
        // A whole span elapsing between polls reports both transitions.
        let mut engine = ChaosEngine::new(ChaosPolicy::new(0).partition(
            "fast",
            vec![vec![EndpointId::Am]],
            Duration::from_millis(10),
            Duration::from_millis(20),
        ));
        assert_eq!(
            engine.poll_windows(at_ms(500)),
            (vec!["fast".to_string()], vec!["fast".to_string()])
        );
    }

    #[test]
    fn delayed_message_released_into_open_window_is_cut() {
        // The message enters limbo before the window opens, but the window
        // is open by the time it would be released: it must not leak
        // through the cut.
        let delayed_edge = EdgeChaos {
            delay_p: 1.0,
            delay_ticks: 1,
            ..EdgeChaos::default()
        };
        let policy = ChaosPolicy::new(0)
            .edge(EndpointId::Controller, EndpointId::Am, delayed_edge)
            .partition(
                "late",
                vec![vec![EndpointId::Am]],
                Duration::from_millis(100),
                Duration::from_millis(200),
            );
        let mut engine = ChaosEngine::new(policy);
        assert!(engine
            .route(at_ms(50), EndpointId::Am, env(1, 1))
            .0
            .is_empty());
        // The aging tick happens inside the window: the release is cut.
        let mut c_to_w = env(2, 1);
        c_to_w.from = EndpointId::Controller;
        let (out, _) = engine.route(at_ms(150), EndpointId::Worker(WorkerId(0)), c_to_w);
        assert_eq!(out.len(), 1, "only the worker-bound message survives");
        assert_eq!(engine.stats().partitioned, 1);
    }
}
