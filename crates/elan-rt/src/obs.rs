//! Observability for the live runtime: the structured event journal, the
//! adjustment-latency tracer, and the metrics registry wiring (§VI).
//!
//! The paper's evaluation hinges on attributing elastic overhead to the
//! phases of the 5-step adjustment pipeline (§V-B: request → report →
//! coordinate → replicate → adjust) and to the replication waves of §IV.
//! This module is that instrumentation spine:
//!
//! - every interesting runtime action emits a structured [`Event`] into an
//!   [`EventJournal`] (a bounded [`RingBufferSink`] plus optional extra
//!   [`EventSink`]s),
//! - the in-flight adjustment is traced span-style by a [`TraceRecorder`]
//!   into an [`AdjustmentTrace`] with one
//!   [`PhaseWindow`] per pipeline phase —
//!   idempotent under AM failover, so a replacement AM continues its
//!   predecessor's trace instead of opening a new one,
//! - counters live in a shared
//!   [`MetricsRegistry`] that absorbs the
//!   old ad-hoc `RtMetrics` struct (its fields are now registry-backed
//!   [`Counter`](elan_core::obs::Counter) handles).
//!
//! [`render_trace_report`] turns recorded traces into the per-phase
//! latency breakdown printed by `examples/fault_tolerance.rs` and exported
//! as JSON for the `bench` crate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use elan_core::obs::{json_escape, AdjustmentPhase, MetricsRegistry, MetricsSnapshot, PhaseWindow};
use elan_core::protocol::EpochPhase;
use elan_core::state::WorkerId;

use crate::bus::EndpointId;
use crate::reliable::RtMetrics;
use crate::time::TimeSource;

/// What a chaos engine did to one message (mirrors
/// [`ChaosStats`](crate::chaos::ChaosStats) fates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFate {
    /// The message vanished.
    Dropped,
    /// An extra copy was injected.
    Duplicated,
    /// The message was held back and reordered.
    Delayed,
    /// The message crossed an open partition cut and was discarded.
    Partitioned,
}

impl ChaosFate {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFate::Dropped => "dropped",
            ChaosFate::Duplicated => "duplicated",
            ChaosFate::Delayed => "delayed",
            ChaosFate::Partitioned => "partitioned",
        }
    }
}

/// Why an adjustment ran — the service-API verb, or the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Controller-requested growth.
    ScaleOut,
    /// Controller-requested shrink.
    ScaleIn,
    /// Controller-requested migration.
    Migrate,
    /// Failure-driven scale-in after missed heartbeats / give-ups.
    FailureScaleIn,
}

impl TraceKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::ScaleOut => "scale-out",
            TraceKind::ScaleIn => "scale-in",
            TraceKind::Migrate => "migrate",
            TraceKind::FailureScaleIn => "failure-scale-in",
        }
    }
}

/// One structured journal entry.
///
/// The variant set is `#[non_exhaustive]`: match with a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The controller (or failure detector) requested an adjustment.
    AdjustmentRequested {
        /// Trace id this adjustment is recorded under.
        trace: u64,
        /// Why.
        kind: TraceKind,
        /// Controller op sequence, `None` for failure-driven ops.
        seq: Option<u64>,
        /// World size being adjusted to.
        target_world: u32,
    },
    /// A pipeline phase of the in-flight adjustment opened.
    PhaseStarted {
        /// The trace being extended.
        trace: u64,
        /// Which of the five phases.
        phase: AdjustmentPhase,
    },
    /// A pipeline phase of the in-flight adjustment closed.
    PhaseEnded {
        /// The trace being extended.
        trace: u64,
        /// Which of the five phases.
        phase: AdjustmentPhase,
    },
    /// The adjustment finished: membership switched, training resumed.
    AdjustmentCompleted {
        /// The finished trace.
        trace: u64,
        /// New communication-group generation.
        generation: u64,
        /// New world size.
        world: u32,
    },
    /// A joining worker reported readiness (step ②).
    WorkerReported {
        /// The reporting worker.
        worker: WorkerId,
    },
    /// Every live member parked at the same boundary and was released
    /// unchanged (no adjustment pending).
    BoundaryReleased {
        /// The released boundary iteration.
        boundary: u64,
        /// Members released.
        world: u32,
        /// The AM term that released it (fencing audit trail).
        term: u64,
    },
    /// The topology planner produced a replication schedule (§IV).
    ReplicationPlanned {
        /// Contention-free waves in the schedule.
        waves: u32,
        /// Total point-to-point transfers.
        transfers: u32,
    },
    /// One wave of transfer orders went out.
    WaveIssued {
        /// Wave index (0-based).
        wave: u32,
        /// Transfers in this wave.
        transfers: u32,
    },
    /// A source finished streaming state to a destination.
    TransferDone {
        /// Source worker.
        src: WorkerId,
        /// Destination worker (== `src` for checkpoints).
        dst: WorkerId,
    },
    /// A source finished chunking + sending one snapshot.
    SnapshotStreamed {
        /// The streaming source.
        worker: WorkerId,
        /// Chunks sent (params + momentum).
        chunks: u32,
    },
    /// A destination finished assembling + applying one snapshot.
    SnapshotApplied {
        /// The receiving worker.
        worker: WorkerId,
        /// Iteration the snapshot was taken at.
        iteration: u64,
    },
    /// One allreduce round completed.
    AllreduceRound {
        /// The finished round number.
        round: u64,
        /// Contributors reduced over.
        world: u32,
    },
    /// An allreduce round was published with a chosen reduction strategy
    /// (the adaptive dispatcher's per-round decision).
    AllreducePath {
        /// The round being published.
        round: u64,
        /// The strategy serving it.
        path: crate::comm::ReducePath,
        /// Contributors in the round.
        world: u32,
        /// Parallel work groups (1 unless hierarchical).
        groups: u32,
    },
    /// The communication group was rebuilt (step ⑤).
    CommReconfigured {
        /// The new generation.
        generation: u64,
        /// The new world size.
        world: u32,
    },
    /// A member was evicted from the collective mid-generation.
    WorkerEvicted {
        /// The evicted member.
        worker: WorkerId,
    },
    /// The reliable layer resent an unacked message.
    MessageResent {
        /// The destination being retried.
        to: EndpointId,
        /// The attempt number of the resend.
        attempt: u32,
    },
    /// The reliable layer gave up on a peer (attempt budget exhausted).
    MessageGaveUp {
        /// The presumed-dead destination.
        to: EndpointId,
    },
    /// A receiver suppressed a duplicate delivery.
    DuplicateSuppressed {
        /// Where the duplicate came from.
        from: EndpointId,
    },
    /// A send addressed an unregistered or departed endpoint.
    DeadLetter {
        /// The missing destination.
        to: EndpointId,
    },
    /// The chaos engine interfered with a message.
    ChaosInjected {
        /// What it did.
        fate: ChaosFate,
        /// The edge destination.
        to: EndpointId,
    },
    /// The failure detector declared a worker dead.
    WorkerDeclaredDead {
        /// The victim.
        worker: WorkerId,
    },
    /// The watchdog elected a replacement AM.
    AmElected {
        /// The new AM epoch.
        epoch: u64,
    },
    /// A scripted partition window opened: the named edge cut is live.
    PartitionStart {
        /// The window's name from the [`ChaosPolicy`](crate::chaos::ChaosPolicy).
        name: String,
    },
    /// A scripted partition window healed: the cut edges flow again.
    PartitionHeal {
        /// The window's name.
        name: String,
    },
    /// An AM incarnation won the term CAS and now owns the job.
    TermBump {
        /// The new (strictly higher) term.
        term: u64,
    },
    /// Stale-term traffic was fenced (store write or worker-side message).
    StaleTermRejected {
        /// The current term at the rejecting side.
        term: u64,
        /// The stale term that was rejected.
        stale: u64,
    },
    /// A crashed-and-restarted worker was re-admitted via the Rejoin
    /// handshake.
    WorkerRejoin {
        /// The rejoining worker.
        worker: WorkerId,
        /// The term that admitted it.
        term: u64,
    },
    /// The epoch machine was configured — journalled once at startup so
    /// the epoch-safety auditor can read the thresholds from the journal
    /// alone.
    EpochConfigured {
        /// Minimum members required to leave `WaitingForMembers`.
        min_members: u64,
        /// Maximum members admitted into any epoch.
        max_members: u64,
        /// The bounded join window, in milliseconds of virtual time.
        join_window_ms: u64,
    },
    /// The epoch machine entered a phase.
    EpochPhaseEntered {
        /// The training epoch.
        epoch: u64,
        /// The phase just entered.
        phase: EpochPhase,
        /// Member count at the transition.
        members: u64,
    },
    /// An epoch's join window closed.
    JoinWindowClosed {
        /// The training epoch whose window closed.
        epoch: u64,
        /// Join requests pending when it closed.
        pending: u64,
    },
    /// An open joiner announced itself inside a join window.
    JoinRequested {
        /// The joiner.
        worker: WorkerId,
        /// The epoch whose window it landed in.
        epoch: u64,
    },
    /// A join request arrived outside a window (or over the member cap)
    /// and was deferred to a later epoch; the joiner re-announces.
    JoinDeferred {
        /// The deferred joiner.
        worker: WorkerId,
        /// The epoch that deferred it.
        epoch: u64,
    },
    /// A witness's admit/evict verdict on a joiner was recorded.
    WitnessVoteCast {
        /// The voting member.
        witness: WorkerId,
        /// The joiner under audit.
        subject: WorkerId,
        /// The epoch of the admission.
        epoch: u64,
        /// The verdict.
        admit: bool,
    },
    /// A joiner completed warmup and the witness vote admitted it.
    JoinAdmitted {
        /// The admitted worker.
        worker: WorkerId,
        /// The epoch it joined in.
        epoch: u64,
        /// Admit votes received.
        votes_for: u64,
        /// Evict votes received.
        votes_against: u64,
    },
    /// The witness vote rejected a joiner's warmup claim; it was evicted
    /// before entering `Train`.
    WitnessEvicted {
        /// The evicted worker.
        worker: WorkerId,
        /// The epoch that evicted it.
        epoch: u64,
        /// Admit votes received.
        votes_for: u64,
        /// Evict votes received.
        votes_against: u64,
    },
    /// Data shards were re-partitioned over the epoch's membership (a
    /// pure function of seed, epoch, and member set — the checksum pins
    /// the assignment without journalling the full map).
    ShardsReassigned {
        /// The epoch the assignment serves.
        epoch: u64,
        /// Members sharing the shards.
        members: u64,
        /// FNV-style checksum of the full shard→member map.
        checksum: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the variant (used for summary counts and
    /// JSON export).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::AdjustmentRequested { .. } => "adjustment_requested",
            EventKind::PhaseStarted { .. } => "phase_started",
            EventKind::PhaseEnded { .. } => "phase_ended",
            EventKind::AdjustmentCompleted { .. } => "adjustment_completed",
            EventKind::WorkerReported { .. } => "worker_reported",
            EventKind::BoundaryReleased { .. } => "boundary_released",
            EventKind::ReplicationPlanned { .. } => "replication_planned",
            EventKind::WaveIssued { .. } => "wave_issued",
            EventKind::TransferDone { .. } => "transfer_done",
            EventKind::SnapshotStreamed { .. } => "snapshot_streamed",
            EventKind::SnapshotApplied { .. } => "snapshot_applied",
            EventKind::AllreduceRound { .. } => "allreduce_round",
            EventKind::AllreducePath { .. } => "allreduce_path",
            EventKind::CommReconfigured { .. } => "comm_reconfigured",
            EventKind::WorkerEvicted { .. } => "worker_evicted",
            EventKind::MessageResent { .. } => "message_resent",
            EventKind::MessageGaveUp { .. } => "message_gave_up",
            EventKind::DuplicateSuppressed { .. } => "duplicate_suppressed",
            EventKind::DeadLetter { .. } => "dead_letter",
            EventKind::ChaosInjected { .. } => "chaos_injected",
            EventKind::WorkerDeclaredDead { .. } => "worker_declared_dead",
            EventKind::AmElected { .. } => "am_elected",
            EventKind::PartitionStart { .. } => "partition_start",
            EventKind::PartitionHeal { .. } => "partition_heal",
            EventKind::TermBump { .. } => "term_bump",
            EventKind::StaleTermRejected { .. } => "stale_term_rejected",
            EventKind::WorkerRejoin { .. } => "worker_rejoin",
            EventKind::EpochConfigured { .. } => "epoch_configured",
            EventKind::EpochPhaseEntered { .. } => "epoch_phase_entered",
            EventKind::JoinWindowClosed { .. } => "join_window_closed",
            EventKind::JoinRequested { .. } => "join_requested",
            EventKind::JoinDeferred { .. } => "join_deferred",
            EventKind::WitnessVoteCast { .. } => "witness_vote_cast",
            EventKind::JoinAdmitted { .. } => "join_admitted",
            EventKind::WitnessEvicted { .. } => "witness_evicted",
            EventKind::ShardsReassigned { .. } => "shards_reassigned",
        }
    }
}

/// One recorded event: a sequence number, a timestamp on the journal's
/// microsecond clock, and the structured payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission order (gapless per journal).
    pub seq: u64,
    /// Microseconds since the journal's epoch.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            self.at_us,
            self.kind.name(),
            json_escape(&format!("{:?}", self.kind)),
        )
    }
}

/// A consumer of journal events. Implementations must be cheap and
/// non-blocking: sinks run inline on runtime threads.
pub trait EventSink: Send + Sync {
    /// Called once per emitted event, in emission order per thread.
    fn record(&self, event: &Event);
}

/// The default sink: a bounded ring buffer with overwrite semantics.
///
/// Holding the last `capacity` events bounds memory under chaos storms;
/// [`RingBufferSink::overwritten`] counts what was lost.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<std::collections::VecDeque<Event>>,
    overwritten: AtomicU64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: Mutex::new(std::collections::VecDeque::with_capacity(capacity.max(1))),
            overwritten: AtomicU64::new(0),
        }
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Events discarded to make room.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }
}

impl EventSink for RingBufferSink {
    fn record(&self, event: &Event) {
        let mut q = self.events.lock();
        if q.len() == self.capacity {
            q.pop_front();
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event.clone());
    }
}

/// Journal totals for post-mortem assertions (rides the shutdown report,
/// so tests never race the teardown).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// Events ever emitted.
    pub total: u64,
    /// Events the ring discarded to make room.
    pub overwritten: u64,
    /// Emission counts per [`EventKind::name`].
    pub counts: BTreeMap<String, u64>,
}

impl JournalSummary {
    /// Count for one kind name (0 when never emitted).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// The summary as one JSON object.
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = self
            .counts
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect();
        format!(
            "{{\"total\":{},\"overwritten\":{},\"counts\":{{{}}}}}",
            self.total,
            self.overwritten,
            counts.join(",")
        )
    }
}

/// The event journal: stamps events with the runtime's shared clock and
/// fans them out to the ring sink plus any extra sinks.
///
/// The timestamp axis is whatever [`TimeSource`] the journal was built
/// with. Under a seeded `VirtualClock` the stamps are logical, which makes
/// *same seed ⇒ byte-identical journal* a checkable invariant (the
/// `seedsweep` fuzzer and the chaos e2e suite both assert it).
pub struct EventJournal {
    time: TimeSource,
    seq: AtomicU64,
    ring: RingBufferSink,
    extra: Vec<Arc<dyn EventSink>>,
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("total", &self.seq.load(Ordering::Relaxed))
            .field("extra_sinks", &self.extra.len())
            .finish()
    }
}

impl EventJournal {
    /// A journal whose ring retains `ring_capacity` events, teeing every
    /// event to `extra` sinks after the ring. Ticks on a private real-time
    /// epoch; the runtime builder uses [`EventJournal::with_time`] so the
    /// journal shares the runtime's clock instead.
    pub fn new(ring_capacity: usize, extra: Vec<Arc<dyn EventSink>>) -> Self {
        EventJournal::with_time(ring_capacity, extra, TimeSource::real())
    }

    /// A journal stamping events from the given [`TimeSource`] — the old
    /// construction-time wall-clock epoch coupling is gone: the journal
    /// holds no clock of its own.
    pub fn with_time(
        ring_capacity: usize,
        extra: Vec<Arc<dyn EventSink>>,
        time: TimeSource,
    ) -> Self {
        EventJournal {
            time,
            seq: AtomicU64::new(0),
            ring: RingBufferSink::new(ring_capacity),
            extra,
            counts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Microseconds since the runtime epoch — the timestamp axis every
    /// event and [`PhaseWindow`] shares.
    pub fn now_us(&self) -> u64 {
        self.time.now().as_nanos() / 1_000
    }

    /// The clock this journal stamps events from.
    pub fn time(&self) -> &TimeSource {
        &self.time
    }

    /// Records `kind` now; returns the stamped event's sequence number.
    pub fn emit(&self, kind: EventKind) -> u64 {
        self.emit_at(self.now_us(), kind)
    }

    /// Records `kind` with an explicit timestamp (for callers that already
    /// read the clock).
    pub fn emit_at(&self, at_us: u64, kind: EventKind) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        *self.counts.lock().entry(kind.name()).or_insert(0) += 1;
        let event = Event { seq, at_us, kind };
        self.ring.record(&event);
        for sink in &self.extra {
            sink.record(&event);
        }
        seq
    }

    /// A copy of the ring's retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.events()
    }

    /// Totals and per-kind counts since launch.
    pub fn summary(&self) -> JournalSummary {
        JournalSummary {
            total: self.seq.load(Ordering::Relaxed),
            overwritten: self.ring.overwritten(),
            counts: self
                .counts
                .lock()
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        }
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::new(DEFAULT_RING_CAPACITY, Vec::new())
    }
}

/// Default ring capacity: generous enough that a chaotic e2e run keeps
/// every adjustment-relevant event.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One adjustment's span: per-phase windows on the journal's microsecond
/// clock, plus outcome metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjustmentTrace {
    /// Trace id (1-based, in request order).
    pub id: u64,
    /// Why the adjustment ran.
    pub kind: TraceKind,
    /// Controller op sequence (`None` for failure-driven ops).
    pub seq: Option<u64>,
    /// World size requested.
    pub target_world: u32,
    /// World size after completion (0 until completed).
    pub final_world: u32,
    /// Communication-group generation after completion.
    pub generation: u64,
    /// Whether the adjustment ran to completion.
    pub completed: bool,
    /// Replication waves planned (§IV).
    pub waves: u32,
    /// Point-to-point transfers planned.
    pub transfers: u32,
    phases: [Option<PhaseWindow>; 5],
}

impl AdjustmentTrace {
    fn new(id: u64, kind: TraceKind, seq: Option<u64>, target_world: u32) -> Self {
        AdjustmentTrace {
            id,
            kind,
            seq,
            target_world,
            final_world: 0,
            generation: 0,
            completed: false,
            waves: 0,
            transfers: 0,
            phases: [None; 5],
        }
    }

    /// The recorded window of one phase, if it opened.
    pub fn phase(&self, phase: AdjustmentPhase) -> Option<PhaseWindow> {
        self.phases[phase.index()]
    }

    /// Microseconds spent in one phase (0 when the phase never opened).
    pub fn phase_us(&self, phase: AdjustmentPhase) -> u64 {
        self.phase(phase).map(|w| w.micros()).unwrap_or(0)
    }

    /// End-to-end microseconds: first phase start to last phase end.
    pub fn total_us(&self) -> u64 {
        let start = self
            .phases
            .iter()
            .flatten()
            .map(|w| w.start_us)
            .min()
            .unwrap_or(0);
        let end = self
            .phases
            .iter()
            .flatten()
            .map(|w| w.end_us)
            .max()
            .unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Structural validity: every opened phase has `start <= end`, a
    /// completed trace has all five phases, and phase *starts* are ordered
    /// along the pipeline (request ≤ report ≤ coordinate ≤ … ≤ adjust).
    pub fn is_well_formed(&self) -> bool {
        for w in self.phases.iter().flatten() {
            if w.start_us > w.end_us {
                return false;
            }
        }
        if self.completed && self.phases.iter().any(|p| p.is_none()) {
            return false;
        }
        let starts: Vec<u64> = self.phases.iter().flatten().map(|w| w.start_us).collect();
        starts.windows(2).all(|p| p[0] <= p[1])
    }

    /// The trace as one JSON object with per-phase millisecond fields.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = AdjustmentPhase::ALL
            .iter()
            .map(|&p| {
                format!(
                    "\"{}_ms\":{:.3}",
                    p.name(),
                    self.phase_us(p) as f64 / 1000.0
                )
            })
            .collect();
        format!(
            "{{\"id\":{},\"kind\":\"{}\",\"seq\":{},\"target_world\":{},\"final_world\":{},\"generation\":{},\"completed\":{},\"waves\":{},\"transfers\":{},{},\"total_ms\":{:.3}}}",
            self.id,
            self.kind.name(),
            self.seq.map(|s| s.to_string()).unwrap_or_else(|| "null".into()),
            self.target_world,
            self.final_world,
            self.generation,
            self.completed,
            self.waves,
            self.transfers,
            phases.join(","),
            self.total_us() as f64 / 1000.0,
        )
    }
}

#[derive(Debug, Default)]
struct TraceState {
    traces: Vec<AdjustmentTrace>,
    /// Index of the in-flight trace, if any.
    active: Option<usize>,
}

/// Records adjustment spans. Shared (via `SharedControl`) by the
/// controller, every AM incarnation, and the watchdog, so a replacement
/// AM *continues* the in-flight trace: `phase_start` is first-wins,
/// `phase_end` is max-wins, and `complete` is one-shot.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    state: Mutex<TraceState>,
}

impl TraceRecorder {
    /// Opens a new trace (unless one is already in flight with the same
    /// `seq`, as happens when a failover replays the request). Returns the
    /// trace id and whether it was freshly opened.
    pub fn begin(
        &self,
        kind: TraceKind,
        seq: Option<u64>,
        target_world: u32,
        at_us: u64,
    ) -> (u64, bool) {
        let mut st = self.state.lock();
        if let Some(i) = st.active {
            let t = &st.traces[i];
            if seq.is_some() && t.seq == seq {
                return (t.id, false); // failover replay of the same op
            }
            if seq.is_none() || t.seq.is_none() {
                // An adjustment is already being traced; fold the new
                // request into it rather than orphaning a span.
                return (t.id, false);
            }
            return (t.id, false);
        }
        let id = st.traces.len() as u64 + 1;
        let mut trace = AdjustmentTrace::new(id, kind, seq, target_world);
        trace.phases[AdjustmentPhase::Request.index()] = Some(PhaseWindow {
            start_us: at_us,
            end_us: at_us,
        });
        st.traces.push(trace);
        st.active = Some(st.traces.len() - 1);
        (id, true)
    }

    /// The id of the in-flight trace, if any.
    pub fn active_id(&self) -> Option<u64> {
        let st = self.state.lock();
        st.active.map(|i| st.traces[i].id)
    }

    /// Opens `phase` at `at_us` (first-wins; replays keep the original
    /// timestamp). Returns the trace id when a trace is in flight.
    pub fn phase_start(&self, phase: AdjustmentPhase, at_us: u64) -> Option<u64> {
        let mut st = self.state.lock();
        let i = st.active?;
        let t = &mut st.traces[i];
        let slot = &mut t.phases[phase.index()];
        if slot.is_none() {
            *slot = Some(PhaseWindow {
                start_us: at_us,
                end_us: at_us,
            });
        }
        Some(t.id)
    }

    /// Closes `phase` at `at_us` (max-wins; opens the phase zero-length if
    /// it never started, so no end is orphaned). Returns the trace id.
    pub fn phase_end(&self, phase: AdjustmentPhase, at_us: u64) -> Option<u64> {
        let mut st = self.state.lock();
        let i = st.active?;
        let t = &mut st.traces[i];
        let slot = &mut t.phases[phase.index()];
        match slot {
            Some(w) => w.end_us = w.end_us.max(at_us),
            None => {
                *slot = Some(PhaseWindow {
                    start_us: at_us,
                    end_us: at_us,
                })
            }
        }
        Some(t.id)
    }

    /// Extends the report phase to cover a readiness report arriving at
    /// `at_us` (joiners may report before the AM even sees the request —
    /// the window clamps rather than going backwards).
    pub fn note_report(&self, at_us: u64) {
        let mut st = self.state.lock();
        let Some(i) = st.active else { return };
        let t = &mut st.traces[i];
        let slot = &mut t.phases[AdjustmentPhase::Report.index()];
        match slot {
            Some(w) => w.end_us = w.end_us.max(at_us),
            None => {
                *slot = Some(PhaseWindow {
                    start_us: at_us,
                    end_us: at_us,
                })
            }
        }
    }

    /// Records the replication schedule shape on the in-flight trace.
    pub fn set_plan(&self, waves: u32, transfers: u32) {
        let mut st = self.state.lock();
        let Some(i) = st.active else { return };
        let t = &mut st.traces[i];
        t.waves = t.waves.max(waves);
        t.transfers = t.transfers.max(transfers);
    }

    /// Completes the in-flight trace: closes every still-open phase at
    /// `at_us`, fills the outcome, and clears the active slot. One-shot —
    /// a second call (failover replay) is a no-op. Returns the trace id.
    pub fn complete(&self, generation: u64, world: u32, at_us: u64) -> Option<u64> {
        let mut st = self.state.lock();
        let i = st.active.take()?;
        let t = &mut st.traces[i];
        for phase in AdjustmentPhase::ALL {
            let slot = &mut t.phases[phase.index()];
            match slot {
                Some(w) => w.end_us = w.end_us.max(w.start_us),
                None => {
                    *slot = Some(PhaseWindow {
                        start_us: at_us,
                        end_us: at_us,
                    })
                }
            }
        }
        if let Some(w) = t.phases[AdjustmentPhase::Adjust.index()].as_mut() {
            w.end_us = at_us;
        }
        t.completed = true;
        t.generation = generation;
        t.final_world = world;
        Some(t.id)
    }

    /// Copies of every trace recorded so far (completed and in-flight).
    pub fn all(&self) -> Vec<AdjustmentTrace> {
        self.state.lock().traces.clone()
    }
}

/// The runtime's observability bundle: one journal, one trace recorder,
/// one metrics registry, and the registry-backed [`RtMetrics`] handles.
///
/// Shared by the controller handle, every AM incarnation, the watchdog,
/// and all workers (through `SharedControl` and the bus).
#[derive(Debug)]
pub struct Obs {
    /// The structured event journal.
    pub journal: Arc<EventJournal>,
    /// Span-style adjustment traces.
    pub traces: Arc<TraceRecorder>,
    /// Named counters/gauges/histograms.
    pub registry: MetricsRegistry,
    /// Reliable-messaging counters, registered in `registry` under
    /// `rt.*` names.
    pub rt: Arc<RtMetrics>,
}

impl Obs {
    /// Builds the bundle with the given journal ring capacity and extra
    /// sinks, on a private real-time epoch.
    pub fn new(ring_capacity: usize, sinks: Vec<Arc<dyn EventSink>>) -> Arc<Self> {
        Obs::with_time(ring_capacity, sinks, TimeSource::real())
    }

    /// Builds the bundle on the runtime's clock (the builder's entry
    /// point): journal timestamps, trace phase windows, and metrics all
    /// share one time axis.
    pub fn with_time(
        ring_capacity: usize,
        sinks: Vec<Arc<dyn EventSink>>,
        time: TimeSource,
    ) -> Arc<Self> {
        let registry = MetricsRegistry::default();
        let rt = Arc::new(RtMetrics::registered(&registry));
        Arc::new(Obs {
            journal: Arc::new(EventJournal::with_time(ring_capacity, sinks, time)),
            traces: Arc::new(TraceRecorder::default()),
            registry,
            rt,
        })
    }

    /// A default bundle (for tests and standalone components).
    pub fn new_default() -> Arc<Self> {
        Obs::new(DEFAULT_RING_CAPACITY, Vec::new())
    }

    /// Point-in-time snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Everything as one JSON object: registry snapshot, journal summary,
    /// and every adjustment trace (consumed by `crates/bench`).
    pub fn to_json(&self) -> String {
        let traces: Vec<String> = self.all_traces().iter().map(|t| t.to_json()).collect();
        format!(
            "{{\"metrics\":{},\"journal\":{},\"traces\":[{}]}}",
            self.metrics().to_json(),
            self.journal.summary().to_json(),
            traces.join(",")
        )
    }

    fn all_traces(&self) -> Vec<AdjustmentTrace> {
        self.traces.all()
    }
}

/// Renders the per-phase adjustment-latency breakdown (§VI style) from
/// recorded traces — the table `trace_report()` returns and
/// `examples/fault_tolerance.rs` prints.
///
/// Columns are milliseconds per pipeline phase; `total` is first phase
/// start to last phase end, directly comparable against the end-to-end
/// adjustment costs of the S&R and Litz baselines in `elan-baselines`.
pub fn render_trace_report(traces: &[AdjustmentTrace]) -> String {
    let mut out =
        String::from("adjustment latency breakdown (from the event journal; ms per phase)\n");
    out.push_str(&format!(
        "{:<4} {:<17} {:<7} {:>9} {:>9} {:>11} {:>10} {:>8} {:>9}\n",
        "#", "kind", "world", "request", "report", "coordinate", "replicate", "adjust", "total"
    ));
    for t in traces {
        let world = if t.completed {
            format!("->{}", t.final_world)
        } else {
            format!("->{}?", t.target_world)
        };
        out.push_str(&format!(
            "{:<4} {:<17} {:<7} {:>9.2} {:>9.2} {:>11.2} {:>10.2} {:>8.2} {:>9.2}\n",
            t.id,
            t.kind.name(),
            world,
            t.phase_us(AdjustmentPhase::Request) as f64 / 1000.0,
            t.phase_us(AdjustmentPhase::Report) as f64 / 1000.0,
            t.phase_us(AdjustmentPhase::Coordinate) as f64 / 1000.0,
            t.phase_us(AdjustmentPhase::Replicate) as f64 / 1000.0,
            t.phase_us(AdjustmentPhase::Adjust) as f64 / 1000.0,
            t.total_us() as f64 / 1000.0,
        ));
    }
    if traces.is_empty() {
        out.push_str("(no adjustments recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sink_overwrites_oldest() {
        let sink = RingBufferSink::new(2);
        let journal = EventJournal::new(2, Vec::new());
        for epoch in 0..3 {
            journal.emit(EventKind::AmElected { epoch });
        }
        let events = journal.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].kind, EventKind::AmElected { epoch: 1 }));
        assert_eq!(journal.summary().total, 3);
        assert_eq!(journal.summary().overwritten, 1);
        drop(sink);
    }

    #[test]
    fn journal_seq_is_gapless_and_counts_by_kind() {
        let journal = EventJournal::default();
        journal.emit(EventKind::WorkerReported {
            worker: WorkerId(1),
        });
        journal.emit(EventKind::WorkerReported {
            worker: WorkerId(2),
        });
        journal.emit(EventKind::AmElected { epoch: 1 });
        let events = journal.events();
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let summary = journal.summary();
        assert_eq!(summary.count("worker_reported"), 2);
        assert_eq!(summary.count("am_elected"), 1);
        assert_eq!(summary.count("dead_letter"), 0);
    }

    #[test]
    fn extra_sinks_see_every_event() {
        let tee = Arc::new(RingBufferSink::new(8));
        let journal = EventJournal::new(4, vec![tee.clone() as Arc<dyn EventSink>]);
        journal.emit(EventKind::AmElected { epoch: 9 });
        assert_eq!(tee.events().len(), 1);
    }

    #[test]
    fn trace_lifecycle_produces_well_formed_spans() {
        let tr = TraceRecorder::default();
        let (id, fresh) = tr.begin(TraceKind::ScaleOut, Some(1), 4, 10);
        assert!(fresh);
        tr.phase_end(AdjustmentPhase::Request, 20);
        tr.phase_start(AdjustmentPhase::Report, 20);
        tr.note_report(35);
        tr.phase_start(AdjustmentPhase::Coordinate, 40);
        tr.phase_start(AdjustmentPhase::Replicate, 45);
        tr.set_plan(2, 2);
        tr.phase_end(AdjustmentPhase::Replicate, 60);
        tr.phase_end(AdjustmentPhase::Coordinate, 62);
        tr.phase_start(AdjustmentPhase::Adjust, 62);
        assert_eq!(tr.complete(1, 4, 70), Some(id));
        let traces = tr.all();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert!(t.completed);
        assert!(t.is_well_formed(), "trace not well-formed: {t:?}");
        assert_eq!(t.phase_us(AdjustmentPhase::Report), 15);
        assert_eq!(t.total_us(), 60);
        assert_eq!(t.waves, 2);
    }

    #[test]
    fn begin_is_idempotent_across_failover() {
        let tr = TraceRecorder::default();
        let (id, fresh) = tr.begin(TraceKind::ScaleOut, Some(7), 4, 5);
        assert!(fresh);
        // The replacement AM replays the same op: no new trace.
        let (id2, fresh2) = tr.begin(TraceKind::ScaleOut, Some(7), 4, 99);
        assert_eq!(id, id2);
        assert!(!fresh2);
        // phase_start replays keep the original timestamp.
        tr.phase_start(AdjustmentPhase::Report, 10);
        tr.phase_start(AdjustmentPhase::Report, 50);
        tr.complete(1, 4, 60);
        let t = &tr.all()[0];
        assert_eq!(t.phase(AdjustmentPhase::Report).unwrap().start_us, 10);
        // complete is one-shot.
        assert_eq!(tr.complete(2, 8, 99), None);
    }

    #[test]
    fn early_reports_clamp_instead_of_orphaning() {
        let tr = TraceRecorder::default();
        tr.begin(TraceKind::ScaleOut, Some(1), 3, 100);
        // A joiner reports before the AM saw AdjustTo.
        tr.note_report(90);
        tr.phase_start(AdjustmentPhase::Report, 110); // first-wins loses to 90
        let t = &tr.all()[0];
        let w = t.phase(AdjustmentPhase::Report).unwrap();
        assert!(w.start_us <= w.end_us);
    }

    #[test]
    fn incomplete_trace_renders_with_question_mark() {
        let tr = TraceRecorder::default();
        tr.begin(TraceKind::Migrate, Some(3), 2, 0);
        let report = render_trace_report(&tr.all());
        assert!(report.contains("migrate"));
        assert!(report.contains("->2?"));
        assert!(render_trace_report(&[]).contains("no adjustments"));
    }

    #[test]
    fn obs_json_export_is_wellformed() {
        let obs = Obs::new_default();
        obs.journal.emit(EventKind::AmElected { epoch: 1 });
        obs.rt.resends.inc();
        obs.traces.begin(TraceKind::ScaleOut, Some(1), 2, 0);
        obs.traces.complete(1, 2, 10);
        let json = obs.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"traces\""));
        assert!(json.contains("\"request_ms\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn failure_driven_begin_does_not_shadow_active_trace() {
        let tr = TraceRecorder::default();
        let (id, _) = tr.begin(TraceKind::ScaleOut, Some(1), 4, 0);
        let (id2, fresh) = tr.begin(TraceKind::FailureScaleIn, None, 3, 5);
        assert_eq!(id, id2);
        assert!(!fresh);
        tr.complete(1, 3, 10);
        // Now a failure-driven op can open its own trace.
        let (id3, fresh3) = tr.begin(TraceKind::FailureScaleIn, None, 2, 20);
        assert!(fresh3);
        assert_eq!(id3, 2);
    }
}
