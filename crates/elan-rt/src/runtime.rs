//! The elastic runtime: the public handle plus the AM service thread.
//!
//! [`ElasticRuntime`] is what a framework integration would hold: it
//! launches the job, requests scale-out/scale-in/migration, and shuts the
//! job down — all while worker threads keep training. The AM thread runs
//! the same `ApplicationMaster` state
//! machine as the simulator and orchestrates the 5-step adjustment
//! procedure over the bus, using the topology planner to pick replication
//! sources.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::Mutex;

use elan_core::elasticity::AdjustmentRequest;
use elan_core::state::WorkerId;
use elan_core::ApplicationMaster;
use elan_topology::{ClusterSpec, GpuId, ReplicationPlanner, Topology};

use crate::bus::{Bus, Endpoint, EndpointId, RtMsg};
use crate::comm::CommGroup;
use crate::worker::{run_worker, Telemetry, WorkerConfig, WorkerRole, WorkerView};

/// Configuration of a live elastic job.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Workers at launch.
    pub initial_workers: u32,
    /// Parameter-buffer length per worker.
    pub param_elems: usize,
    /// Iterations between coordinations.
    pub coordination_interval: u64,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Samples consumed per iteration.
    pub total_batch: u32,
}

impl RuntimeConfig {
    /// A small, fast configuration for tests and examples.
    pub fn small(initial_workers: u32) -> Self {
        RuntimeConfig {
            initial_workers,
            param_elems: 1024,
            coordination_interval: 5,
            learning_rate: 0.05,
            total_batch: 128,
        }
    }
}

/// A live checkpoint: the full training state of the job at a
/// coordination boundary (rank 0's copy — identical everywhere by the
/// data-parallel invariant).
#[derive(Debug, Clone)]
pub struct CheckpointSnapshot {
    /// Model parameters.
    pub params: Arc<Vec<f32>>,
    /// Optimizer (momentum) state.
    pub momentum: Arc<Vec<f32>>,
    /// Iteration the snapshot was taken at.
    pub iteration: u64,
    /// Serial data cursor.
    pub data_cursor: u64,
}

/// Final state of a finished job.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Workers in the job when it stopped.
    pub final_world_size: u32,
    /// Last telemetry of every worker that ever participated.
    pub workers: BTreeMap<WorkerId, WorkerView>,
    /// Total adjustments the job went through.
    pub adjustments: u64,
}

impl ShutdownReport {
    /// True when every worker that reached the final iteration holds
    /// bit-identical parameters — the data-parallel invariant.
    pub fn states_consistent(&self) -> bool {
        let max_iter = self
            .workers
            .values()
            .map(|v| v.iteration)
            .max()
            .unwrap_or(0);
        let checksums: BTreeSet<u64> = self
            .workers
            .values()
            .filter(|v| v.iteration == max_iter)
            .map(|v| v.params_checksum)
            .collect();
        checksums.len() == 1
    }
}

/// The live elastic-training job handle.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct ElasticRuntime {
    cfg: RuntimeConfig,
    bus: Bus,
    controller: Endpoint,
    comm: Arc<CommGroup>,
    telemetry: Telemetry,
    members: Vec<WorkerId>,
    next_worker: u32,
    adjustments: u64,
    am_handle: Option<JoinHandle<()>>,
    worker_handles: HashMap<WorkerId, JoinHandle<()>>,
}

impl std::fmt::Debug for ElasticRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticRuntime")
            .field("members", &self.members)
            .field("adjustments", &self.adjustments)
            .finish()
    }
}

impl ElasticRuntime {
    /// Launches the job with `cfg.initial_workers` founding workers.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero workers or empty parameters.
    pub fn start(cfg: RuntimeConfig) -> Self {
        Self::launch(cfg, None)
    }

    /// Restarts a job from a [`CheckpointSnapshot`] — the live
    /// Shutdown-&-Restart path. Training resumes bit-exactly where the
    /// snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's parameter length differs from the
    /// configuration.
    pub fn start_from(cfg: RuntimeConfig, snapshot: &CheckpointSnapshot) -> Self {
        assert_eq!(
            snapshot.params.len(),
            cfg.param_elems,
            "snapshot does not match the configuration"
        );
        Self::launch(cfg, Some(snapshot.clone()))
    }

    fn launch(cfg: RuntimeConfig, restore: Option<CheckpointSnapshot>) -> Self {
        assert!(cfg.initial_workers > 0, "need at least one worker");
        assert!(cfg.param_elems > 0, "parameters must be non-empty");
        assert!(cfg.coordination_interval > 0, "interval must be positive");

        let bus = Bus::new();
        let controller = bus.register(EndpointId::Controller);
        let members: Vec<WorkerId> = (0..cfg.initial_workers).map(WorkerId).collect();
        let comm = Arc::new(CommGroup::new(members.iter().copied(), cfg.param_elems));
        let telemetry: Telemetry = Arc::new(Mutex::new(HashMap::new()));

        let am_endpoint = bus.register(EndpointId::Am);
        let am_handle = {
            let bus = bus.clone();
            let comm = Arc::clone(&comm);
            let members = members.clone();
            thread::Builder::new()
                .name("elan-am".into())
                .spawn(move || am_thread(bus, am_endpoint, comm, members))
                .expect("spawn AM thread")
        };

        let mut rt = ElasticRuntime {
            cfg,
            bus,
            controller,
            comm,
            telemetry,
            members: members.clone(),
            next_worker: cfg.initial_workers,
            adjustments: 0,
            am_handle: Some(am_handle),
            worker_handles: HashMap::new(),
        };
        for &w in &members {
            let role = match &restore {
                Some(s) => WorkerRole::Restored {
                    params: Arc::clone(&s.params),
                    momentum: Arc::clone(&s.momentum),
                    iteration: s.iteration,
                    data_cursor: s.data_cursor,
                },
                None => WorkerRole::Founding,
            };
            rt.spawn_worker(w, role);
        }
        rt
    }

    /// Snapshots the full training state at the next coordination
    /// boundary (rank 0 streams its buffers to the controller) — the
    /// checkpoint half of Shutdown-&-Restart, done live.
    pub fn checkpoint(&mut self) -> CheckpointSnapshot {
        self.bus.send(EndpointId::Am, RtMsg::Checkpoint);
        loop {
            if let RtMsg::StateTransfer {
                params,
                momentum,
                iteration,
                data_cursor,
            } = self.controller.recv()
            {
                return CheckpointSnapshot {
                    params,
                    momentum,
                    iteration,
                    data_cursor,
                };
            }
        }
    }

    fn spawn_worker(&mut self, id: WorkerId, role: WorkerRole) {
        let endpoint = self.bus.register(EndpointId::Worker(id));
        let cfg = WorkerConfig {
            id,
            param_elems: self.cfg.param_elems,
            coordination_interval: self.cfg.coordination_interval,
            learning_rate: self.cfg.learning_rate,
            total_batch: self.cfg.total_batch,
        };
        let bus = self.bus.clone();
        let comm = Arc::clone(&self.comm);
        let telemetry = Arc::clone(&self.telemetry);
        let handle = thread::Builder::new()
            .name(format!("elan-{id}"))
            .spawn(move || run_worker(cfg, bus, endpoint, comm, telemetry, role))
            .expect("spawn worker thread");
        self.worker_handles.insert(id, handle);
    }

    /// Current members.
    pub fn members(&self) -> &[WorkerId] {
        &self.members
    }

    /// A snapshot of every worker's latest telemetry.
    pub fn snapshot(&self) -> BTreeMap<WorkerId, WorkerView> {
        self.telemetry
            .lock()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Blocks until every live member has completed `iteration`.
    pub fn run_until_iteration(&self, iteration: u64) {
        loop {
            {
                let t = self.telemetry.lock();
                let live: Vec<_> = self
                    .members
                    .iter()
                    .filter_map(|w| t.get(w))
                    .filter(|v| v.alive)
                    .collect();
                if !live.is_empty() && live.iter().all(|v| v.iteration >= iteration) {
                    return;
                }
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    fn adjust_to(&mut self, target: Vec<WorkerId>) {
        let joining: Vec<WorkerId> = target
            .iter()
            .copied()
            .filter(|w| !self.members.contains(w))
            .collect();
        let leaving: Vec<WorkerId> = self
            .members
            .iter()
            .copied()
            .filter(|w| !target.contains(w))
            .collect();
        for &w in &joining {
            self.spawn_worker(w, WorkerRole::Joining);
        }
        self.bus.send(
            EndpointId::Am,
            RtMsg::AdjustTo {
                target: target.clone(),
            },
        );
        // Wait for the AM's acknowledgement of a completed adjustment.
        loop {
            if matches!(self.controller.recv(), RtMsg::Ack) {
                break;
            }
        }
        // Reap leavers.
        for w in leaving {
            if let Some(h) = self.worker_handles.remove(&w) {
                h.join().expect("worker thread exits cleanly");
            }
            self.bus.unregister(EndpointId::Worker(w));
        }
        self.members = target;
        self.adjustments += 1;
    }

    /// Adds `n` workers (scale-out). Blocks until the adjustment is done;
    /// existing workers keep training meanwhile.
    pub fn scale_out(&mut self, n: u32) {
        assert!(n > 0, "scale-out of zero workers");
        let mut target = self.members.clone();
        for _ in 0..n {
            target.push(WorkerId(self.next_worker));
            self.next_worker += 1;
        }
        self.adjust_to(target);
    }

    /// Removes the last `n` workers (scale-in).
    ///
    /// # Panics
    ///
    /// Panics if `n` would leave no workers.
    pub fn scale_in(&mut self, n: u32) {
        assert!(
            (n as usize) < self.members.len(),
            "scale-in would remove every worker"
        );
        let target = self.members[..self.members.len() - n as usize].to_vec();
        self.adjust_to(target);
    }

    /// Migrates the job onto an entirely fresh set of workers of the same
    /// size.
    pub fn migrate(&mut self) {
        let n = self.members.len() as u32;
        let mut target = Vec::with_capacity(n as usize);
        for _ in 0..n {
            target.push(WorkerId(self.next_worker));
            self.next_worker += 1;
        }
        self.adjust_to(target);
    }

    /// Stops the job at the next coordination boundary and returns the
    /// final report.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.bus.send(EndpointId::Am, RtMsg::Stop);
        loop {
            if matches!(self.controller.recv(), RtMsg::Ack) {
                break;
            }
        }
        for (_, h) in self.worker_handles.drain() {
            h.join().expect("worker thread exits cleanly");
        }
        if let Some(h) = self.am_handle.take() {
            h.join().expect("AM thread exits cleanly");
        }
        ShutdownReport {
            final_world_size: self.members.len() as u32,
            workers: self
                .telemetry
                .lock()
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            adjustments: self.adjustments,
        }
    }
}

/// A topology big enough to place any worker id we might allocate.
fn planning_topology() -> Topology {
    ClusterSpec::new(64, 2, 2, 2).build() // 512 GPU slots
}

fn am_thread(bus: Bus, endpoint: Endpoint, comm: Arc<CommGroup>, mut members: Vec<WorkerId>) {
    let mut am = ApplicationMaster::new("rt-job");
    am.set_members(members.iter().map(|w| GpuId(w.0)).collect());
    let topology = planning_topology();

    let mut pending_target: Option<Vec<WorkerId>> = None;
    let mut reported: BTreeSet<WorkerId> = BTreeSet::new();
    let mut coordinated: BTreeSet<WorkerId> = BTreeSet::new();
    let mut stopping = false;
    let mut checkpoint_pending = false;

    loop {
        match endpoint.recv() {
            RtMsg::Checkpoint => checkpoint_pending = true,
            RtMsg::AdjustTo { target } => {
                let request = AdjustmentRequest::new(
                    members.iter().map(|w| GpuId(w.0)).collect(),
                    target.iter().map(|w| GpuId(w.0)).collect(),
                )
                .expect("controller sends valid adjustments");
                am.request_adjustment(request)
                    .expect("controller serializes adjustments");
                pending_target = Some(target);
            }
            RtMsg::Stop => stopping = true,
            RtMsg::Report { worker } => {
                let _ = am.report(GpuId(worker.0));
                reported.insert(worker);
            }
            RtMsg::Coordinate { worker, .. } => {
                coordinated.insert(worker);
                if coordinated.len() < members.len() {
                    continue;
                }
                // A full coordination boundary: everyone is parked.
                coordinated.clear();
                if checkpoint_pending {
                    checkpoint_pending = false;
                    if let Some(&first) = members.first() {
                        bus.send(EndpointId::Worker(first), RtMsg::CheckpointOrder);
                        loop {
                            match endpoint.recv() {
                                RtMsg::TransferDone { .. } => break,
                                RtMsg::Report { worker } => {
                                    let _ = am.report(GpuId(worker.0));
                                    reported.insert(worker);
                                }
                                RtMsg::AdjustTo { target } => {
                                    // Queue it; handled at a later boundary.
                                    let request = AdjustmentRequest::new(
                                        members.iter().map(|w| GpuId(w.0)).collect(),
                                        target.iter().map(|w| GpuId(w.0)).collect(),
                                    )
                                    .expect("controller sends valid adjustments");
                                    am.request_adjustment(request)
                                        .expect("controller serializes adjustments");
                                    pending_target = Some(target);
                                }
                                RtMsg::Stop => stopping = true,
                                RtMsg::Checkpoint => checkpoint_pending = true,
                                _ => {}
                            }
                        }
                    }
                }
                if stopping {
                    for &w in &members {
                        bus.send(EndpointId::Worker(w), RtMsg::Leave);
                    }
                    bus.send(EndpointId::Controller, RtMsg::Ack);
                    return;
                }
                let ready = pending_target.as_ref().is_some_and(|t| {
                    t.iter()
                        .filter(|w| !members.contains(w))
                        .all(|w| reported.contains(w))
                });
                if !ready {
                    for &w in &members {
                        bus.send(EndpointId::Worker(w), RtMsg::Proceed);
                    }
                    continue;
                }
                let target = pending_target.take().expect("checked above");
                execute_adjustment(&bus, &endpoint, &comm, &topology, &mut am, &members, &target, &mut reported);
                members = target;
            }
            _ => {}
        }
    }
}

/// Steps ④ and ⑤ of the adjustment procedure, orchestrated over the bus.
#[allow(clippy::too_many_arguments)]
fn execute_adjustment(
    bus: &Bus,
    endpoint: &Endpoint,
    comm: &Arc<CommGroup>,
    topology: &Topology,
    am: &mut ApplicationMaster,
    members: &[WorkerId],
    target: &[WorkerId],
    reported: &mut BTreeSet<WorkerId>,
) {
    // Drive the state machine: the coordination that begins adjustment.
    let _ = am.coordinate();

    let joining: Vec<WorkerId> = target
        .iter()
        .copied()
        .filter(|w| !members.contains(w))
        .collect();
    let leaving: Vec<WorkerId> = members
        .iter()
        .copied()
        .filter(|w| !target.contains(w))
        .collect();

    // Step ④: concurrent IO-free replication along planner sources.
    if !joining.is_empty() {
        let sources: Vec<GpuId> = members.iter().map(|w| GpuId(w.0)).collect();
        let dests: Vec<GpuId> = joining.iter().map(|w| GpuId(w.0)).collect();
        let plan = ReplicationPlanner::new(topology)
            .plan(&sources, &dests)
            .expect("valid placements");
        let mut outstanding = 0u32;
        for t in plan.transfers() {
            bus.send(
                EndpointId::Worker(WorkerId(t.src.0)),
                RtMsg::TransferOrder {
                    dst: WorkerId(t.dst.0),
                },
            );
            outstanding += 1;
        }
        while outstanding > 0 {
            match endpoint.recv() {
                RtMsg::TransferDone { .. } => outstanding -= 1,
                RtMsg::Report { worker } => {
                    let _ = am.report(GpuId(worker.0));
                    reported.insert(worker);
                }
                _ => {}
            }
        }
    }

    // Step ⑤: communication-group reconstruction, then resume/leave.
    let generation = comm.reconfigure(target.iter().copied());
    for &w in &leaving {
        bus.send(EndpointId::Worker(w), RtMsg::Leave);
    }
    for &w in target {
        bus.send(EndpointId::Worker(w), RtMsg::Resume { generation });
    }
    am.adjustment_complete().expect("adjustment was executing");
    reported.clear();
    bus.send(EndpointId::Controller, RtMsg::Ack);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_training_is_consistent() {
        let mut rt = ElasticRuntime::start(RuntimeConfig::small(3));
        rt.run_until_iteration(25);
        let _ = &mut rt;
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 3);
        assert!(report.states_consistent());
        assert!(report.workers.values().all(|v| v.iteration >= 25));
    }

    #[test]
    fn scale_out_preserves_state() {
        let mut rt = ElasticRuntime::start(RuntimeConfig::small(2));
        rt.run_until_iteration(10);
        rt.scale_out(2);
        assert_eq!(rt.members().len(), 4);
        rt.run_until_iteration(30);
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 4);
        assert!(report.states_consistent(), "joiners diverged: {report:?}");
        assert_eq!(report.adjustments, 1);
    }

    #[test]
    fn scale_in_releases_workers() {
        let mut rt = ElasticRuntime::start(RuntimeConfig::small(4));
        rt.run_until_iteration(10);
        rt.scale_in(2);
        assert_eq!(rt.members().len(), 2);
        rt.run_until_iteration(25);
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 2);
        assert!(report.states_consistent());
        // The removed workers stopped early but left cleanly.
        let stopped: Vec<_> = report.workers.values().filter(|v| !v.alive).collect();
        assert_eq!(stopped.len(), 4); // 2 scaled-in + 2 shutdown... all dead
    }

    #[test]
    fn migration_moves_to_fresh_workers() {
        let mut rt = ElasticRuntime::start(RuntimeConfig::small(2));
        rt.run_until_iteration(10);
        let before: Vec<WorkerId> = rt.members().to_vec();
        rt.migrate();
        let after: Vec<WorkerId> = rt.members().to_vec();
        assert!(before.iter().all(|w| !after.contains(w)));
        rt.run_until_iteration(25);
        let report = rt.shutdown();
        assert!(report.states_consistent());
    }

    #[test]
    fn repeated_adjustments_compose() {
        let mut rt = ElasticRuntime::start(RuntimeConfig::small(2));
        rt.run_until_iteration(5);
        rt.scale_out(2);
        rt.run_until_iteration(15);
        rt.scale_in(1);
        rt.run_until_iteration(25);
        rt.scale_out(3);
        rt.run_until_iteration(40);
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 6);
        assert_eq!(report.adjustments, 3);
        assert!(report.states_consistent());
    }

    #[test]
    fn checkpoint_restore_is_bit_exact() {
        use crate::worker::simulate_training;
        let cfg = RuntimeConfig::small(3);
        let mut a = ElasticRuntime::start(cfg);
        a.run_until_iteration(20);
        let cp = a.checkpoint();
        let _ = a.shutdown();

        // The live state matches a single-threaded reference replay.
        let (expect_params, expect_momentum, expect_cursor) = simulate_training(
            3,
            cp.iteration,
            cfg.param_elems,
            cfg.learning_rate,
            cfg.total_batch,
        );
        assert_eq!(*cp.params, expect_params, "live params diverged");
        assert_eq!(*cp.momentum, expect_momentum, "live momentum diverged");
        assert_eq!(cp.data_cursor, expect_cursor);

        // A restored job continues bit-exactly.
        let mut b = ElasticRuntime::start_from(cfg, &cp);
        b.run_until_iteration(cp.iteration + 10);
        let cp2 = b.checkpoint();
        let (expect2, _, _) = simulate_training(
            3,
            cp2.iteration,
            cfg.param_elems,
            cfg.learning_rate,
            cfg.total_batch,
        );
        assert_eq!(*cp2.params, expect2, "restored run diverged");
        let report = b.shutdown();
        assert!(report.states_consistent());
    }

    #[test]
    fn live_training_matches_reference_replay() {
        use crate::worker::simulate_training;
        // Even without any checkpointing, the whole multi-threaded
        // pipeline (gradients, deterministic allreduce, optimizer) is
        // bit-identical to the sequential reference.
        let cfg = RuntimeConfig::small(4);
        let mut rt = ElasticRuntime::start(cfg);
        rt.run_until_iteration(15);
        let cp = rt.checkpoint();
        let _ = rt.shutdown();
        let (expect, _, _) = simulate_training(
            4,
            cp.iteration,
            cfg.param_elems,
            cfg.learning_rate,
            cfg.total_batch,
        );
        assert_eq!(*cp.params, expect);
    }

    #[test]
    fn data_cursor_replicates_exactly() {
        let mut rt = ElasticRuntime::start(RuntimeConfig::small(2));
        rt.run_until_iteration(10);
        rt.scale_out(1);
        rt.run_until_iteration(20);
        let snap = rt.snapshot();
        let report = rt.shutdown();
        assert!(report.states_consistent());
        // All live workers agree on the serial cursor: iteration * batch.
        for v in snap.values().filter(|v| v.alive) {
            assert_eq!(v.data_cursor, v.iteration * 128);
        }
    }
}
