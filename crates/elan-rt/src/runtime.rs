//! The elastic runtime: the public handle, the AM service thread, the
//! lease watchdog, and the failure detector.
//!
//! [`ElasticRuntime`] is what a framework integration would hold: it
//! launches the job, requests scale-out/scale-in/migration, and shuts the
//! job down — all while worker threads keep training. The AM thread
//! orchestrates the 5-step adjustment procedure over the bus, using the
//! topology planner to pick replication sources.
//!
//! Fault tolerance (§V-D) is layered on top:
//!
//! - every control message rides a [`ReliableEndpoint`] (ids, acks,
//!   resend-on-timeout, bounded dedup), so the job survives a lossy,
//!   duplicating, reordering bus ([`Bus::builder`]);
//! - the AM persists its durable record ([`AmDurable`]) to the shared
//!   [`SharedControl`] store *before* every externally visible action and
//!   proves liveness by refreshing a lease; a watchdog thread elects a
//!   replacement AM at a higher epoch when the lease lapses, and the
//!   replacement recovers the in-flight adjustment from the store;
//! - workers heartbeat the AM (even from inside a blocked allreduce); the
//!   AM turns missed heartbeats into a failure-driven scale-in: evict from
//!   the collective, rebuild the communication group at the next boundary,
//!   and keep training on the survivors.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::Mutex;

use elan_core::lease::LeaseId;
use elan_core::obs::{AdjustmentPhase, MetricsSnapshot};
use elan_core::protocol::EpochPhase;
use elan_core::state::WorkerId;
use elan_core::ElanError;
use elan_sim::SimDuration;
use elan_topology::{ClusterSpec, GpuId, ReplicationPlanner, Topology};

use crate::bus::{Bus, Endpoint, EndpointId, RtMsg};
use crate::chaos::{ChaosPolicy, ChaosStats, PartitionWindow};
use crate::comm::{CommGroup, CommTopology, TuningProfile};
use crate::epoch::{EpochCmd, EpochConfig, EpochMachine};
use crate::liveness::{AmDurable, AmPhase, CrashPoint, HeartbeatMonitor, PendingOp, SharedControl};
use crate::obs::{
    render_trace_report, AdjustmentTrace, Event, EventJournal, EventKind, EventSink,
    JournalSummary, Obs, TraceKind, DEFAULT_RING_CAPACITY,
};
use crate::reliable::{
    ReliableEndpoint, RtMetrics, RtMetricsSnapshot, REMOTE_FIRST_CONTACT_GRACE_MS,
};
use crate::time::{std_to_sim, TimeSource};
use crate::transport::Transport;
use crate::worker::{
    run_worker, SnapshotAssembly, Telemetry, WorkerConfig, WorkerRole, WorkerView,
};

/// High bit of the AM's message-id owner: replacement AMs get fresh
/// sender streams (`AM_OWNER_FLAG | epoch`), so their messages are never
/// mistaken for their predecessor's at any receiver's dedup filter.
const AM_OWNER_FLAG: u32 = 1 << 31;

/// How often the controller re-issues an unacknowledged operation at the
/// application level (covers AM failovers that swallowed the original).
const OP_RESEND_EVERY: SimDuration = SimDuration::from_millis(400);

/// Configuration of a live elastic job.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Workers at launch.
    pub initial_workers: u32,
    /// Parameter-buffer length per worker.
    pub param_elems: usize,
    /// Iterations between coordinations.
    pub coordination_interval: u64,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Samples consumed per iteration.
    pub total_batch: u32,
    /// Worker liveness-beacon period (ms).
    pub hb_period_ms: u64,
    /// Silence after which the AM declares a worker dead (ms).
    pub hb_timeout_ms: u64,
    /// AM lease TTL (ms); the watchdog elects a replacement past this.
    pub lease_ttl_ms: u64,
    /// Watchdog poll period (ms).
    pub watchdog_poll_ms: u64,
    /// Reliable-messaging ack timeout before a resend (ms).
    pub retry_timeout_ms: u64,
    /// AM-side send attempts before presuming the peer dead.
    pub retry_max_attempts: u32,
    /// Control-loop receive-poll granularity (ms).
    pub tick_ms: u64,
    /// Elements per `StateChunk` message when replicating state.
    pub replication_chunk_elems: usize,
    /// Simulated forward/backward cost per iteration (µs). `0` (the
    /// default) trains at full speed. Under a virtual clock a busy
    /// training loop never leaves an all-threads-quiescent moment, so
    /// virtual time freezes and nothing time-gated (join windows,
    /// partition heals, timeouts) can ever fire; a nonzero compute cost
    /// makes each iteration's allreduce barrier park every worker and
    /// advances the clock by roughly this much per iteration.
    pub compute_us: u64,
    /// Open-membership epoch machine (DESIGN.md §17): when set, the AM
    /// ticks an [`EpochMachine`] and admits
    /// [`open_join`](ElasticRuntime::open_join) workers at epoch
    /// boundaries through warmup replication and a witness vote. `None`
    /// (the default) leaves the runtime's closed-membership behaviour
    /// untouched.
    pub open_membership: Option<EpochConfig>,
}

impl RuntimeConfig {
    /// A small, fast configuration for tests and examples.
    pub fn small(initial_workers: u32) -> Self {
        RuntimeConfig {
            initial_workers,
            param_elems: 1024,
            coordination_interval: 5,
            learning_rate: 0.05,
            total_batch: 128,
            hb_period_ms: 25,
            hb_timeout_ms: 400,
            lease_ttl_ms: 200,
            watchdog_poll_ms: 40,
            retry_timeout_ms: 60,
            retry_max_attempts: 8,
            tick_ms: 20,
            // 1024-elem test configs stream 4 chunks per buffer, so the
            // chunked path is exercised even by the small profile.
            replication_chunk_elems: 256,
            compute_us: 0,
            open_membership: None,
        }
    }

    fn tick(&self) -> Duration {
        Duration::from_millis(self.tick_ms)
    }
}

/// A live checkpoint: the full training state of the job at a
/// coordination boundary (rank 0's copy — identical everywhere by the
/// data-parallel invariant).
#[derive(Debug, Clone)]
pub struct CheckpointSnapshot {
    /// Model parameters.
    pub params: Arc<Vec<f32>>,
    /// Optimizer (momentum) state.
    pub momentum: Arc<Vec<f32>>,
    /// Iteration the snapshot was taken at.
    pub iteration: u64,
    /// Serial data cursor.
    pub data_cursor: u64,
}

/// Final state of a finished job.
///
/// Beyond the training outcome, the report carries the full observability
/// post-mortem — a [`MetricsSnapshot`], the [`JournalSummary`], every
/// [`AdjustmentTrace`], and the retained [`Event`]s — captured *after* all
/// threads joined, so assertions on it can never race the teardown.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Workers in the job when it stopped.
    pub final_world_size: u32,
    /// Last telemetry of every worker that ever participated.
    pub workers: BTreeMap<WorkerId, WorkerView>,
    /// Total controller-requested adjustments the job went through.
    pub adjustments: u64,
    /// Fault-tolerance counters (resends, duplicates, recoveries, …).
    pub metrics: RtMetricsSnapshot,
    /// Fault-injection counters, when the job ran on a chaotic bus.
    pub chaos: Option<ChaosStats>,
    /// Final snapshot of the metrics registry (`rt.*` counters and any
    /// component-registered instruments).
    pub registry: MetricsSnapshot,
    /// Journal totals and per-kind event counts.
    pub journal: JournalSummary,
    /// Every adjustment span recorded over the job's lifetime.
    pub traces: Vec<AdjustmentTrace>,
    /// The events still retained by the journal ring, oldest first.
    pub events: Vec<Event>,
}

impl ShutdownReport {
    /// The per-phase adjustment-latency table rendered from
    /// [`ShutdownReport::traces`].
    pub fn trace_report(&self) -> String {
        render_trace_report(&self.traces)
    }

    /// True when every worker that reached the final iteration holds
    /// bit-identical parameters — the data-parallel invariant.
    pub fn states_consistent(&self) -> bool {
        let max_iter = self
            .workers
            .values()
            .map(|v| v.iteration)
            .max()
            .unwrap_or(0);
        let checksums: BTreeSet<u64> = self
            .workers
            .values()
            .filter(|v| v.iteration == max_iter)
            .map(|v| v.params_checksum)
            .collect();
        checksums.len() == 1
    }
}

/// The live elastic-training job handle.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct ElasticRuntime {
    cfg: RuntimeConfig,
    bus: Bus,
    rep: ReliableEndpoint,
    comm: Arc<CommGroup>,
    telemetry: Telemetry,
    ctrl: Arc<SharedControl>,
    next_worker: u32,
    next_seq: u64,
    adjustments: u64,
    watchdog: Option<JoinHandle<()>>,
    /// Ordered so teardown joins workers in a deterministic order — a
    /// hashed order would make the virtual-clock schedule (and thus the
    /// journal) vary across runs of the same seed.
    worker_handles: BTreeMap<WorkerId, JoinHandle<()>>,
    /// True when workers are separate OS processes reached over the
    /// transport: the runtime spawns no worker threads and reads
    /// progress from AM heartbeat telemetry.
    remote_workers: bool,
}

impl std::fmt::Debug for ElasticRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticRuntime")
            .field("members", &self.members())
            .field("adjustments", &self.adjustments)
            .finish()
    }
}

/// Fluent launch configuration for an [`ElasticRuntime`].
///
/// Obtained from [`ElasticRuntime::builder`]; every knob is optional and
/// [`RuntimeBuilder::start`] validates the whole configuration at once,
/// returning [`ElanError`] instead of panicking.
///
/// # Examples
///
/// ```
/// use elan_rt::ElasticRuntime;
///
/// let mut rt = ElasticRuntime::builder().workers(2).start().unwrap();
/// rt.run_until_iteration(10);
/// let report = rt.shutdown();
/// assert_eq!(report.final_world_size, 2);
/// ```
pub struct RuntimeBuilder {
    cfg: RuntimeConfig,
    chaos: Option<ChaosPolicy>,
    restore: Option<CheckpointSnapshot>,
    sinks: Vec<Arc<dyn EventSink>>,
    ring_capacity: usize,
    time: TimeSource,
    topology: Option<CommTopology>,
    tuning: Option<TuningProfile>,
    transport: Option<Arc<dyn Transport>>,
    remote_workers: bool,
}

impl std::fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("cfg", &self.cfg)
            .field("chaos", &self.chaos.is_some())
            .field("restore", &self.restore.is_some())
            .field("sinks", &self.sinks.len())
            .field("ring_capacity", &self.ring_capacity)
            .field("time", &self.time)
            .field("topology", &self.topology.is_some())
            .field("tuning", &self.tuning)
            .field("transport", &self.transport.is_some())
            .field("remote_workers", &self.remote_workers)
            .finish()
    }
}

impl RuntimeBuilder {
    fn new() -> Self {
        RuntimeBuilder {
            cfg: RuntimeConfig::small(2),
            chaos: None,
            restore: None,
            sinks: Vec::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            time: TimeSource::real(),
            topology: None,
            tuning: None,
            transport: None,
            remote_workers: false,
        }
    }

    /// Sets the number of founding workers (keeps every other knob of the
    /// current configuration).
    pub fn workers(mut self, n: u32) -> Self {
        self.cfg.initial_workers = n;
        self
    }

    /// Replaces the whole [`RuntimeConfig`].
    pub fn config(mut self, cfg: RuntimeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the simulated per-iteration forward/backward cost (µs). See
    /// [`RuntimeConfig::compute_us`]: under a virtual clock this is what
    /// lets time-gated machinery (epoch join windows, partition windows,
    /// timeouts) make progress while the cohort trains.
    pub fn compute_us(mut self, us: u64) -> Self {
        self.cfg.compute_us = us;
        self
    }

    /// Turns on epoch-based open membership: the AM runs an
    /// [`EpochMachine`] over the configured thresholds, and workers
    /// spawned via [`ElasticRuntime::open_join`] are admitted at epoch
    /// boundaries — warmed up over the chunked replication path and
    /// audited by a witness vote — never mid-epoch.
    pub fn open_membership(mut self, epoch: EpochConfig) -> Self {
        self.cfg.open_membership = Some(epoch);
        self
    }

    /// Runs the job on a fault-injecting bus: messages are dropped,
    /// duplicated, and delayed per `policy`, and the reliable-messaging
    /// layer must mask all of it.
    pub fn chaos(mut self, policy: ChaosPolicy) -> Self {
        self.chaos = Some(policy);
        self
    }

    /// Restarts from a [`CheckpointSnapshot`] — the live
    /// Shutdown-&-Restart path. Training resumes bit-exactly where the
    /// snapshot was taken.
    pub fn restore(mut self, snapshot: &CheckpointSnapshot) -> Self {
        self.restore = Some(snapshot.clone());
        self
    }

    /// Tees every journal event to an extra [`EventSink`] (additive; may
    /// be called multiple times).
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Caps how many events the journal ring retains
    /// ([`DEFAULT_RING_CAPACITY`] unless set).
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Runs the job on the given [`TimeSource`].
    ///
    /// With [`TimeSource::virtual_seeded`] the whole control plane —
    /// heartbeats, leases, retry timers, the watchdog, every parked wait —
    /// runs on deterministic virtual time: the same seed yields the same
    /// thread schedule and a byte-identical event journal, and a test that
    /// "waits" 400 virtual milliseconds finishes in microseconds of wall
    /// time. The calling thread is registered with the clock for the
    /// lifetime of the runtime and released by
    /// [`ElasticRuntime::shutdown`].
    pub fn time(mut self, time: TimeSource) -> Self {
        self.time = time;
        self
    }

    /// Describes where each worker "lives" in the cluster hierarchy for
    /// the adaptive allreduce's hierarchical path ([`CommTopology`]).
    /// Defaults to [`CommTopology::planning_default`] — the same 64-node
    /// shape the replication planner assumes, workers placed linearly.
    pub fn topology(mut self, topology: CommTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Pins the adaptive allreduce's crossover profile, overriding the
    /// startup probe (real time) or the pinned defaults (virtual time).
    /// Benchmarks use this to force a specific path.
    pub fn tuning(mut self, profile: TuningProfile) -> Self {
        self.tuning = Some(profile);
        self
    }

    /// Runs the control plane over the given [`Transport`] instead of a
    /// freshly built in-memory bus — e.g. a
    /// [`SocketTransport`](crate::transport::SocketTransport) listening
    /// hub, which turns this runtime into a multi-process coordinator.
    /// The runtime attaches its journal and clock to the transport at
    /// launch. Incompatible with [`RuntimeBuilder::chaos`] (fault
    /// injection lives in the in-memory transport) and, for transports
    /// that cannot run on a virtual clock, with virtual
    /// [`RuntimeBuilder::time`].
    pub fn transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Declares that workers live in *other processes* and reach this
    /// runtime over the transport: the runtime spawns no local worker
    /// threads (at launch or on scale-out) and tracks progress through
    /// the heartbeat iterations the AM collects, rather than in-process
    /// telemetry. Requires [`RuntimeBuilder::transport`].
    pub fn remote_workers(mut self, remote: bool) -> Self {
        self.remote_workers = remote;
        self
    }

    /// Validates the configuration and launches the job.
    ///
    /// # Errors
    ///
    /// [`ElanError::Config`] when the configuration is unusable (zero
    /// workers, empty parameters, or a zero coordination interval), and
    /// [`ElanError::SnapshotMismatch`] when a restore snapshot's parameter
    /// length differs from the configuration.
    pub fn start(self) -> Result<ElasticRuntime, ElanError> {
        if self.cfg.initial_workers == 0 {
            return Err(ElanError::Config("need at least one worker".into()));
        }
        if self.cfg.param_elems == 0 {
            return Err(ElanError::Config("parameters must be non-empty".into()));
        }
        if self.cfg.coordination_interval == 0 {
            return Err(ElanError::Config(
                "coordination interval must be positive".into(),
            ));
        }
        if let Some(snapshot) = &self.restore {
            if snapshot.params.len() != self.cfg.param_elems {
                return Err(ElanError::SnapshotMismatch {
                    expected: self.cfg.param_elems,
                    actual: snapshot.params.len(),
                });
            }
        }
        if let Some(transport) = &self.transport {
            if self.chaos.is_some() {
                return Err(ElanError::Config(
                    "chaos policies require the in-memory transport".into(),
                ));
            }
            if self.time.is_virtual() && !transport.supports_virtual_time() {
                return Err(ElanError::Config(
                    "this transport cannot run on a virtual clock".into(),
                ));
            }
        }
        if self.remote_workers {
            if self.transport.is_none() {
                return Err(ElanError::Config(
                    "remote workers require an explicit transport".into(),
                ));
            }
            if self.restore.is_some() {
                return Err(ElanError::Config(
                    "restore spawns local workers; incompatible with remote workers".into(),
                ));
            }
        }
        Ok(ElasticRuntime::launch(
            self.cfg,
            self.restore,
            self.chaos,
            self.ring_capacity,
            self.sinks,
            self.time,
            self.topology,
            self.tuning,
            self.transport,
            self.remote_workers,
        ))
    }
}

impl ElasticRuntime {
    /// Starts building a runtime: `ElasticRuntime::builder().workers(4)
    /// .chaos(policy).sink(sink).start()`.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (OS thread spawn)
    #[allow(clippy::too_many_arguments)] // internal: the builder is the only caller
    fn launch(
        cfg: RuntimeConfig,
        restore: Option<CheckpointSnapshot>,
        chaos: Option<ChaosPolicy>,
        ring_capacity: usize,
        sinks: Vec<Arc<dyn EventSink>>,
        time: TimeSource,
        topology: Option<CommTopology>,
        tuning: Option<TuningProfile>,
        transport: Option<Arc<dyn Transport>>,
        remote_workers: bool,
    ) -> Self {
        // The controller (this thread) joins the clock first, so that on a
        // virtual clock every thread spawned below is scheduled
        // deterministically from the very first instruction.
        time.register_current();
        let obs = Obs::with_time(ring_capacity, sinks, time.clone());
        let bus = match transport {
            Some(transport) => {
                // Attach before any register: endpoints capture the clock
                // at registration, and the bus caches journal/time when
                // wrapped.
                transport.attach(Some(Arc::clone(&obs.journal)), time.clone());
                Bus::with_transport(transport)
            }
            None => {
                let mut bus_builder = Bus::builder()
                    .journal(Arc::clone(&obs.journal))
                    .time(time.clone());
                if let Some(policy) = chaos {
                    bus_builder = bus_builder.chaos(policy);
                }
                bus_builder.build()
            }
        };
        let metrics = Arc::clone(&obs.rt);
        let ctrl = Arc::new(SharedControl::with_time(
            Duration::from_millis(cfg.lease_ttl_ms),
            obs,
            time.clone(),
        ));
        if remote_workers {
            // Founding workers are OS processes an external orchestrator
            // spawns after this returns: give their first contact room
            // for process startup + dial-in, so the failure detector
            // doesn't condemn a member that simply hasn't arrived yet.
            // Set before the AM spawns below so its monitor sees it.
            ctrl.first_contact_grace_ms
                .store(REMOTE_FIRST_CONTACT_GRACE_MS, Ordering::SeqCst);
        }
        let members: Vec<WorkerId> = (0..cfg.initial_workers).map(WorkerId).collect();
        *ctrl.members.lock() = members.clone();
        // Seed the durable record before anything can crash.
        ctrl.persist(&AmDurable::founding(members.clone()));

        // The adaptive allreduce needs its crossovers (probed once per
        // process on real time, pinned under virtual time so dispatch is
        // a pure function of the seed) and a topology for the
        // hierarchical path's node/socket grouping.
        let profile = tuning.unwrap_or_else(|| TuningProfile::for_time(&time));
        let comm_topology = topology.unwrap_or_default();
        let comm = Arc::new(CommGroup::with_tuning(
            members.iter().copied(),
            cfg.param_elems,
            profile,
            Some(comm_topology),
        ));
        comm.set_journal(Arc::clone(&ctrl.obs.journal));
        comm.set_time(time.clone());
        comm.set_metrics(&ctrl.obs.registry);
        let telemetry: Telemetry = Arc::new(Mutex::new(HashMap::new()));
        let rep = ReliableEndpoint::new(
            bus.clone(),
            bus.register(EndpointId::Controller),
            1,
            Duration::from_millis(cfg.retry_timeout_ms),
            None, // the controller retries forever — failover will answer
            Arc::clone(&metrics),
        );

        let am_handle = spawn_am(cfg, &bus, &comm, &ctrl, 0);
        ctrl.am_handles.lock().push(am_handle);
        let watchdog = {
            let (bus, comm, ctrl) = (bus.clone(), Arc::clone(&comm), Arc::clone(&ctrl));
            let time = time.clone();
            let slot = time.create_thread();
            thread::Builder::new()
                .name("elan-watchdog".into())
                .spawn(move || {
                    let _clock = time.adopt(slot);
                    watchdog_thread(cfg, bus, comm, ctrl)
                })
                .expect("spawn watchdog thread")
        };

        let mut rt = ElasticRuntime {
            cfg,
            bus,
            rep,
            comm,
            telemetry,
            ctrl,
            next_worker: cfg.initial_workers,
            next_seq: 1,
            adjustments: 0,
            watchdog: Some(watchdog),
            worker_handles: BTreeMap::new(),
            remote_workers,
        };
        // In remote mode the founding workers are separate OS processes
        // that dial in over the transport and announce themselves; the
        // coordinator spawns nothing.
        if !remote_workers {
            for &w in &members {
                let role = match &restore {
                    Some(s) => WorkerRole::Restored {
                        params: Arc::clone(&s.params),
                        momentum: Arc::clone(&s.momentum),
                        iteration: s.iteration,
                        data_cursor: s.data_cursor,
                    },
                    None => WorkerRole::Founding,
                };
                rt.spawn_worker(w, role);
            }
        }
        rt
    }

    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (OS thread spawn)
    fn spawn_worker(&mut self, id: WorkerId, role: WorkerRole) {
        let rep = ReliableEndpoint::new(
            self.bus.clone(),
            self.bus.register(EndpointId::Worker(id)),
            16 + id.0,
            Duration::from_millis(self.cfg.retry_timeout_ms),
            None, // workers retry forever; the AM decides who is dead
            Arc::clone(&self.ctrl.metrics),
        );
        let cfg = WorkerConfig {
            id,
            param_elems: self.cfg.param_elems,
            coordination_interval: self.cfg.coordination_interval,
            learning_rate: self.cfg.learning_rate,
            total_batch: self.cfg.total_batch,
            hb_period: Duration::from_millis(self.cfg.hb_period_ms),
            tick: self.cfg.tick(),
            replication_chunk_elems: self.cfg.replication_chunk_elems,
            compute: Duration::from_micros(self.cfg.compute_us),
        };
        let comm = Arc::clone(&self.comm);
        let telemetry = Arc::clone(&self.telemetry);
        let ctrl = Arc::clone(&self.ctrl);
        let time = self.bus.time().clone();
        let slot = time.create_thread();
        let handle = thread::Builder::new()
            .name(format!("elan-{id}"))
            .spawn(move || {
                let _clock = time.adopt(slot);
                run_worker(cfg, rep, comm, telemetry, role, ctrl)
            })
            .expect("spawn worker thread");
        self.worker_handles.insert(id, handle);
    }

    /// The clock this runtime runs on.
    pub fn time(&self) -> &TimeSource {
        self.bus.time()
    }

    /// Current members (the authoritative control-plane view, which also
    /// reflects failure-driven scale-ins).
    pub fn members(&self) -> Vec<WorkerId> {
        self.ctrl.members.lock().clone()
    }

    /// A snapshot of every worker's latest telemetry.
    pub fn snapshot(&self) -> BTreeMap<WorkerId, WorkerView> {
        self.telemetry
            .lock()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Fault-tolerance counters so far.
    pub fn metrics(&self) -> RtMetricsSnapshot {
        self.ctrl.metrics.snapshot(self.bus.total_dead_letters())
    }

    /// Fault-injection counters, when running on a chaotic bus.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.bus.chaos_stats()
    }

    /// The runtime's observability bundle (journal, traces, registry).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.ctrl.obs
    }

    /// The events currently retained by the journal ring, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ctrl.obs.journal.events()
    }

    /// Journal totals and per-kind event counts so far.
    pub fn journal_summary(&self) -> JournalSummary {
        self.ctrl.obs.journal.summary()
    }

    /// Every adjustment span recorded so far (completed and in-flight).
    pub fn traces(&self) -> Vec<AdjustmentTrace> {
        self.ctrl.obs.traces.all()
    }

    /// The per-phase adjustment-latency breakdown, rendered from the event
    /// journal's traces.
    pub fn trace_report(&self) -> String {
        render_trace_report(&self.traces())
    }

    /// The full observability bundle as one JSON object (metrics registry,
    /// journal summary, and per-adjustment traces) — what `crates/bench`
    /// consumes.
    pub fn obs_json(&self) -> String {
        self.ctrl.obs.to_json()
    }

    /// Arms a one-shot AM crash at the given point of the next adjustment
    /// — the AM thread simply stops, without cleanup, and the watchdog
    /// must elect a replacement that recovers from the durable record.
    pub fn arm_am_crash(&self, point: CrashPoint) {
        *self.ctrl.am_crash.lock() = Some(point);
    }

    /// Orders `worker` to play dead: it stops heartbeating, training, and
    /// responding, exactly like a crashed process. The AM's failure
    /// detector must notice and scale the job in around it.
    pub fn crash_worker(&self, worker: WorkerId) {
        self.ctrl.worker_crash.write().insert(worker);
    }

    /// Arms a one-shot crash of `worker` at its first coordination
    /// boundary at or after `iteration`: the thread dies after the SGD
    /// step but *before* sending `Coordinate`, leaving the boundary
    /// hanging until the worker is restarted
    /// ([`restart_worker`](Self::restart_worker)) or declared dead.
    pub fn crash_worker_at(&self, worker: WorkerId, iteration: u64) {
        self.ctrl
            .worker_crash_points
            .lock()
            .push(CrashPoint::WorkerAtBoundary { worker, iteration });
    }

    /// Restarts a crashed worker: reaps the dead thread, recycles its
    /// bus endpoint, and spawns a fresh incarnation that runs the
    /// `Rejoin` handshake with the crash incarnation's last-known term
    /// and boundary iteration, then resumes bit-exactly once the AM
    /// re-replicates state to it.
    ///
    /// # Panics
    ///
    /// If `worker` was never ordered to crash (no play-dead flag and no
    /// armed boundary crash point): joining a live worker thread would
    /// block forever, so the misuse is rejected loudly instead.
    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (worker join)
    pub fn restart_worker(&mut self, worker: WorkerId) {
        // Crash evidence lives in one of three places depending on how far
        // the crash has progressed: the play-dead flag, a still-armed
        // boundary crash point, or the credentials a fired boundary crash
        // recorded on its way out.
        let crashed = self.ctrl.worker_crashed(worker)
            || self.ctrl.crash_info.lock().contains_key(&worker)
            || self.ctrl.worker_crash_points.lock().iter().any(
                |p| matches!(p, CrashPoint::WorkerAtBoundary { worker: w, .. } if *w == worker),
            );
        assert!(
            crashed,
            "restart_worker({worker:?}): worker was never ordered to crash; \
             joining its live thread would hang forever"
        );
        let time = self.bus.time().clone();
        if let Some(h) = self.worker_handles.remove(&worker) {
            time.blocking(|| h.join())
                .expect("crashed worker thread exits");
        }
        self.bus.unregister(EndpointId::Worker(worker));
        // A worker that died before recording credentials (or was ordered
        // to play dead) rejoins from scratch: term 0, iteration 0.
        let (term, iteration) = self.ctrl.take_crash_info(worker).unwrap_or((0, 0));
        self.ctrl.worker_crash.write().remove(&worker);
        self.spawn_worker(worker, WorkerRole::Rejoin { term, iteration });
    }

    /// Opens a named partition window *now*, cutting every bus edge
    /// between the given endpoint groups — and between listed and
    /// unlisted endpoints — for `duration` of (virtual) time, then
    /// healing automatically. Composes with whatever per-edge chaos
    /// fates the policy already scripts. Returns false when the runtime
    /// was not launched with a chaos policy (there is no engine to
    /// script).
    pub fn partition(
        &self,
        name: impl Into<String>,
        groups: Vec<Vec<EndpointId>>,
        duration: Duration,
    ) -> bool {
        let now = self.bus.time().now();
        self.bus.add_partition(PartitionWindow {
            name: name.into(),
            groups,
            from: now,
            until: now + std_to_sim(duration),
        })
    }

    /// Blocks until the membership reaches exactly `n` workers, or until
    /// `timeout`; returns whether it happened.
    pub fn wait_for_members(&self, n: usize, timeout: Duration) -> bool {
        let time = self.bus.time().clone();
        let deadline = time.deadline_after(timeout);
        while time.now() < deadline {
            if self.ctrl.members.lock().len() == n {
                return true;
            }
            time.sleep(Duration::from_millis(2));
        }
        false
    }

    /// Blocks until every live member has completed `iteration`.
    ///
    /// With in-process workers this reads their shared telemetry; with
    /// remote workers it reads the iteration carried by the heartbeats
    /// the AM has collected (so a member that has never beaconed yet
    /// keeps this waiting, exactly like an unspawned local worker).
    pub fn run_until_iteration(&self, iteration: u64) {
        loop {
            if self.remote_workers {
                let members = self.ctrl.members.lock().clone();
                let progress = self.ctrl.progress.lock();
                if !members.is_empty()
                    && members
                        .iter()
                        .all(|w| progress.get(w).is_some_and(|&i| i >= iteration))
                {
                    return;
                }
            } else {
                let members = self.ctrl.members.lock().clone();
                let t = self.telemetry.lock();
                let live: Vec<_> = members
                    .iter()
                    .filter_map(|w| t.get(w))
                    .filter(|v| v.alive)
                    .collect();
                if !live.is_empty() && live.iter().all(|v| v.iteration >= iteration) {
                    return;
                }
            }
            self.bus.time().sleep(Duration::from_micros(200));
        }
    }

    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Sends an operation and blocks until its `Ack{seq}` arrives,
    /// re-issuing it at the application level so an AM failover between
    /// transport-ack and execution cannot strand the controller.
    fn op_roundtrip(&mut self, body: RtMsg, seq: u64) {
        let time = self.bus.time().clone();
        self.rep.send(EndpointId::Am, body.clone());
        let mut last_send = time.now();
        loop {
            let _ = self.rep.tick();
            if let Some((_, RtMsg::Ack { seq: s })) = self.rep.recv_timeout(self.cfg.tick()) {
                if s == seq {
                    return;
                }
            }
            if time.now().saturating_duration_since(last_send) >= OP_RESEND_EVERY {
                last_send = time.now();
                self.rep.send(EndpointId::Am, body.clone());
            }
        }
    }

    /// Snapshots the full training state at the next coordination
    /// boundary (rank 0 streams its buffers to the controller) — the
    /// checkpoint half of Shutdown-&-Restart, done live.
    pub fn checkpoint(&mut self) -> CheckpointSnapshot {
        // Drain stale traffic (e.g. duplicate snapshot chunks from a
        // recovered AM replaying a previous checkpoint order). This must
        // not park: under a virtual clock a healthy hot job never
        // advances time, so a timeout-based drain would starve here.
        while self.rep.try_recv().is_some() {}
        let time = self.bus.time().clone();
        let seq = self.take_seq();
        self.rep.send(EndpointId::Am, RtMsg::Checkpoint { seq });
        let mut last_send = time.now();
        let mut params = vec![0.0f32; self.cfg.param_elems];
        let mut momentum = vec![0.0f32; self.cfg.param_elems];
        let mut assembly = SnapshotAssembly::new();
        loop {
            let _ = self.rep.tick();
            if let Some((
                _,
                RtMsg::StateChunk {
                    kind,
                    iteration,
                    data_cursor,
                    index,
                    total,
                    offset,
                    data,
                },
            )) = self.rep.recv_timeout(self.cfg.tick())
            {
                if let Some((iteration, data_cursor)) = assembly.offer(
                    kind,
                    iteration,
                    data_cursor,
                    index,
                    total,
                    offset,
                    &data,
                    &mut params,
                    &mut momentum,
                ) {
                    return CheckpointSnapshot {
                        params: Arc::new(params),
                        momentum: Arc::new(momentum),
                        iteration,
                        data_cursor,
                    };
                }
            }
            if time.now().saturating_duration_since(last_send) >= OP_RESEND_EVERY {
                // The checkpoint request is deliberately not durable AM
                // state; the controller just asks again.
                last_send = time.now();
                self.rep.send(EndpointId::Am, RtMsg::Checkpoint { seq });
            }
        }
    }

    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (worker join)
    fn adjust_to(&mut self, target: Vec<WorkerId>, kind: TraceKind) {
        let current = self.members();
        let joining: Vec<WorkerId> = target
            .iter()
            .copied()
            .filter(|w| !current.contains(w))
            .collect();
        let leaving: Vec<WorkerId> = current
            .iter()
            .copied()
            .filter(|w| !target.contains(w))
            .collect();
        let seq = self.take_seq();
        // Step ① (request): open the adjustment span before anything else
        // observable happens, so the trace covers the whole pipeline.
        let obs = Arc::clone(&self.ctrl.obs);
        let at = obs.journal.now_us();
        let target_world = target.len() as u32;
        let (trace, fresh) = obs.traces.begin(kind, Some(seq), target_world, at);
        if fresh {
            obs.journal.emit_at(
                at,
                EventKind::AdjustmentRequested {
                    trace,
                    kind,
                    seq: Some(seq),
                    target_world,
                },
            );
            obs.journal.emit_at(
                at,
                EventKind::PhaseStarted {
                    trace,
                    phase: AdjustmentPhase::Request,
                },
            );
        }
        // Remote joiners are launched as processes by the operator (they
        // dial in and Report over the transport); local mode spawns them
        // here.
        if !self.remote_workers {
            for &w in &joining {
                self.spawn_worker(w, WorkerRole::Joining);
            }
        }
        self.op_roundtrip(
            RtMsg::AdjustTo {
                seq,
                target: target.clone(),
            },
            seq,
        );
        // Reap leavers. The join is an OS-blocking wait on a thread that
        // may still need to be scheduled to finish, so on a virtual clock
        // it must run as an external section.
        let time = self.bus.time().clone();
        for w in leaving {
            if let Some(h) = self.worker_handles.remove(&w) {
                time.blocking(|| h.join())
                    .expect("worker thread exits cleanly");
            }
            self.bus.unregister(EndpointId::Worker(w));
        }
        self.adjustments += 1;
    }

    /// Adds `n` workers (scale-out). Blocks until the adjustment is done;
    /// existing workers keep training meanwhile.
    pub fn scale_out(&mut self, n: u32) {
        assert!(n > 0, "scale-out of zero workers");
        let mut target = self.members();
        for _ in 0..n {
            target.push(WorkerId(self.next_worker));
            self.next_worker += 1;
        }
        self.adjust_to(target, TraceKind::ScaleOut);
    }

    /// Removes the last `n` workers (scale-in).
    ///
    /// # Panics
    ///
    /// Panics if `n` would leave no workers.
    pub fn scale_in(&mut self, n: u32) {
        let members = self.members();
        assert!(
            (n as usize) < members.len(),
            "scale-in would remove every worker"
        );
        let target = members[..members.len() - n as usize].to_vec();
        self.adjust_to(target, TraceKind::ScaleIn);
    }

    /// Spawns `n` open-membership joiners and returns their ids without
    /// blocking: each announces itself with `JoinRequest` and is admitted
    /// by the AM's epoch machine at the next epoch boundary — warmed up
    /// over the chunked replication path and audited by a witness vote —
    /// never mid-epoch. Requires
    /// [`open_membership`](RuntimeBuilder::open_membership).
    pub fn open_join(&mut self, n: u32) -> Vec<WorkerId> {
        assert!(
            self.cfg.open_membership.is_some(),
            "open_join requires RuntimeBuilder::open_membership"
        );
        let mut ids = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = WorkerId(self.next_worker);
            self.next_worker += 1;
            self.spawn_worker(id, WorkerRole::OpenJoin { corrupt: false });
            ids.push(id);
        }
        ids
    }

    /// Fault-injection variant of [`open_join`](Self::open_join): the
    /// joiner deliberately mis-claims its warmup digest, so the witness
    /// vote must evict it.
    pub fn open_join_corrupt(&mut self) -> WorkerId {
        assert!(
            self.cfg.open_membership.is_some(),
            "open_join_corrupt requires RuntimeBuilder::open_membership"
        );
        let id = WorkerId(self.next_worker);
        self.next_worker += 1;
        self.spawn_worker(id, WorkerRole::OpenJoin { corrupt: true });
        id
    }

    /// Migrates the job onto an entirely fresh set of workers of the same
    /// size.
    pub fn migrate(&mut self) {
        let n = self.members().len() as u32;
        let mut target = Vec::with_capacity(n as usize);
        for _ in 0..n {
            target.push(WorkerId(self.next_worker));
            self.next_worker += 1;
        }
        self.adjust_to(target, TraceKind::Migrate);
    }

    /// Stops the job at the next coordination boundary and returns the
    /// final report.
    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (teardown joins)
    pub fn shutdown(mut self) -> ShutdownReport {
        let seq = self.take_seq();
        self.op_roundtrip(RtMsg::Stop { seq }, seq);
        self.ctrl.shutdown.store(true, Ordering::SeqCst);
        let time = self.bus.time().clone();
        for (_, h) in std::mem::take(&mut self.worker_handles) {
            time.blocking(|| h.join())
                .expect("worker thread exits cleanly");
        }
        if let Some(h) = self.watchdog.take() {
            time.blocking(|| h.join())
                .expect("watchdog thread exits cleanly");
        }
        let ams: Vec<JoinHandle<()>> = self.ctrl.am_handles.lock().drain(..).collect();
        for h in ams {
            time.blocking(|| h.join()).expect("AM thread exits cleanly");
        }
        // Release the controller thread from the (virtual) clock: the
        // runtime is gone and the caller's thread must not stay scheduled.
        time.deregister();
        let obs = Arc::clone(&self.ctrl.obs);
        ShutdownReport {
            final_world_size: self.ctrl.members.lock().len() as u32,
            workers: self
                .telemetry
                .lock()
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            adjustments: self.adjustments,
            metrics: self.ctrl.metrics.snapshot(self.bus.total_dead_letters()),
            chaos: self.bus.chaos_stats(),
            registry: obs.metrics(),
            journal: obs.journal.summary(),
            traces: obs.traces.all(),
            events: obs.journal.events(),
        }
    }
}

/// A topology big enough to place any worker id we might allocate.
fn planning_topology() -> Topology {
    ClusterSpec::new(64, 2, 2, 2).build() // 512 GPU slots
}

/// Spawns one AM incarnation; epoch 0 is the founding AM.
#[allow(clippy::expect_used)] // waived: see verify-allow.toml (OS thread spawn)
fn spawn_am(
    cfg: RuntimeConfig,
    bus: &Bus,
    comm: &Arc<CommGroup>,
    ctrl: &Arc<SharedControl>,
    epoch: u64,
) -> JoinHandle<()> {
    let endpoint = bus.register(EndpointId::Am);
    let lease = ctrl.grant_lease();
    let time = bus.time().clone();
    let slot = time.create_thread();
    let (bus, comm, ctrl) = (bus.clone(), Arc::clone(comm), Arc::clone(ctrl));
    thread::Builder::new()
        .name(format!("elan-am-e{epoch}"))
        .spawn(move || {
            let _clock = time.adopt(slot);
            am_thread(cfg, bus, endpoint, comm, ctrl, epoch, lease)
        })
        .expect("spawn AM thread")
}

/// Polls the AM lease; when it lapses (the AM died or was crashed), bumps
/// the epoch and elects a replacement AM that recovers from the durable
/// record — Elan's watchdog-driven AM failover.
fn watchdog_thread(cfg: RuntimeConfig, bus: Bus, comm: Arc<CommGroup>, ctrl: Arc<SharedControl>) {
    loop {
        bus.time()
            .sleep(Duration::from_millis(cfg.watchdog_poll_ms));
        if ctrl.shutting_down() {
            return;
        }
        if !ctrl.lease_expired() {
            continue;
        }
        // Takeover: supersede the silent AM and install a replacement.
        let epoch = ctrl.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        ctrl.metrics.am_recoveries.inc();
        ctrl.obs.journal.emit(EventKind::AmElected { epoch });
        bus.unregister(EndpointId::Am);
        let handle = spawn_am(cfg, &bus, &comm, &ctrl, epoch);
        ctrl.am_handles.lock().push(handle);
    }
}

#[allow(clippy::expect_used)] // waived: see verify-allow.toml (seeded durable record)
fn am_thread(
    cfg: RuntimeConfig,
    bus: Bus,
    endpoint: Endpoint,
    comm: Arc<CommGroup>,
    ctrl: Arc<SharedControl>,
    epoch: u64,
    lease: LeaseId,
) {
    let rep = ReliableEndpoint::new(
        bus,
        endpoint,
        AM_OWNER_FLAG | epoch as u32,
        Duration::from_millis(cfg.retry_timeout_ms),
        Some(cfg.retry_max_attempts),
        Arc::clone(&ctrl.metrics),
    );
    // Mark ownership before acting (persist-before-act): atomically bump
    // the fencing term, so any still-running predecessor's next persist
    // is rejected at the store.
    let durable = ctrl
        .bump_term(epoch)
        .expect("durable AM record was seeded at launch");
    ctrl.obs
        .journal
        .emit(EventKind::TermBump { term: durable.term });
    let metrics = Arc::clone(&ctrl.metrics);
    let first_contact_ms = ctrl
        .first_contact_grace_ms
        .load(Ordering::SeqCst)
        .max(cfg.hb_timeout_ms);
    // Open membership: the founding AM starts the epoch machine fresh; a
    // failover successor rebuilds it from the durable record (epoch +
    // phase + members), and in-flight joiners re-present themselves via
    // their heartbeat-cadence `JoinRequest` re-announcements.
    let machine = cfg.open_membership.map(|ecfg| {
        let j = &ctrl.obs.journal;
        if epoch == 0 {
            EpochMachine::new(ecfg, j.now_us(), &durable.members, j)
        } else {
            EpochMachine::recover(
                ecfg,
                durable.train_epoch,
                durable.epoch_phase,
                &durable.members,
                j.now_us(),
            )
        }
    });
    AmCore {
        cfg,
        rep,
        comm,
        ctrl,
        metrics,
        epoch,
        lease,
        durable,
        hb: HeartbeatMonitor::with_grace(
            Duration::from_millis(cfg.hb_timeout_ms),
            Duration::from_millis(first_contact_ms),
        ),
        dead: BTreeSet::new(),
        fenced: false,
        rejoining: BTreeSet::new(),
        coordinated: BTreeMap::new(),
        reported: BTreeSet::new(),
        outstanding: BTreeSet::new(),
        transfer_waves: Vec::new(),
        next_wave: 0,
        transfers_started: false,
        last_boundary: 0,
        checkpoint_req: None,
        awaiting_checkpoint: None,
        topology: planning_topology(),
        machine,
    }
    .run();
}

/// Whether the AM loop keeps going.
enum Step {
    Continue,
    Exit,
}

/// One AM incarnation: protocol state machine + failure detector.
struct AmCore {
    cfg: RuntimeConfig,
    rep: ReliableEndpoint,
    comm: Arc<CommGroup>,
    ctrl: Arc<SharedControl>,
    metrics: Arc<RtMetrics>,
    epoch: u64,
    lease: LeaseId,
    /// The persist-before-act record (authoritative copy in the store).
    durable: AmDurable,
    hb: HeartbeatMonitor,
    /// Members declared dead this incarnation (volatile; re-detected by
    /// heartbeat silence after a failover).
    dead: BTreeSet<WorkerId>,
    /// Latched when a persist was rejected by the term fence: a
    /// successor owns the record and this incarnation must abdicate.
    fenced: bool,
    /// Crashed-and-restarted workers mid-`Rejoin` handshake: admitted,
    /// exempt from the boundary quorum, and owed a state transfer in
    /// the adjustment that folds them back in.
    rejoining: BTreeSet<WorkerId>,
    /// Boundary iteration each live member is parked at.
    coordinated: BTreeMap<WorkerId, u64>,
    /// Joiners that have reported readiness (step ②).
    reported: BTreeSet<WorkerId>,
    /// Transfer orders in flight: (src, dst).
    outstanding: BTreeSet<(WorkerId, WorkerId)>,
    /// The planner's wave schedule for the current `Transferring` phase:
    /// transfers within a wave share no contended link (GPU, same-node
    /// QPI/L3, NIC) and run concurrently; waves are issued in turn.
    transfer_waves: Vec<Vec<(WorkerId, WorkerId)>>,
    /// Next wave of `transfer_waves` to issue.
    next_wave: usize,
    /// False until this incarnation has issued the transfer orders of the
    /// current `Transferring` phase (a recovered AM re-issues them only
    /// once the boundary has been re-established by `AmReset` replies).
    transfers_started: bool,
    /// Last boundary released or adjusted at — stale `Coordinate`s at or
    /// below it are ignored.
    last_boundary: u64,
    /// A `Checkpoint{seq}` waiting for the next boundary.
    checkpoint_req: Option<u64>,
    /// A `CheckpointOrder{seq}` whose snapshot has not landed yet.
    awaiting_checkpoint: Option<u64>,
    topology: Topology,
    /// Open-membership epoch machine (`Some` iff
    /// [`RuntimeConfig::open_membership`] is set): decides *when* joiners
    /// are admitted; the AM's adjustment pipeline remains the mechanism
    /// that warms them up and folds them in.
    machine: Option<EpochMachine>,
}

impl AmCore {
    fn live(&self) -> Vec<WorkerId> {
        self.durable
            .members
            .iter()
            .copied()
            .filter(|w| !self.dead.contains(w))
            .collect()
    }

    /// Consumes the armed crash flag iff it matches `point`.
    fn crash_if(&self, point: CrashPoint) -> bool {
        let mut armed = self.ctrl.am_crash.lock();
        if *armed == Some(point) {
            *armed = None;
            true
        } else {
            false
        }
    }

    /// Persist-before-act through the term fence. Returns false when a
    /// successor incarnation has bumped the term — the write was
    /// rejected, the `fenced` flag is latched, and the caller must not
    /// take the externally visible action the write guards.
    fn persist_fenced(&mut self) -> bool {
        if self.ctrl.persist(&self.durable) {
            true
        } else {
            self.fenced = true;
            false
        }
    }

    /// Runs `f` against the epoch machine (no-op when open membership is
    /// off) and applies whatever commands it returns. The journal handle
    /// is cloned up front so the closure can emit while the machine is
    /// mutably borrowed.
    fn with_machine(
        &mut self,
        f: impl FnOnce(&mut EpochMachine, u64, &EventJournal) -> Vec<EpochCmd>,
    ) {
        let j = Arc::clone(&self.ctrl.obs.journal);
        let now = j.now_us();
        let cmds = match self.machine.as_mut() {
            Some(m) => f(m, now, &j),
            None => return,
        };
        if !cmds.is_empty() {
            self.apply_epoch_cmds(cmds);
        }
    }

    /// Ticks the epoch machine's time-gated transitions. While the AM is
    /// busy (mid-adjustment, a queued op, a stop, or an outstanding
    /// checkpoint) the `WaitingForMembers` window is held open — a join
    /// cohort must never arm its warmup op under an in-flight one — but
    /// `Warmup` keeps ticking so deadline evictions still fire and a
    /// silent joiner cannot wedge the pipeline.
    fn epoch_tick(&mut self) {
        let busy = !matches!(self.durable.phase, AmPhase::Steady)
            || self.durable.pending.is_some()
            || self.durable.stopping.is_some()
            || self.awaiting_checkpoint.is_some();
        self.with_machine(|m, now, j| {
            if busy && m.phase() == EpochPhase::WaitingForMembers {
                Vec::new()
            } else {
                m.tick(now, j)
            }
        });
    }

    /// An open-membership joiner announced itself (or re-claimed its
    /// warmup digest). Pending joiners are marked `reported` so the
    /// warmup adjustment can arm without a separate `Report` round-trip.
    fn handle_join_request(&mut self, worker: WorkerId, digest: Option<u64>) {
        if self.machine.is_none() {
            return; // open membership off: stray message, ignore
        }
        self.with_machine(|m, now, j| m.join_request(worker, digest, now, j));
        if self.machine.as_ref().is_some_and(|m| m.is_pending(worker)) {
            self.reported.insert(worker);
        }
    }

    /// A witness answered a `WitnessQuery` for a warmed-up joiner.
    fn handle_witness_vote(
        &mut self,
        witness: WorkerId,
        subject: WorkerId,
        epoch: u64,
        admit: bool,
    ) {
        self.with_machine(|m, now, j| m.witness_vote(witness, subject, epoch, admit, now, j));
    }

    /// Executes the epoch machine's decisions on the runtime: warmup
    /// cohorts become pending adjustment ops, witness queries go out to
    /// members, evictions prune the joiner from every in-flight target
    /// and `Leave` it, and phase announcements persist the epoch record
    /// and fan out `EpochAdvance`.
    fn apply_epoch_cmds(&mut self, cmds: Vec<EpochCmd>) {
        for cmd in cmds {
            match cmd {
                EpochCmd::StartWarmup { joiners, .. } => {
                    let mut target: Vec<WorkerId> = self.durable.members.clone();
                    for w in joiners {
                        if !target.contains(&w) {
                            target.push(w);
                        }
                    }
                    target.sort_unstable();
                    self.durable.pending = Some(PendingOp { seq: None, target });
                    self.persist_fenced();
                }
                EpochCmd::QueryWitnesses {
                    epoch,
                    subject,
                    probe,
                    witnesses,
                } => {
                    let term = self.durable.term;
                    for w in witnesses {
                        self.rep.send(
                            EndpointId::Worker(w),
                            RtMsg::WitnessQuery {
                                subject,
                                epoch,
                                probe,
                                term,
                            },
                        );
                    }
                }
                EpochCmd::Admit { .. } => {
                    // Admission is effected by the warmup op's `Resume`:
                    // the joiner is already in the op target.
                }
                EpochCmd::Evict { subject, .. } => {
                    let prune = |target: &mut Vec<WorkerId>| target.retain(|w| *w != subject);
                    if let Some(p) = &mut self.durable.pending {
                        prune(&mut p.target);
                    }
                    match &mut self.durable.phase {
                        AmPhase::Transferring { target, .. } | AmPhase::Resuming { target, .. } => {
                            prune(target)
                        }
                        AmPhase::Steady => {}
                    }
                    self.reported.remove(&subject);
                    self.rejoining.remove(&subject);
                    self.coordinated.remove(&subject);
                    self.hb.forget(subject);
                    // Persist the pruned targets before the externally
                    // visible dismissal (persist-before-act).
                    if !self.persist_fenced() {
                        return;
                    }
                    self.rep.send(
                        EndpointId::Worker(subject),
                        RtMsg::Leave {
                            term: self.durable.term,
                        },
                    );
                }
                EpochCmd::Announce { epoch, phase } => {
                    self.durable.train_epoch = epoch;
                    self.durable.epoch_phase = phase;
                    if !self.persist_fenced() {
                        return;
                    }
                    let mut audience: BTreeSet<WorkerId> =
                        self.durable.members.iter().copied().collect();
                    match &self.durable.phase {
                        AmPhase::Transferring { target, .. } | AmPhase::Resuming { target, .. } => {
                            audience.extend(target.iter().copied());
                        }
                        AmPhase::Steady => {}
                    }
                    if let Some(p) = &self.durable.pending {
                        audience.extend(p.target.iter().copied());
                    }
                    let term = self.durable.term;
                    for w in audience {
                        if self.dead.contains(&w) {
                            continue;
                        }
                        self.rep.send(
                            EndpointId::Worker(w),
                            RtMsg::EpochAdvance { epoch, phase, term },
                        );
                    }
                }
            }
        }
    }

    fn run(mut self) {
        if self.epoch > 0 {
            // Takeover: the predecessor's inbox died with it. Broadcast the
            // new epoch so parked workers re-send `Coordinate` and joiners
            // re-send `Report` (the paper's re-solicitation on AM restart).
            let mut audience: BTreeSet<WorkerId> = self.durable.members.iter().copied().collect();
            match &self.durable.phase {
                AmPhase::Transferring { target, .. } | AmPhase::Resuming { target, .. } => {
                    audience.extend(target.iter().copied());
                }
                AmPhase::Steady => {}
            }
            if let Some(p) = &self.durable.pending {
                audience.extend(p.target.iter().copied());
            }
            for w in audience {
                self.rep.send(
                    EndpointId::Worker(w),
                    RtMsg::AmReset {
                        epoch: self.epoch,
                        term: self.durable.term,
                    },
                );
            }
        }
        loop {
            if self.ctrl.shutting_down() {
                return;
            }
            if self.fenced {
                return; // superseded: a persist was rejected by the fence
            }
            // A partitioned AM still computes, but cannot reach the
            // control quorum: it can neither refresh its lease (so the
            // watchdog elects a successor) nor observe the election. The
            // term fence at the store is what stops it from acting once
            // superseded.
            let isolated = self
                .rep
                .bus()
                .is_partitioned(EndpointId::Am, EndpointId::Controller);
            if !isolated {
                // Prove liveness; abdicate the moment the lease is lost or
                // a newer epoch exists (never act on a lapsed lease).
                if self.ctrl.keep_alive(self.lease).is_err() {
                    return;
                }
                if self.ctrl.epoch.load(Ordering::SeqCst) != self.epoch {
                    return;
                }
            }
            // Transport retries; a give-up means the peer is dead.
            for give_up in self.rep.tick() {
                if let EndpointId::Worker(w) = give_up.to {
                    self.declare_dead(w);
                }
            }
            // Heartbeat-based failure detection — on the bus clock, so the
            // detector ticks on the same axis as the lease and the retry
            // timers.
            let now = self.rep.time().now();
            for w in self.hb.dead(&self.live(), now) {
                self.declare_dead(w);
            }
            self.epoch_tick();
            if matches!(self.try_progress(), Step::Exit) {
                return;
            }
            if let Some((from, msg)) = self.rep.recv_timeout(self.cfg.tick()) {
                if let EndpointId::Worker(w) = from {
                    // Any traffic proves liveness, not just heartbeats.
                    let at = self.rep.time().now();
                    self.hb.note(w, at);
                }
                self.handle(msg);
            }
        }
    }

    fn handle(&mut self, msg: RtMsg) {
        match msg {
            RtMsg::AdjustTo { seq, target } => {
                if seq <= self.durable.seq_done {
                    // Duplicate of a completed op (AM failover replay).
                    self.rep.send(EndpointId::Controller, RtMsg::Ack { seq });
                } else if self.in_flight_seq() == Some(seq)
                    || self
                        .durable
                        .pending
                        .as_ref()
                        .is_some_and(|p| p.seq == Some(seq))
                {
                    // Already queued or executing: ignore the duplicate.
                } else {
                    let target: Vec<WorkerId> = target
                        .into_iter()
                        .filter(|w| !self.dead.contains(w))
                        .collect();
                    self.durable.pending = Some(PendingOp {
                        seq: Some(seq),
                        target,
                    });
                    if !self.persist_fenced() {
                        return;
                    }
                    // Step ① done: the AM owns the request; joiner reports
                    // (step ②) are what we wait for next.
                    let obs = Arc::clone(&self.ctrl.obs);
                    let now = obs.journal.now_us();
                    if let Some(trace) = obs.traces.phase_end(AdjustmentPhase::Request, now) {
                        obs.journal.emit_at(
                            now,
                            EventKind::PhaseEnded {
                                trace,
                                phase: AdjustmentPhase::Request,
                            },
                        );
                    }
                    if let Some(trace) = obs.traces.phase_start(AdjustmentPhase::Report, now) {
                        obs.journal.emit_at(
                            now,
                            EventKind::PhaseStarted {
                                trace,
                                phase: AdjustmentPhase::Report,
                            },
                        );
                    }
                }
            }
            RtMsg::Stop { seq } => {
                if seq <= self.durable.seq_done {
                    self.rep.send(EndpointId::Controller, RtMsg::Ack { seq });
                } else if self.durable.stopping != Some(seq) {
                    self.durable.stopping = Some(seq);
                    self.persist_fenced();
                }
            }
            RtMsg::Checkpoint { seq } if self.awaiting_checkpoint.is_none() => {
                self.checkpoint_req = Some(seq);
            }
            // Joiners re-announce at heartbeat cadence until admitted; only
            // the first delivery is a protocol event (the guard's insert
            // returns false for repeats, which then fall through harmlessly).
            RtMsg::Report { worker } if self.reported.insert(worker) => {
                let obs = Arc::clone(&self.ctrl.obs);
                let now = obs.journal.now_us();
                obs.traces.note_report(now);
                obs.journal
                    .emit_at(now, EventKind::WorkerReported { worker });
            }
            RtMsg::Coordinate { worker, iteration } if iteration > self.last_boundary => {
                let entry = self.coordinated.entry(worker).or_insert(iteration);
                if *entry < iteration {
                    *entry = iteration;
                }
            }
            RtMsg::TransferDone { src, dst } => {
                self.ctrl
                    .obs
                    .journal
                    .emit(EventKind::TransferDone { src, dst });
                if src == dst {
                    self.awaiting_checkpoint = None;
                } else {
                    self.outstanding.remove(&(src, dst));
                }
            }
            RtMsg::Rejoin {
                worker,
                term,
                iteration,
            } => self.handle_rejoin(worker, term, iteration),
            RtMsg::JoinRequest {
                worker,
                epoch: _,
                digest,
            } => self.handle_join_request(worker, digest),
            RtMsg::WitnessVote {
                witness,
                subject,
                epoch,
                admit,
                digest: _,
            } => self.handle_witness_vote(witness, subject, epoch, admit),
            RtMsg::Heartbeat { worker, iteration } => {
                // Liveness was noted in run(); the carried iteration feeds
                // the shared progress view, which is how the controller
                // tracks training progress when workers are remote
                // processes (the in-process telemetry map stays empty).
                let mut progress = self.ctrl.progress.lock();
                let e = progress.entry(worker).or_insert(iteration);
                *e = (*e).max(iteration);
            }
            _ => {}
        }
    }

    /// Admits (or defers) a crashed-and-restarted worker's `Rejoin`
    /// handshake. Admission is deferred — the worker re-announces on a
    /// timer — unless the AM is steady with nothing queued, so a rejoin
    /// can never interleave with an in-flight adjustment; a duplicated
    /// or reordered `Rejoin` envelope is absorbed by the `rejoining`
    /// set, admitting the worker exactly once. The presented
    /// credentials (`_term`, `_iteration`) are the crash incarnation's
    /// last knowledge; admission always replicates fresh state under
    /// the *current* term, so they are informational.
    fn handle_rejoin(&mut self, worker: WorkerId, _term: u64, _iteration: u64) {
        if self.rejoining.contains(&worker) {
            return; // duplicate envelope: already admitted
        }
        if !matches!(self.durable.phase, AmPhase::Steady)
            || self.durable.pending.is_some()
            || self.durable.stopping.is_some()
        {
            return; // busy: the worker's resend timer will try again
        }
        let mut target = self.durable.members.clone();
        if !target.contains(&worker) {
            // Declared dead and scaled out meanwhile: rejoin as a fresh
            // joiner (the Rejoin doubles as its readiness report).
            target.push(worker);
        }
        self.rejoining.insert(worker);
        self.reported.insert(worker);
        self.dead.remove(&worker);
        let now = self.rep.time().now();
        self.hb.note(worker, now);
        self.durable.pending = Some(PendingOp { seq: None, target });
        if !self.persist_fenced() {
            return;
        }
        self.ctrl.obs.journal.emit(EventKind::WorkerRejoin {
            worker,
            term: self.durable.term,
        });
    }

    fn in_flight_seq(&self) -> Option<u64> {
        match &self.durable.phase {
            AmPhase::Transferring { seq, .. } | AmPhase::Resuming { seq, .. } => *seq,
            AmPhase::Steady => None,
        }
    }

    /// A boundary is actionable when every live member is parked at the
    /// same iteration, newer than the last released boundary. Workers
    /// mid-`Rejoin` are exempt from the quorum: they are parked in the
    /// handshake, not at a boundary, and get their state replicated by
    /// the adjustment the survivors' boundary triggers.
    fn boundary_ready(&self) -> Option<u64> {
        let live: Vec<WorkerId> = self
            .live()
            .into_iter()
            .filter(|w| !self.rejoining.contains(w))
            .collect();
        let first = *self.coordinated.get(live.first()?)?;
        for w in &live[1..] {
            if *self.coordinated.get(w)? != first {
                return None;
            }
        }
        (first > self.last_boundary).then_some(first)
    }

    /// Drives the adjustment pipeline as far as it can go right now.
    fn try_progress(&mut self) -> Step {
        loop {
            if self.fenced {
                return Step::Exit;
            }
            match &self.durable.phase {
                AmPhase::Transferring { .. } => {
                    if !self.transfers_started {
                        // (Recovered incarnation.) Wait until AmReset
                        // replies re-establish the boundary, then re-derive
                        // and re-send the orders — transfers at a boundary
                        // are idempotent, so replaying is safe.
                        if self.boundary_ready().is_none() {
                            return Step::Continue;
                        }
                        self.start_transfers();
                        continue;
                    }
                    if !self.outstanding.is_empty() {
                        return Step::Continue; // waiting on TransferDone
                    }
                    if self.next_wave < self.transfer_waves.len() {
                        // The current wave drained: issue the next one.
                        // Link-conflicting transfers never overlap.
                        self.issue_next_wave();
                        continue;
                    }
                    // Witness gate: a warmup op's transfers are done, but
                    // the joiners' digests are still being audited by the
                    // sampled witnesses. Hold the resume until the epoch
                    // machine leaves `Warmup` (admitting or evicting every
                    // joiner) so an evicted joiner is pruned from the
                    // target before `Resume` fans out — an un-witnessed
                    // worker never trains.
                    if self
                        .machine
                        .as_ref()
                        .is_some_and(|m| m.phase() == EpochPhase::Warmup)
                    {
                        return Step::Continue;
                    }
                    let Some(boundary) = self.boundary_ready() else {
                        return Step::Continue;
                    };
                    let AmPhase::Transferring { target, seq } = self.durable.phase.clone() else {
                        unreachable!("matched above");
                    };
                    let target: Vec<WorkerId> = target
                        .into_iter()
                        .filter(|w| !self.dead.contains(w))
                        .collect();
                    if target.is_empty() {
                        // Everyone in the target died: drop the op.
                        self.durable.phase = AmPhase::Steady;
                        self.persist_fenced();
                        continue;
                    }
                    let generation = self.comm.generation() + 1;
                    self.durable.phase = AmPhase::Resuming {
                        target,
                        seq,
                        generation,
                    };
                    if !self.persist_fenced() {
                        return Step::Exit;
                    }
                    // Steps ③+④ done (replication drained at a coherent
                    // boundary); step ⑤ (adjust) begins.
                    let obs = Arc::clone(&self.ctrl.obs);
                    let now = obs.journal.now_us();
                    for phase in [AdjustmentPhase::Replicate, AdjustmentPhase::Coordinate] {
                        if let Some(trace) = obs.traces.phase_end(phase, now) {
                            obs.journal
                                .emit_at(now, EventKind::PhaseEnded { trace, phase });
                        }
                    }
                    if let Some(trace) = obs.traces.phase_start(AdjustmentPhase::Adjust, now) {
                        obs.journal.emit_at(
                            now,
                            EventKind::PhaseStarted {
                                trace,
                                phase: AdjustmentPhase::Adjust,
                            },
                        );
                    }
                    if self.crash_if(CrashPoint::OnResume) {
                        return Step::Exit; // die without cleanup
                    }
                    self.resume_wave(boundary);
                }
                AmPhase::Resuming { .. } => {
                    // (Recovered incarnation: the resume wave never went
                    // out.) Once the boundary is re-established, replay it.
                    let Some(boundary) = self.boundary_ready() else {
                        return Step::Continue;
                    };
                    self.resume_wave(boundary);
                }
                AmPhase::Steady => {
                    // A pending stop with no live members can never see a
                    // boundary again (the quorum is empty — typically a
                    // successor elected mid-shutdown after every worker
                    // already left); serve it directly so the controller's
                    // ack is not stranded behind a vacuous boundary wait.
                    if let Some(seq) = self.durable.stopping {
                        if self.live().is_empty() {
                            return self.execute_stop(seq);
                        }
                    }
                    let Some(boundary) = self.boundary_ready() else {
                        return Step::Continue;
                    };
                    let live = self.live();
                    if self.awaiting_checkpoint.is_some() {
                        return Step::Continue; // snapshot in flight
                    }
                    if let Some(seq) = self.checkpoint_req.take() {
                        let rank0 = live[0];
                        self.rep.send(
                            EndpointId::Worker(rank0),
                            RtMsg::CheckpointOrder {
                                seq,
                                term: self.durable.term,
                            },
                        );
                        self.awaiting_checkpoint = Some(seq);
                        return Step::Continue;
                    }
                    if let Some(seq) = self.durable.stopping {
                        return self.execute_stop(seq);
                    }
                    if let Some(op) = self.durable.pending.clone() {
                        let ready = op
                            .target
                            .iter()
                            .filter(|w| !self.durable.members.contains(w))
                            .all(|w| self.reported.contains(w));
                        if ready {
                            self.durable.pending = None;
                            self.durable.phase = AmPhase::Transferring {
                                target: op.target,
                                seq: op.seq,
                            };
                            if !self.persist_fenced() {
                                return Step::Exit;
                            }
                            // Step ② done, step ③ (coordinate at the
                            // boundary) begins.
                            let obs = Arc::clone(&self.ctrl.obs);
                            let now = obs.journal.now_us();
                            if let Some(trace) = obs.traces.phase_end(AdjustmentPhase::Report, now)
                            {
                                obs.journal.emit_at(
                                    now,
                                    EventKind::PhaseEnded {
                                        trace,
                                        phase: AdjustmentPhase::Report,
                                    },
                                );
                            }
                            if let Some(trace) =
                                obs.traces.phase_start(AdjustmentPhase::Coordinate, now)
                            {
                                obs.journal.emit_at(
                                    now,
                                    EventKind::PhaseStarted {
                                        trace,
                                        phase: AdjustmentPhase::Coordinate,
                                    },
                                );
                            }
                            if self.crash_if(CrashPoint::OnAdjustStart) {
                                return Step::Exit; // die without cleanup
                            }
                            self.start_transfers();
                            continue;
                        }
                    }
                    // Nothing to adjust: release the boundary. The release
                    // is an externally visible action, so it goes through
                    // the persist-before-act fence first — a superseded
                    // incarnation abdicates here instead of racing its
                    // successor's release.
                    if !self.persist_fenced() {
                        return Step::Exit;
                    }
                    self.ctrl.obs.journal.emit(EventKind::BoundaryReleased {
                        boundary,
                        world: live.len() as u32,
                        term: self.durable.term,
                    });
                    for &w in &live {
                        self.rep.send(
                            EndpointId::Worker(w),
                            RtMsg::Proceed {
                                boundary,
                                term: self.durable.term,
                            },
                        );
                    }
                    self.coordinated.clear();
                    self.last_boundary = boundary;
                    // Plain training boundaries pace the epoch: adjustment
                    // boundaries (resume_wave) deliberately don't count.
                    self.with_machine(|m, now, j| m.boundary_released(now, j));
                    return Step::Continue;
                }
            }
        }
    }

    /// Step ④ kickoff: plan replication along the topology and issue the
    /// first wave of transfer orders; the remaining waves go out as each
    /// wave's `TransferDone`s drain (`issue_next_wave`), so transfers the
    /// planner found to contend on a link (shared source/destination GPU,
    /// same-node QPI/L3 or NIC edge) are serialized while disjoint ones
    /// overlap. Idempotent — a recovered AM calls it again.
    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (validated placements)
    fn start_transfers(&mut self) {
        self.transfers_started = true;
        self.outstanding.clear();
        self.transfer_waves.clear();
        self.next_wave = 0;
        let AmPhase::Transferring { target, .. } = &self.durable.phase else {
            return;
        };
        let joining: Vec<WorkerId> = target
            .iter()
            .copied()
            .filter(|w| {
                (!self.durable.members.contains(w) || self.rejoining.contains(w))
                    && !self.dead.contains(w)
            })
            .collect();
        if joining.is_empty() {
            // Nothing to replicate (pure scale-in / failure eviction):
            // step ④ still opens and closes on the record, as an
            // explicitly empty plan.
            let obs = Arc::clone(&self.ctrl.obs);
            obs.traces.set_plan(0, 0);
            let now = obs.journal.now_us();
            obs.journal.emit_at(
                now,
                EventKind::ReplicationPlanned {
                    waves: 0,
                    transfers: 0,
                },
            );
            if let Some(trace) = obs.traces.phase_start(AdjustmentPhase::Replicate, now) {
                obs.journal.emit_at(
                    now,
                    EventKind::PhaseStarted {
                        trace,
                        phase: AdjustmentPhase::Replicate,
                    },
                );
            }
            return;
        }
        // Rejoiners hold void state — they are destinations, never sources.
        let sources: Vec<GpuId> = self
            .live()
            .iter()
            .filter(|w| !self.rejoining.contains(w))
            .map(|w| GpuId(w.0))
            .collect();
        let dests: Vec<GpuId> = joining.iter().map(|w| GpuId(w.0)).collect();
        let plan = ReplicationPlanner::new(&self.topology)
            .plan(&sources, &dests)
            .expect("valid placements");
        let transfers = plan.transfers();
        self.transfer_waves = plan
            .waves()
            .iter()
            .map(|wave| {
                wave.iter()
                    .map(|&i| (WorkerId(transfers[i].src.0), WorkerId(transfers[i].dst.0)))
                    .collect()
            })
            .collect();
        // Step ④ (replicate) opens with the planner's schedule on record.
        let waves = self.transfer_waves.len() as u32;
        let total = transfers.len() as u32;
        let obs = Arc::clone(&self.ctrl.obs);
        obs.traces.set_plan(waves, total);
        let now = obs.journal.now_us();
        obs.journal.emit_at(
            now,
            EventKind::ReplicationPlanned {
                waves,
                transfers: total,
            },
        );
        if let Some(trace) = obs.traces.phase_start(AdjustmentPhase::Replicate, now) {
            obs.journal.emit_at(
                now,
                EventKind::PhaseStarted {
                    trace,
                    phase: AdjustmentPhase::Replicate,
                },
            );
        }
        self.issue_next_wave();
    }

    /// Issues the next wave of transfer orders, if any.
    fn issue_next_wave(&mut self) {
        let Some(wave) = self.transfer_waves.get(self.next_wave).cloned() else {
            return;
        };
        self.ctrl.obs.journal.emit(EventKind::WaveIssued {
            wave: self.next_wave as u32,
            transfers: wave.len() as u32,
        });
        self.next_wave += 1;
        for (src, dst) in wave {
            self.outstanding.insert((src, dst));
            self.rep.send(
                EndpointId::Worker(src),
                RtMsg::TransferOrder {
                    dst,
                    term: self.durable.term,
                },
            );
        }
    }

    /// Step ⑤: reconfigure the communication group (unless a previous
    /// incarnation already did) and broadcast Leave/Resume; completes the
    /// in-flight operation.
    fn resume_wave(&mut self, boundary: u64) {
        let AmPhase::Resuming {
            target,
            seq,
            generation,
        } = self.durable.phase.clone()
        else {
            return;
        };
        let target: Vec<WorkerId> = target
            .into_iter()
            .filter(|w| !self.dead.contains(w))
            .collect();
        if target.is_empty() {
            self.durable.phase = AmPhase::Steady;
            self.persist_fenced();
            return;
        }
        // Fence probe (persist-before-act): a superseded incarnation
        // must learn it *here*, before it reconfigures the collective or
        // sends a single Leave/Resume — this is what stops a
        // partitioned-but-alive old AM from split-braining the wave.
        if !self.persist_fenced() {
            return;
        }
        if self.comm.generation() < generation {
            let g = self.comm.reconfigure(target.iter().copied());
            debug_assert_eq!(g, generation, "generation replay diverged");
        }
        for &w in &self.durable.members {
            if !target.contains(&w) && !self.dead.contains(&w) {
                self.rep.send(
                    EndpointId::Worker(w),
                    RtMsg::Leave {
                        term: self.durable.term,
                    },
                );
            }
        }
        for &w in &target {
            self.rep.send(
                EndpointId::Worker(w),
                RtMsg::Resume {
                    generation,
                    term: self.durable.term,
                },
            );
        }
        self.durable.members = target.clone();
        if let Some(m) = self.machine.as_mut() {
            // Controller-driven adjustments (scale_out/in, migrate,
            // failure scale-in) bypass the join pipeline; force-sync the
            // epoch machine's membership view to the resumed cohort.
            m.set_members(&target);
        }
        *self.ctrl.members.lock() = target;
        match seq {
            Some(s) => {
                self.durable.seq_done = self.durable.seq_done.max(s);
            }
            None => {
                // Failure-driven (or rejoin-driven) adjustment: no
                // controller op to ack.
                self.metrics.failure_scale_ins.inc();
            }
        }
        self.durable.phase = AmPhase::Steady;
        self.persist_fenced();
        // Step ⑤ done: close the span (idempotent across failovers).
        let world = self.durable.members.len() as u32;
        let obs = Arc::clone(&self.ctrl.obs);
        let now = obs.journal.now_us();
        if let Some(trace) = obs.traces.phase_end(AdjustmentPhase::Adjust, now) {
            obs.journal.emit_at(
                now,
                EventKind::PhaseEnded {
                    trace,
                    phase: AdjustmentPhase::Adjust,
                },
            );
        }
        if let Some(trace) = obs.traces.complete(generation, world, now) {
            obs.journal.emit_at(
                now,
                EventKind::AdjustmentCompleted {
                    trace,
                    generation,
                    world,
                },
            );
        }
        // Only after the span is closed may the controller unblock —
        // acking first would let the *next* adjustment race `begin`
        // against this trace's `complete` and fold into it.
        if let Some(s) = seq {
            self.rep.send(EndpointId::Controller, RtMsg::Ack { seq: s });
        }
        self.reported.clear();
        self.rejoining.clear();
        self.coordinated.clear();
        self.outstanding.clear();
        self.transfer_waves.clear();
        self.next_wave = 0;
        self.transfers_started = false;
        self.last_boundary = boundary;
    }

    /// Serves `Stop{seq}` at a boundary: everyone leaves, the controller
    /// gets its ack, the lease is surrendered cleanly.
    fn execute_stop(&mut self, seq: u64) -> Step {
        for &w in &self.live() {
            self.rep.send(
                EndpointId::Worker(w),
                RtMsg::Leave {
                    term: self.durable.term,
                },
            );
        }
        // Drain until every Leave is transport-acked (workers only exit
        // after acking), so no survivor can be stranded mid-park.
        self.drain_pending(Duration::from_secs(10));
        self.durable.seq_done = self.durable.seq_done.max(seq);
        self.durable.stopping = None;
        if !self.persist_fenced() {
            return Step::Exit; // the successor completes the stop
        }
        self.rep.send(EndpointId::Controller, RtMsg::Ack { seq });
        self.drain_pending(Duration::from_secs(5));
        // Clean exit: surrender the lease so the watchdog stays quiet.
        *self.ctrl.current_lease.lock() = None;
        self.ctrl.leases.lock().revoke(self.lease);
        Step::Exit
    }

    fn drain_pending(&mut self, budget: Duration) {
        let time = self.rep.time().clone();
        let deadline = time.deadline_after(budget);
        while self.rep.pending() > 0 && time.now() < deadline {
            // Draining can outlast the lease under chaos (every Leave may
            // need its full retry budget), and a lapsed lease mid-stop
            // triggers a pointless succession; keep proving liveness. A
            // failed renewal means a successor already owns the job — stop
            // draining and let the fence abort whatever comes next.
            if self.ctrl.keep_alive(self.lease).is_err() {
                return;
            }
            for give_up in self.rep.tick() {
                if let EndpointId::Worker(w) = give_up.to {
                    self.declare_dead(w);
                }
            }
            let _ = self.rep.recv_timeout(Duration::from_millis(5));
        }
    }

    /// The failure detector's verdict: evict from the data plane so no
    /// survivor blocks, then fold the death into whatever operation is in
    /// (or next in) flight — or start a failure-driven scale-in.
    fn declare_dead(&mut self, w: WorkerId) {
        let is_member = self.durable.members.contains(&w);
        let in_target = match &self.durable.phase {
            AmPhase::Transferring { target, .. } | AmPhase::Resuming { target, .. } => {
                target.contains(&w)
            }
            AmPhase::Steady => false,
        } || self
            .durable
            .pending
            .as_ref()
            .is_some_and(|p| p.target.contains(&w));
        if !is_member && !in_target {
            return; // already out of the job (e.g. post-Leave give-up)
        }
        // Fence probe (persist-before-act): a superseded incarnation —
        // e.g. a partitioned old AM whose resends to unreachable workers
        // just gave up — must not evict a live worker from the
        // collective on behalf of a job it no longer owns.
        if !self.persist_fenced() {
            return;
        }
        if !self.dead.insert(w) {
            return;
        }
        self.ctrl
            .obs
            .journal
            .emit(EventKind::WorkerDeclaredDead { worker: w });
        // Unblock the survivors immediately: remove the victim (and its
        // stale contribution) from the collective.
        self.comm.evict(w);
        self.coordinated.remove(&w);
        self.reported.remove(&w);
        self.rejoining.remove(&w);
        self.hb.forget(w);
        // If the victim was serving (or scheduled to serve) a transfer as
        // its source, its `TransferDone` will never come: drop the stale
        // schedule and let the `Transferring` recovery path re-plan from
        // the survivors once the boundary is re-established. A victim
        // that was only a *destination* is simply dropped from the wave.
        let was_src = self.outstanding.iter().any(|&(s, _)| s == w)
            || self
                .transfer_waves
                .iter()
                .skip(self.next_wave)
                .flatten()
                .any(|&(s, _)| s == w);
        if was_src {
            self.outstanding.clear();
            self.transfer_waves.clear();
            self.next_wave = 0;
            self.transfers_started = false;
        } else {
            self.outstanding.retain(|&(_, d)| d != w);
            for wave in &mut self.transfer_waves {
                wave.retain(|&(_, d)| d != w);
            }
        }
        if let Some(p) = &mut self.durable.pending {
            p.target.retain(|x| *x != w);
        }
        match &mut self.durable.phase {
            AmPhase::Transferring { target, .. } | AmPhase::Resuming { target, .. } => {
                target.retain(|x| *x != w);
            }
            AmPhase::Steady => {
                if is_member && self.durable.pending.is_none() && self.durable.stopping.is_none() {
                    let live = self.live();
                    if !live.is_empty() {
                        // Failure-driven scale-in around the victim. Open a
                        // trace for it (folds into the active one if a
                        // controller adjustment is already in flight).
                        let target_world = live.len() as u32;
                        let obs = Arc::clone(&self.ctrl.obs);
                        let at = obs.journal.now_us();
                        let (trace, fresh) =
                            obs.traces
                                .begin(TraceKind::FailureScaleIn, None, target_world, at);
                        if fresh {
                            obs.journal.emit_at(
                                at,
                                EventKind::AdjustmentRequested {
                                    trace,
                                    kind: TraceKind::FailureScaleIn,
                                    seq: None,
                                    target_world,
                                },
                            );
                            obs.journal.emit_at(
                                at,
                                EventKind::PhaseStarted {
                                    trace,
                                    phase: AdjustmentPhase::Request,
                                },
                            );
                            // A failure-driven op has no controller
                            // round-trip and no joiners: steps ① and ②
                            // are zero-length at detection time, but the
                            // journal still carries the full bracket.
                            obs.traces.phase_end(AdjustmentPhase::Request, at);
                            obs.journal.emit_at(
                                at,
                                EventKind::PhaseEnded {
                                    trace,
                                    phase: AdjustmentPhase::Request,
                                },
                            );
                            obs.traces.phase_start(AdjustmentPhase::Report, at);
                            obs.journal.emit_at(
                                at,
                                EventKind::PhaseStarted {
                                    trace,
                                    phase: AdjustmentPhase::Report,
                                },
                            );
                        }
                        self.durable.pending = Some(PendingOp {
                            seq: None,
                            target: live,
                        });
                    }
                }
            }
        }
        self.persist_fenced();
        // The epoch machine tracks the loss too: a dead pending joiner is
        // forgotten, a dead warmup witness is pruned from every vote set,
        // and a mid-`Train` death below `min_members` aborts the epoch.
        self.with_machine(|m, now, j| m.member_left(w, now, j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_training_is_consistent() {
        let mut rt = ElasticRuntime::builder().workers(3).start().unwrap();
        rt.run_until_iteration(25);
        let _ = &mut rt;
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 3);
        assert!(report.states_consistent());
        assert!(report.workers.values().all(|v| v.iteration >= 25));
    }

    #[test]
    fn scale_out_preserves_state() {
        let mut rt = ElasticRuntime::builder().workers(2).start().unwrap();
        rt.run_until_iteration(10);
        rt.scale_out(2);
        assert_eq!(rt.members().len(), 4);
        rt.run_until_iteration(30);
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 4);
        assert!(report.states_consistent(), "joiners diverged: {report:?}");
        assert_eq!(report.adjustments, 1);
    }

    #[test]
    fn scale_in_releases_workers() {
        let mut rt = ElasticRuntime::builder().workers(4).start().unwrap();
        rt.run_until_iteration(10);
        rt.scale_in(2);
        assert_eq!(rt.members().len(), 2);
        rt.run_until_iteration(25);
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 2);
        assert!(report.states_consistent());
        // The removed workers stopped early but left cleanly.
        let stopped: Vec<_> = report.workers.values().filter(|v| !v.alive).collect();
        assert_eq!(stopped.len(), 4); // 2 scaled-in + 2 shutdown... all dead
    }

    #[test]
    fn migration_moves_to_fresh_workers() {
        let mut rt = ElasticRuntime::builder().workers(2).start().unwrap();
        rt.run_until_iteration(10);
        let before: Vec<WorkerId> = rt.members().to_vec();
        rt.migrate();
        let after: Vec<WorkerId> = rt.members().to_vec();
        assert!(before.iter().all(|w| !after.contains(w)));
        rt.run_until_iteration(25);
        let report = rt.shutdown();
        assert!(report.states_consistent());
    }

    #[test]
    fn repeated_adjustments_compose() {
        let mut rt = ElasticRuntime::builder().workers(2).start().unwrap();
        rt.run_until_iteration(5);
        rt.scale_out(2);
        rt.run_until_iteration(15);
        rt.scale_in(1);
        rt.run_until_iteration(25);
        rt.scale_out(3);
        rt.run_until_iteration(40);
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 6);
        assert_eq!(report.adjustments, 3);
        assert!(report.states_consistent());
    }

    #[test]
    fn checkpoint_restore_is_bit_exact() {
        use crate::worker::simulate_training;
        let cfg = RuntimeConfig::small(3);
        let mut a = ElasticRuntime::builder().config(cfg).start().unwrap();
        a.run_until_iteration(20);
        let cp = a.checkpoint();
        let _ = a.shutdown();

        // The live state matches a single-threaded reference replay.
        let (expect_params, expect_momentum, expect_cursor) = simulate_training(
            3,
            cp.iteration,
            cfg.param_elems,
            cfg.learning_rate,
            cfg.total_batch,
        );
        assert_eq!(*cp.params, expect_params, "live params diverged");
        assert_eq!(*cp.momentum, expect_momentum, "live momentum diverged");
        assert_eq!(cp.data_cursor, expect_cursor);

        // A restored job continues bit-exactly.
        let mut b = ElasticRuntime::builder()
            .config(cfg)
            .restore(&cp)
            .start()
            .unwrap();
        b.run_until_iteration(cp.iteration + 10);
        let cp2 = b.checkpoint();
        let (expect2, _, _) = simulate_training(
            3,
            cp2.iteration,
            cfg.param_elems,
            cfg.learning_rate,
            cfg.total_batch,
        );
        assert_eq!(*cp2.params, expect2, "restored run diverged");
        let report = b.shutdown();
        assert!(report.states_consistent());
    }

    #[test]
    fn live_training_matches_reference_replay() {
        use crate::worker::simulate_training;
        // Even without any checkpointing, the whole multi-threaded
        // pipeline (gradients, deterministic allreduce, optimizer) is
        // bit-identical to the sequential reference.
        let cfg = RuntimeConfig::small(4);
        let mut rt = ElasticRuntime::builder().config(cfg).start().unwrap();
        rt.run_until_iteration(15);
        let cp = rt.checkpoint();
        let _ = rt.shutdown();
        let (expect, _, _) = simulate_training(
            4,
            cp.iteration,
            cfg.param_elems,
            cfg.learning_rate,
            cfg.total_batch,
        );
        assert_eq!(*cp.params, expect);
    }

    #[test]
    fn virtual_time_runs_the_full_pipeline() {
        let mut rt = ElasticRuntime::builder()
            .workers(2)
            .time(TimeSource::virtual_seeded(17))
            .start()
            .unwrap();
        rt.run_until_iteration(10);
        rt.scale_out(1);
        rt.run_until_iteration(20);
        let report = rt.shutdown();
        assert_eq!(report.final_world_size, 3);
        assert!(report.states_consistent());
        assert!(report.traces.iter().all(|t| t.is_well_formed()));
    }

    /// Same seed ⇒ same thread schedule ⇒ byte-identical journal.
    #[test]
    fn same_seed_produces_identical_journals() {
        fn journal(seed: u64) -> Vec<String> {
            let mut rt = ElasticRuntime::builder()
                .workers(2)
                .time(TimeSource::virtual_seeded(seed))
                .start()
                .unwrap();
            rt.run_until_iteration(10);
            rt.scale_out(2);
            rt.run_until_iteration(20);
            rt.scale_in(1);
            rt.run_until_iteration(30);
            let report = rt.shutdown();
            report.events.iter().map(|e| format!("{e:?}")).collect()
        }
        let a = journal(23);
        let b = journal(23);
        assert_eq!(a, b, "one seed, two different histories");
        assert!(!a.is_empty());
    }

    #[test]
    fn data_cursor_replicates_exactly() {
        let mut rt = ElasticRuntime::builder().workers(2).start().unwrap();
        rt.run_until_iteration(10);
        rt.scale_out(1);
        rt.run_until_iteration(20);
        let snap = rt.snapshot();
        let report = rt.shutdown();
        assert!(report.states_consistent());
        // All live workers agree on the serial cursor: iteration * batch.
        for v in snap.values().filter(|v| v.alive) {
            assert_eq!(v.data_cursor, v.iteration * 128);
        }
    }
}
