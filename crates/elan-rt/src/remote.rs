//! Remote-worker entry point: one OS process per worker.
//!
//! In multi-process mode the coordinator process hosts the application
//! master, controller, and watchdog over a listening [`SocketTransport`]
//! (built with [`ElasticRuntime::builder`]`.transport(..).remote_workers(true)`),
//! while each worker is a separate OS process that dials in with
//! [`run_remote_worker`] and runs the *unchanged* [`run_worker`] loop —
//! the worker cannot tell whether its [`ReliableEndpoint`] is backed by
//! in-process channels or a socket.
//!
//! What a remote worker assembles locally:
//!
//! - a [`SocketTransport`] client dialed at the coordinator's address,
//!   wrapped in a [`Bus`] — control messages travel as CRC-framed wire
//!   envelopes, and the reliable layer's resend/dedup masks reconnects;
//! - its own [`Obs`] journal and real-time [`TimeSource`] (virtual time
//!   cannot cross a process boundary; the socket transport rejects it);
//! - a private [`SharedControl`]: crash injection, leases, and the
//!   durable AM record are coordinator-side concerns, so the worker's
//!   copy stays inert — `worker_crashed` never fires remotely;
//! - a **solo** [`CommGroup`] holding only itself. The control plane
//!   (reports, coordination, state replication, rejoin) runs across
//!   processes; the data-plane allreduce stays process-local, so each
//!   remote worker averages only its own gradient. Cross-process
//!   collectives are out of scope for the transport layer (DESIGN.md
//!   §15).
//!
//! The process exits when [`run_worker`] returns — on the AM's `Leave`
//! (clean shutdown or scale-in), or on eviction from the collective
//! group.
//!
//! [`ElasticRuntime::builder`]: crate::runtime::ElasticRuntime::builder

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use elan_core::state::WorkerId;

use crate::bus::{Bus, EndpointId};
use crate::comm::{CommGroup, TuningProfile};
use crate::liveness::SharedControl;
use crate::obs::{Obs, DEFAULT_RING_CAPACITY};
use crate::reliable::ReliableEndpoint;
use crate::runtime::RuntimeConfig;
use crate::time::TimeSource;
use crate::transport::{SocketTransport, Transport};
use crate::worker::{run_worker, Telemetry, WorkerConfig, WorkerRole, WorkerView};

/// How a remote worker process enters the job — the CLI-expressible
/// subset of [`WorkerRole`] (a `Restored` worker carries whole state
/// buffers and only makes sense in-process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteRole {
    /// Present at job start: begins training immediately.
    Founding,
    /// Launched by a scale-out: announces itself and waits for state.
    Joining,
    /// Restarted after a crash: presents the crashed incarnation's
    /// last-known fencing term and boundary iteration.
    Rejoin {
        /// Fencing term the worker last observed before crashing.
        term: u64,
        /// Boundary iteration of the last state it had applied.
        iteration: u64,
    },
}

impl RemoteRole {
    /// Parses the bin-level role syntax: `founding`, `joining`, or
    /// `rejoin:<term>:<iteration>`.
    pub fn parse(s: &str) -> Option<RemoteRole> {
        match s {
            "founding" => Some(RemoteRole::Founding),
            "joining" => Some(RemoteRole::Joining),
            _ => {
                let rest = s.strip_prefix("rejoin:")?;
                let (term, iteration) = rest.split_once(':')?;
                Some(RemoteRole::Rejoin {
                    term: term.parse().ok()?,
                    iteration: iteration.parse().ok()?,
                })
            }
        }
    }

    fn into_worker_role(self) -> WorkerRole {
        match self {
            RemoteRole::Founding => WorkerRole::Founding,
            RemoteRole::Joining => WorkerRole::Joining,
            RemoteRole::Rejoin { term, iteration } => WorkerRole::Rejoin { term, iteration },
        }
    }
}

/// Dials the coordinator at `addr` (`tcp:host:port` or `unix:/path`),
/// assembles a process-local runtime harness around the socket, and runs
/// the worker loop until the job tells it to leave.
///
/// Blocks for the lifetime of the worker. Returns the worker's final
/// [`WorkerView`] (or `None` if it exited before publishing telemetry —
/// e.g. a joiner turned away by a `Leave` during admission).
///
/// `cfg` must agree with the coordinator's [`RuntimeConfig`] on the
/// training-shape fields (`param_elems`, `coordination_interval`,
/// `learning_rate`, `total_batch`, `replication_chunk_elems`); the
/// timing fields only pace this process's own loops.
pub fn run_remote_worker(
    addr: &str,
    id: WorkerId,
    cfg: RuntimeConfig,
    role: RemoteRole,
) -> io::Result<Option<WorkerView>> {
    let transport: Arc<dyn Transport> = Arc::new(SocketTransport::connect(addr)?);
    let time = TimeSource::real();
    // Local observability: the worker journals its own view (snapshot
    // applies, dead letters) — the coordinator's journal records the
    // job-level story.
    let obs = Obs::with_time(DEFAULT_RING_CAPACITY, Vec::new(), time.clone());
    // Attach before register: endpoints capture the clock at
    // registration, and the bus caches journal/time when wrapped.
    transport.attach(Some(Arc::clone(&obs.journal)), time.clone());
    let bus = Bus::with_transport(transport);
    let ctrl = Arc::new(SharedControl::with_time(
        Duration::from_millis(cfg.lease_ttl_ms),
        obs,
        time.clone(),
    ));
    let profile = TuningProfile::for_time(&time);
    let comm = Arc::new(CommGroup::with_tuning([id], cfg.param_elems, profile, None));
    comm.set_journal(Arc::clone(&ctrl.obs.journal));
    comm.set_time(time.clone());
    comm.set_metrics(&ctrl.obs.registry);
    let telemetry: Telemetry = Arc::new(Mutex::new(HashMap::new()));
    let rep = ReliableEndpoint::new(
        bus.clone(),
        bus.register(EndpointId::Worker(id)),
        16 + id.0,
        Duration::from_millis(cfg.retry_timeout_ms),
        None, // workers retry forever; the AM decides who is dead
        Arc::clone(&ctrl.metrics),
    );
    let wcfg = WorkerConfig {
        id,
        param_elems: cfg.param_elems,
        coordination_interval: cfg.coordination_interval,
        learning_rate: cfg.learning_rate,
        total_batch: cfg.total_batch,
        hb_period: Duration::from_millis(cfg.hb_period_ms),
        tick: Duration::from_millis(cfg.tick_ms),
        replication_chunk_elems: cfg.replication_chunk_elems,
        compute: Duration::from_micros(cfg.compute_us),
    };
    run_worker(
        wcfg,
        rep,
        comm,
        Arc::clone(&telemetry),
        role.into_worker_role(),
        ctrl,
    );
    bus.unregister(EndpointId::Worker(id));
    let view = telemetry.lock().get(&id).copied();
    Ok(view)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_syntax_round_trips() {
        assert_eq!(RemoteRole::parse("founding"), Some(RemoteRole::Founding));
        assert_eq!(RemoteRole::parse("joining"), Some(RemoteRole::Joining));
        assert_eq!(
            RemoteRole::parse("rejoin:3:40"),
            Some(RemoteRole::Rejoin {
                term: 3,
                iteration: 40
            })
        );
        for bad in [
            "",
            "found",
            "rejoin",
            "rejoin:3",
            "rejoin:x:40",
            "rejoin:3:",
        ] {
            assert_eq!(RemoteRole::parse(bad), None, "{bad:?} must not parse");
        }
    }
}
