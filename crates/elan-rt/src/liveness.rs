//! Liveness machinery for the live runtime: the AM lease, the durable AM
//! state record, and the worker heartbeat monitor.
//!
//! The design follows Elan §V-D: the application master persists every
//! state transition to a [`ReplicatedStore`] *before* acting on it, and
//! proves its own liveness by refreshing a lease in a [`LeaseManager`]
//! shared with a watchdog. When the lease lapses — because the AM thread
//! died or was deliberately crashed by a test — the watchdog elects a
//! replacement AM at a higher epoch, which reads the durable record back
//! and resumes whatever adjustment was in flight.
//!
//! Workers prove their liveness with periodic heartbeats; the AM-side
//! [`HeartbeatMonitor`] turns missed heartbeats into failure-driven
//! scale-in decisions.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use elan_core::lease::{LeaseId, LeaseManager, LeaseState};
use elan_core::protocol::EpochPhase;
use elan_core::state::WorkerId;
use elan_core::store::ReplicatedStore;
use elan_sim::{SimDuration, SimTime};

use crate::obs::{EventKind, Obs};
use crate::reliable::RtMetrics;
use crate::time::{std_to_sim, TimeSource};

/// The store key under which the live AM persists its durable record.
pub const AM_STORE_KEY: &str = "am/rt";

/// Where an armed AM crash fires (test hook for recovery scenarios).
///
/// The runtime's [`arm_am_crash`](crate::ElasticRuntime::arm_am_crash)
/// plants one of these; the AM thread checks the flag at the matching
/// point of its adjustment pipeline and, if set, simply returns — without
/// revoking its lease — so the watchdog must notice the silence and elect
/// a replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die right after persisting `Transferring`, before sending any
    /// transfer orders: the replacement must re-derive and re-send them.
    OnAdjustStart,
    /// Die right after persisting `Resuming`, before sending
    /// `Resume`/`Leave`: the replacement must re-issue the resume wave.
    OnResume,
    /// Worker-side: `worker` dies at its first coordination boundary at or
    /// past `iteration` — after the SGD step, *before* sending
    /// `Coordinate`. Survivors have the complete reduced state of that
    /// boundary, so a restarted incarnation can be re-fed bit-identical
    /// state via the `Rejoin` handshake. Armed through
    /// [`crash_worker_at`](crate::ElasticRuntime::crash_worker_at), not
    /// `arm_am_crash`.
    WorkerAtBoundary {
        /// The victim.
        worker: WorkerId,
        /// Crash at the first boundary whose iteration is ≥ this.
        iteration: u64,
    },
}

/// What stage of an adjustment the durable AM record is in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmPhase {
    /// No adjustment in flight.
    Steady,
    /// Transfer orders are (about to be) outstanding for a move to
    /// `target`. `seq: None` marks a failure-driven adjustment with no
    /// controller op to acknowledge.
    Transferring {
        /// The membership being moved to.
        target: Vec<WorkerId>,
        /// Controller op being served, if any.
        seq: Option<u64>,
    },
    /// State transfer finished; the resume wave (`Leave` + `Resume`) for
    /// comm-group `generation` is (about to be) outstanding.
    Resuming {
        /// The membership being moved to.
        target: Vec<WorkerId>,
        /// Controller op being served, if any.
        seq: Option<u64>,
        /// The comm-group generation workers must resume into.
        generation: u64,
    },
}

/// A controller-requested (or failure-driven) adjustment not yet started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingOp {
    /// Controller op sequence to acknowledge, or `None` for an internal
    /// failure-driven adjustment.
    pub seq: Option<u64>,
    /// The membership to adjust to.
    pub target: Vec<WorkerId>,
}

/// Everything a replacement AM needs to take over mid-flight.
///
/// The AM persists this record to the [`ReplicatedStore`] *before* every
/// externally visible action, so the record is always at or ahead of the
/// cluster's observed state and replaying from it is safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmDurable {
    /// The epoch of the AM that last wrote the record.
    pub epoch: u64,
    /// Monotonic fencing term: bumped (via CAS) by every AM incarnation
    /// before it acts. Writes carrying an older term are rejected by
    /// [`SharedControl::persist`], so a partitioned predecessor cannot
    /// clobber the record after a takeover.
    pub term: u64,
    /// Current active membership.
    pub members: Vec<WorkerId>,
    /// Adjustment stage.
    pub phase: AmPhase,
    /// Next adjustment waiting behind the in-flight one.
    pub pending: Option<PendingOp>,
    /// A `Stop{seq}` being served, if any.
    pub stopping: Option<u64>,
    /// Highest controller op sequence fully completed (for idempotent
    /// re-acknowledgement of duplicate ops).
    pub seq_done: u64,
    /// Open-membership training epoch (DESIGN.md §17); 0 when the epoch
    /// machine is off.
    pub train_epoch: u64,
    /// Phase of the training epoch, persisted so a successor AM can
    /// rebuild its [`EpochMachine`](crate::epoch::EpochMachine).
    pub epoch_phase: EpochPhase,
}

impl AmDurable {
    /// A fresh record for a founding membership.
    pub fn founding(members: Vec<WorkerId>) -> Self {
        AmDurable {
            epoch: 0,
            term: 0,
            members,
            phase: AmPhase::Steady,
            pending: None,
            stopping: None,
            seq_done: 0,
            train_epoch: 0,
            epoch_phase: EpochPhase::WaitingForMembers,
        }
    }
}

/// Control-plane state shared by the controller, AM, watchdog, and tests.
///
/// This is the "etcd" of the miniature cluster: the replicated store with
/// the durable AM record, the lease table, crash-injection flags, and the
/// authoritative membership view.
pub struct SharedControl {
    /// Durable AM state (persist-before-act).
    pub store: Mutex<ReplicatedStore<AmDurable>>,
    /// Lease table proving AM liveness.
    pub leases: Mutex<LeaseManager>,
    /// The runtime clock the lease table (and heartbeat reasoning) ticks
    /// on — one [`SimTime`] axis shared with the bus, the retry trackers
    /// and the event journal.
    time: TimeSource,
    /// The lease currently held by the active AM.
    pub current_lease: Mutex<Option<LeaseId>>,
    /// Monotone AM incarnation counter; bumped by the watchdog on takeover.
    pub epoch: AtomicU64,
    /// Authoritative current membership (updated by the AM on resume).
    pub members: Mutex<Vec<WorkerId>>,
    /// Set once at shutdown; every loop exits when it observes this.
    pub shutdown: AtomicBool,
    /// Armed AM crash point, taken (once) by the AM thread.
    pub am_crash: Mutex<Option<CrashPoint>>,
    /// Workers ordered to play dead (stop heartbeating and training).
    pub worker_crash: RwLock<HashSet<WorkerId>>,
    /// Armed worker boundary crashes ([`CrashPoint::WorkerAtBoundary`]),
    /// taken by the matching worker when it reaches the boundary.
    pub worker_crash_points: Mutex<Vec<CrashPoint>>,
    /// Last-known `(term, boundary iteration)` of workers that crashed at
    /// a boundary — what a restarted incarnation presents in `Rejoin`.
    pub crash_info: Mutex<HashMap<WorkerId, (u64, u64)>>,
    /// Latest iteration the AM has heard from each worker (heartbeat
    /// telemetry). This is the controller's progress view when workers
    /// live in other processes and the in-process `Telemetry` map stays
    /// empty.
    pub progress: Mutex<HashMap<WorkerId, u64>>,
    /// First-contact grace (ms) the failure detector extends to members
    /// it has never heard from. Zero means "same as the heartbeat
    /// timeout" — the historical behavior, right for in-process workers
    /// that are running before the AM's first poll. The runtime widens
    /// it in remote mode, where founding workers are separate OS
    /// processes whose spawn + dial-in can outlast the steady-state
    /// timeout; it lives here (not in `RuntimeConfig`) so replacement AM
    /// incarnations elected by the watchdog inherit it.
    pub first_contact_grace_ms: AtomicU64,
    /// Join handles of every AM incarnation (original + replacements).
    pub am_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Shared observability bundle (journal + traces + metrics registry).
    pub obs: Arc<Obs>,
    /// Shared reliability metrics (alias of `obs.rt`, kept for ergonomics).
    pub metrics: Arc<RtMetrics>,
}

impl SharedControl {
    /// Creates the shared control plane with the given AM lease TTL, on a
    /// private real-time clock (tests); the runtime builder uses
    /// [`SharedControl::with_time`].
    pub fn new(lease_ttl: Duration, obs: Arc<Obs>) -> Self {
        SharedControl::with_time(lease_ttl, obs, TimeSource::real())
    }

    /// Creates the shared control plane ticking on the runtime's clock.
    pub fn with_time(lease_ttl: Duration, obs: Arc<Obs>, time: TimeSource) -> Self {
        let metrics = Arc::clone(&obs.rt);
        SharedControl {
            store: Mutex::new(ReplicatedStore::new()),
            leases: Mutex::new(LeaseManager::new(SimDuration::from_nanos(
                lease_ttl.as_nanos().max(1) as u64,
            ))),
            time,
            current_lease: Mutex::new(None),
            epoch: AtomicU64::new(0),
            members: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            am_crash: Mutex::new(None),
            worker_crash: RwLock::new(HashSet::new()),
            worker_crash_points: Mutex::new(Vec::new()),
            crash_info: Mutex::new(HashMap::new()),
            progress: Mutex::new(HashMap::new()),
            first_contact_grace_ms: AtomicU64::new(0),
            am_handles: Mutex::new(Vec::new()),
            obs,
            metrics,
        }
    }

    /// "Now" on the runtime's shared time axis (real or virtual).
    pub fn now_sim(&self) -> SimTime {
        self.time.now()
    }

    /// The clock this control plane ticks on.
    pub fn time(&self) -> &TimeSource {
        &self.time
    }

    /// Grants a fresh AM lease and records it as current.
    pub fn grant_lease(&self) -> LeaseId {
        let id = self.leases.lock().grant(self.now_sim());
        *self.current_lease.lock() = Some(id);
        id
    }

    /// Refreshes `id`; an `Err` means the holder must abdicate.
    pub fn keep_alive(&self, id: LeaseId) -> Result<(), elan_core::lease::LeaseError> {
        self.leases.lock().keep_alive(id, self.now_sim())
    }

    /// True if the current lease (if any) has expired — i.e. the active
    /// AM has stopped proving liveness and a takeover is warranted.
    pub fn lease_expired(&self) -> bool {
        let current = *self.current_lease.lock();
        match current {
            None => false,
            Some(id) => matches!(
                self.leases.lock().state(id, self.now_sim()),
                None | Some(LeaseState::Expired { .. })
            ),
        }
    }

    /// Persists the durable AM record — the persist-before-act write, now
    /// term-fenced: the write lands only while `record.term` is still the
    /// newest term the store has seen. Returns false (and journals
    /// [`EventKind::StaleTermRejected`]) when a newer term owns the
    /// record, in which case the caller was superseded and must abdicate
    /// *without* taking the externally visible action the write guards.
    pub fn persist(&self, record: &AmDurable) -> bool {
        let stored_term = {
            let mut store = self.store.lock();
            let stored = store.get(AM_STORE_KEY).map(|v| v.value.term);
            match stored {
                Some(term) if term > record.term => term,
                _ => {
                    store.put(AM_STORE_KEY, record.clone());
                    return true;
                }
            }
        };
        self.obs.journal.emit(EventKind::StaleTermRejected {
            term: stored_term,
            stale: record.term,
        });
        false
    }

    /// Atomically bumps the fencing term (and stamps `epoch`) on the
    /// durable record — the first thing every AM incarnation does, so
    /// that any still-running predecessor's next [`persist`](Self::persist)
    /// is fenced. Returns the updated record, or `None` when the record
    /// was never seeded.
    pub fn bump_term(&self, epoch: u64) -> Option<AmDurable> {
        let mut store = self.store.lock();
        loop {
            let (version, mut rec) = store
                .get(AM_STORE_KEY)
                .map(|v| (v.version, v.value.clone()))?;
            rec.term += 1;
            rec.epoch = epoch;
            // CAS rather than blind put: the version check makes the bump
            // safe even against a store whose lock is not this mutex.
            if store
                .compare_and_put(AM_STORE_KEY, version, rec.clone())
                .is_ok()
            {
                return Some(rec);
            }
        }
    }

    /// Reads the durable AM record back (for takeover or inspection).
    pub fn recover(&self) -> Option<AmDurable> {
        self.store.lock().get(AM_STORE_KEY).map(|v| v.value.clone())
    }

    /// Takes an armed AM crash point, if any (one-shot).
    pub fn take_am_crash(&self) -> Option<CrashPoint> {
        self.am_crash.lock().take()
    }

    /// True if `worker` has been ordered to play dead.
    pub fn worker_crashed(&self, worker: WorkerId) -> bool {
        self.worker_crash.read().contains(&worker)
    }

    /// Consumes the armed boundary crash for `worker` once `iteration`
    /// has reached it (one-shot).
    pub fn take_worker_boundary_crash(&self, worker: WorkerId, iteration: u64) -> bool {
        let mut points = self.worker_crash_points.lock();
        let before = points.len();
        points.retain(|p| {
            !matches!(p, CrashPoint::WorkerAtBoundary { worker: w, iteration: i }
                if *w == worker && iteration >= *i)
        });
        points.len() != before
    }

    /// Records what a boundary-crashed worker knew when it died; its
    /// restarted incarnation presents this in its `Rejoin`.
    pub fn record_worker_crash(&self, worker: WorkerId, term: u64, iteration: u64) {
        self.crash_info.lock().insert(worker, (term, iteration));
    }

    /// Takes the recorded `(term, iteration)` of a crashed worker.
    pub fn take_crash_info(&self, worker: WorkerId) -> Option<(u64, u64)> {
        self.crash_info.lock().remove(&worker)
    }

    /// True once shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// AM-side failure detector over worker heartbeats.
///
/// Ticks on the runtime's shared [`SimTime`] axis — the AM feeds it
/// readings from the same [`TimeSource`] the bus and lease table use, so
/// under virtual time the failure threshold is exact and testable to the
/// nanosecond.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use elan_core::state::WorkerId;
/// use elan_rt::liveness::HeartbeatMonitor;
/// use elan_sim::{SimDuration, SimTime};
///
/// let mut hb = HeartbeatMonitor::new(Duration::from_millis(100));
/// let t0 = SimTime::ZERO;
/// hb.note(WorkerId(0), t0);
/// assert!(hb.dead(&[WorkerId(0)], t0 + SimDuration::from_millis(50)).is_empty());
/// assert_eq!(
///     hb.dead(&[WorkerId(0)], t0 + SimDuration::from_millis(200)),
///     vec![WorkerId(0)]
/// );
/// ```
#[derive(Debug)]
pub struct HeartbeatMonitor {
    last: HashMap<WorkerId, SimTime>,
    /// Members never heard from, seeded at first poll. Kept apart from
    /// `last` so a first proof of life can be awaited under a different
    /// (usually longer) deadline than continued silence after one.
    awaited: HashMap<WorkerId, SimTime>,
    timeout: SimDuration,
    first_contact: SimDuration,
}

impl HeartbeatMonitor {
    /// A monitor declaring workers dead after `timeout` of silence.
    pub fn new(timeout: Duration) -> Self {
        HeartbeatMonitor::with_grace(timeout, timeout)
    }

    /// A monitor whose never-heard-from members get `first_contact` of
    /// grace before the verdict, instead of `timeout`.
    ///
    /// In-process workers are running before the AM's first poll, so
    /// `new` keeps the two deadlines equal; remote workers are separate
    /// OS processes whose spawn + dial-in can easily outlast a heartbeat
    /// timeout tuned for steady-state silence, so the runtime widens
    /// `first_contact` in remote mode.
    pub fn with_grace(timeout: Duration, first_contact: Duration) -> Self {
        HeartbeatMonitor {
            last: HashMap::new(),
            awaited: HashMap::new(),
            timeout: std_to_sim(timeout),
            first_contact: std_to_sim(first_contact),
        }
    }

    /// Records a liveness proof from `worker` at `now`.
    ///
    /// Any message from a worker counts — heartbeats are just the
    /// guaranteed minimum traffic.
    pub fn note(&mut self, worker: WorkerId, now: SimTime) {
        self.awaited.remove(&worker);
        self.last.insert(worker, now);
    }

    /// The subset of `members` whose last proof is older than the timeout.
    ///
    /// A member never heard from at all is given the benefit of the doubt
    /// by starting its clock at first observation: `dead` seeds `now` for
    /// unknown members instead of condemning them immediately, and holds
    /// them to the `first_contact` deadline rather than `timeout`.
    pub fn dead(&mut self, members: &[WorkerId], now: SimTime) -> Vec<WorkerId> {
        members
            .iter()
            .copied()
            .filter(|w| {
                if let Some(&last) = self.last.get(w) {
                    now.saturating_duration_since(last) > self.timeout
                } else {
                    let seeded = *self.awaited.entry(*w).or_insert(now);
                    now.saturating_duration_since(seeded) > self.first_contact
                }
            })
            .collect()
    }

    /// Forgets a worker (it left or was declared dead).
    pub fn forget(&mut self, worker: WorkerId) {
        self.last.remove(&worker);
        self.awaited.remove(&worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn founding_record_is_steady() {
        let rec = AmDurable::founding(vec![WorkerId(0), WorkerId(1)]);
        assert_eq!(rec.phase, AmPhase::Steady);
        assert_eq!(rec.seq_done, 0);
        assert!(rec.pending.is_none());
    }

    #[test]
    fn persist_recover_roundtrip() {
        let ctrl = SharedControl::new(Duration::from_millis(100), Obs::new_default());
        assert!(ctrl.recover().is_none());
        let mut rec = AmDurable::founding(vec![WorkerId(0)]);
        rec.phase = AmPhase::Transferring {
            target: vec![WorkerId(0), WorkerId(1)],
            seq: Some(3),
        };
        assert!(ctrl.persist(&rec));
        assert_eq!(ctrl.recover(), Some(rec));
    }

    #[test]
    fn stale_term_persist_is_fenced() {
        let ctrl = SharedControl::new(Duration::from_millis(100), Obs::new_default());
        let mut rec = AmDurable::founding(vec![WorkerId(0)]);
        rec.term = 3;
        assert!(ctrl.persist(&rec));
        // A predecessor still holding term 2 must be rejected, leaving
        // the newer record untouched.
        let mut stale = rec.clone();
        stale.term = 2;
        stale.seq_done = 99;
        assert!(!ctrl.persist(&stale));
        assert_eq!(ctrl.recover(), Some(rec.clone()));
        // Same term (the incumbent itself) still writes.
        rec.seq_done = 1;
        assert!(ctrl.persist(&rec));
        assert_eq!(ctrl.recover().map(|r| r.seq_done), Some(1));
    }

    #[test]
    fn bump_term_is_monotonic_and_stamps_epoch() {
        let ctrl = SharedControl::new(Duration::from_millis(100), Obs::new_default());
        assert!(ctrl.bump_term(1).is_none(), "nothing seeded yet");
        assert!(ctrl.persist(&AmDurable::founding(vec![WorkerId(0)])));
        let first = ctrl.bump_term(1).expect("record was seeded");
        assert_eq!((first.term, first.epoch), (1, 1));
        let second = ctrl.bump_term(5).expect("record still present");
        assert_eq!((second.term, second.epoch), (2, 5));
        assert_eq!(ctrl.recover(), Some(second));
        // The fenced-out first incarnation can no longer write.
        assert!(!ctrl.persist(&first));
    }

    #[test]
    fn boundary_crash_point_fires_at_or_after_armed_iteration() {
        let ctrl = SharedControl::new(Duration::from_millis(100), Obs::new_default());
        ctrl.worker_crash_points
            .lock()
            .push(CrashPoint::WorkerAtBoundary {
                worker: WorkerId(2),
                iteration: 10,
            });
        assert!(!ctrl.take_worker_boundary_crash(WorkerId(2), 9));
        assert!(
            !ctrl.take_worker_boundary_crash(WorkerId(1), 10),
            "wrong worker"
        );
        assert!(ctrl.take_worker_boundary_crash(WorkerId(2), 11));
        assert!(
            !ctrl.take_worker_boundary_crash(WorkerId(2), 12),
            "one-shot"
        );
    }

    #[test]
    fn crash_info_roundtrip_is_one_shot() {
        let ctrl = SharedControl::new(Duration::from_millis(100), Obs::new_default());
        assert!(ctrl.take_crash_info(WorkerId(4)).is_none());
        ctrl.record_worker_crash(WorkerId(4), 2, 17);
        assert_eq!(ctrl.take_crash_info(WorkerId(4)), Some((2, 17)));
        assert!(ctrl.take_crash_info(WorkerId(4)).is_none());
    }

    #[test]
    fn lease_expiry_is_observable() {
        // Virtual time: the 40 ms of lease silence costs no wall clock and
        // expires at a *known* instant instead of "roughly after a sleep".
        let time = TimeSource::virtual_seeded(2);
        time.register_current();
        let ctrl =
            SharedControl::with_time(Duration::from_millis(20), Obs::new_default(), time.clone());
        assert!(!ctrl.lease_expired(), "no lease yet");
        let id = ctrl.grant_lease();
        assert!(ctrl.keep_alive(id).is_ok());
        time.sleep(Duration::from_millis(40));
        assert!(ctrl.lease_expired());
        assert!(ctrl.keep_alive(id).is_err());
        time.deregister();
    }

    #[test]
    fn heartbeat_monitor_declares_only_silent_members() {
        let mut hb = HeartbeatMonitor::new(Duration::from_millis(50));
        let t0 = SimTime::ZERO;
        hb.note(WorkerId(0), t0);
        hb.note(WorkerId(1), t0 + SimDuration::from_millis(100));
        let dead = hb.dead(
            &[WorkerId(0), WorkerId(1)],
            t0 + SimDuration::from_millis(120),
        );
        assert_eq!(dead, vec![WorkerId(0)]);
    }

    #[test]
    fn unknown_members_get_a_grace_period() {
        let mut hb = HeartbeatMonitor::new(Duration::from_millis(50));
        let t0 = SimTime::ZERO;
        // Never heard from, but first observation seeds the clock.
        assert!(hb.dead(&[WorkerId(7)], t0).is_empty());
        assert!(hb
            .dead(&[WorkerId(7)], t0 + SimDuration::from_millis(20))
            .is_empty());
        assert_eq!(
            hb.dead(&[WorkerId(7)], t0 + SimDuration::from_millis(80)),
            vec![WorkerId(7)]
        );
    }

    #[test]
    fn first_contact_grace_outlasts_the_steady_state_timeout() {
        // Remote mode: a founding worker process that has never dialed in
        // is held to the wider first-contact deadline, but once heard
        // from it falls under the normal heartbeat timeout.
        let mut hb =
            HeartbeatMonitor::with_grace(Duration::from_millis(50), Duration::from_millis(500));
        let t0 = SimTime::ZERO;
        // Silent well past the steady-state timeout: still awaited.
        assert!(hb.dead(&[WorkerId(0), WorkerId(1)], t0).is_empty());
        assert!(hb
            .dead(&[WorkerId(0)], t0 + SimDuration::from_millis(400))
            .is_empty());
        // First contact at 450ms: from here on the 50ms timeout governs.
        let contact = t0 + SimDuration::from_millis(450);
        hb.note(WorkerId(0), contact);
        assert!(hb
            .dead(&[WorkerId(0)], contact + SimDuration::from_millis(50))
            .is_empty());
        assert_eq!(
            hb.dead(&[WorkerId(0)], contact + SimDuration::from_millis(51)),
            vec![WorkerId(0)]
        );
        // A never-contacted member does run out of grace eventually.
        assert_eq!(
            hb.dead(&[WorkerId(1)], t0 + SimDuration::from_millis(1000)),
            vec![WorkerId(1)]
        );
    }

    #[test]
    fn heartbeat_exactly_at_threshold_is_alive_one_tick_past_is_dead() {
        // Boundary semantics: a worker is dead only *strictly after* the
        // timeout — silence of exactly `timeout` still counts as alive, one
        // nanosecond more does not. Exact on virtual time.
        let timeout = SimDuration::from_millis(50);
        let mut hb = HeartbeatMonitor::new(Duration::from_millis(50));
        let t0 = SimTime::ZERO;
        hb.note(WorkerId(3), t0);
        assert!(hb.dead(&[WorkerId(3)], t0 + timeout).is_empty());
        assert_eq!(
            hb.dead(&[WorkerId(3)], t0 + timeout + SimDuration::from_nanos(1)),
            vec![WorkerId(3)]
        );
        // A beat arriving one tick past the threshold revives the worker
        // for a full fresh window (failure detection is not latched).
        let late = t0 + timeout + SimDuration::from_nanos(1);
        hb.note(WorkerId(3), late);
        assert!(hb.dead(&[WorkerId(3)], late + timeout).is_empty());
        assert_eq!(
            hb.dead(&[WorkerId(3)], late + timeout + SimDuration::from_nanos(1)),
            vec![WorkerId(3)]
        );
    }

    #[test]
    fn lease_expiring_exactly_at_the_watchdog_poll_tick() {
        // The lease TTL and the watchdog poll land on the same virtual
        // instant: `LeaseManager::state` treats `expires_at == now` as
        // expired (a lease is valid for [grant, grant+ttl)), so the poll
        // that coincides with the boundary must already observe expiry —
        // and one tick earlier must not.
        let time = TimeSource::virtual_seeded(4);
        time.register_current();
        let ttl = Duration::from_millis(30);
        let ctrl = SharedControl::with_time(ttl, Obs::new_default(), time.clone());
        let id = ctrl.grant_lease();
        time.sleep(Duration::from_nanos(30_000_000 - 1));
        assert!(!ctrl.lease_expired(), "one tick before the boundary");
        time.sleep(Duration::from_nanos(1));
        assert!(ctrl.lease_expired(), "poll exactly at grant+ttl");
        assert!(ctrl.keep_alive(id).is_err());
        time.deregister();
    }

    #[test]
    fn double_election_after_am_replacement_is_keyed_to_current_lease() {
        // Two watchdog-style observers race after an AM death: the first
        // election grants a fresh lease and installs it as current; the
        // second observer re-checking `lease_expired()` must now see a
        // healthy lease and stand down instead of electing again.
        let time = TimeSource::virtual_seeded(6);
        time.register_current();
        let ctrl =
            SharedControl::with_time(Duration::from_millis(20), Obs::new_default(), time.clone());
        let first = ctrl.grant_lease();
        time.sleep(Duration::from_millis(25));
        // Both observers see the dead AM...
        assert!(ctrl.lease_expired());
        assert!(ctrl.lease_expired());
        // ...observer A wins the election and grants the replacement lease.
        let second = ctrl.grant_lease();
        assert_ne!(first, second);
        // Observer B's re-check after A's takeover: no second election.
        assert!(!ctrl.lease_expired(), "second observer must stand down");
        // The dead incarnation's lease stays dead even if its thread limps
        // back and tries to keep alive.
        assert!(ctrl.keep_alive(first).is_err());
        assert!(ctrl.keep_alive(second).is_ok());
        time.deregister();
    }

    #[test]
    fn crash_point_is_one_shot() {
        let ctrl = SharedControl::new(Duration::from_millis(100), Obs::new_default());
        *ctrl.am_crash.lock() = Some(CrashPoint::OnAdjustStart);
        assert_eq!(ctrl.take_am_crash(), Some(CrashPoint::OnAdjustStart));
        assert_eq!(ctrl.take_am_crash(), None);
    }
}
