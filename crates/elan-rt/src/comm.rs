//! A real allreduce for threads: generation-versioned collective group.
//!
//! Data-parallel training synchronizes gradients with collective
//! communication; the live runtime implements it for worker *threads*: a
//! shared accumulation buffer guarded by a mutex, a condvar barrier, and a
//! **generation** number that changes on every communication-group
//! reconstruction (step ⑤ of an adjustment), so workers can never mix
//! rounds across memberships.
//!
//! Reconfiguration must happen while no allreduce is in flight — Elan
//! guarantees this by adjusting only at coordination boundaries, where
//! every worker is parked in the control plane, not the data plane.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use elan_core::state::WorkerId;

/// How often a blocked allreduce caller's `on_wait` callback fires.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Outcome of one allreduce call.
#[derive(Debug, Clone, PartialEq)]
pub enum AllreduceOutcome {
    /// Every member contributed; here is the element-wise sum.
    Sum {
        /// Element-wise sum across the members of the completed round.
        sum: Arc<Vec<f32>>,
        /// How many members contributed to (or were counted in) the round
        /// when it completed — captured atomically with the sum, so a
        /// concurrent eviction can never make callers divide by a stale
        /// world size.
        world: u32,
    },
    /// The caller is not a member of the current generation (it was
    /// removed by an adjustment and should leave the data plane).
    NotMember,
}

#[derive(Debug)]
struct GroupState {
    generation: u64,
    members: BTreeSet<WorkerId>,
    round: u64,
    /// Per-member contributions of the in-flight round. Kept separate and
    /// summed in worker-id order when the round completes, so the f32 sum
    /// is bit-deterministic regardless of thread arrival order.
    contributions: std::collections::BTreeMap<WorkerId, Vec<f32>>,
    vec_len: usize,
    /// Result of the last completed round.
    result: Arc<Vec<f32>>,
    result_round: u64,
    /// World size captured when the last round completed.
    result_world: u32,
}

impl GroupState {
    /// Sums the full contribution set, publishes it, and opens the next
    /// round. Summing in worker-id order keeps the f32 result
    /// bit-deterministic regardless of thread arrival order.
    fn complete_round(&mut self) {
        let mut sum = vec![0.0f32; self.vec_len];
        for contribution in std::mem::take(&mut self.contributions).into_values() {
            for (a, d) in sum.iter_mut().zip(contribution) {
                *a += d;
            }
        }
        self.result = Arc::new(sum);
        self.result_round = self.round;
        self.result_world = self.members.len() as u32;
        self.round += 1;
    }
}

/// A dynamic-membership allreduce group.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use elan_core::state::WorkerId;
/// use elan_rt::CommGroup;
///
/// let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 4));
/// let g2 = Arc::clone(&group);
/// let t = std::thread::spawn(move || g2.allreduce(WorkerId(1), &[1.0; 4]));
/// let a = group.allreduce(WorkerId(0), &[2.0; 4]);
/// let b = t.join().unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct CommGroup {
    state: Mutex<GroupState>,
    cvar: Condvar,
}

impl CommGroup {
    /// Creates a group over `members` reducing vectors of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `len` is zero.
    pub fn new(members: impl IntoIterator<Item = WorkerId>, len: usize) -> Self {
        let members: BTreeSet<WorkerId> = members.into_iter().collect();
        assert!(!members.is_empty(), "group needs at least one member");
        assert!(len > 0, "vectors must be non-empty");
        CommGroup {
            state: Mutex::new(GroupState {
                generation: 0,
                members,
                round: 0,
                contributions: std::collections::BTreeMap::new(),
                vec_len: len,
                result: Arc::new(vec![0.0; len]),
                result_round: u64::MAX,
                result_world: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Current generation (bumps on every reconfiguration).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Current members.
    pub fn members(&self) -> Vec<WorkerId> {
        self.state.lock().members.iter().copied().collect()
    }

    /// World size of the current generation.
    pub fn world_size(&self) -> u32 {
        self.state.lock().members.len() as u32
    }

    /// Contributes `data` to the current round and blocks until every
    /// member has contributed; returns the element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the group's vector length.
    pub fn allreduce(&self, worker: WorkerId, data: &[f32]) -> AllreduceOutcome {
        self.allreduce_with(worker, data, || {})
    }

    /// Like [`allreduce`](CommGroup::allreduce), but invokes `on_wait`
    /// (with the group lock released) roughly every 50 ms while blocked
    /// waiting for slower members.
    ///
    /// This is how live workers keep heartbeating the application master
    /// from inside the data plane: without it, one dead member would make
    /// every survivor fall silent too, and the failure detector could not
    /// tell the victim from the hostages.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the group's vector length.
    pub fn allreduce_with(
        &self,
        worker: WorkerId,
        data: &[f32],
        mut on_wait: impl FnMut(),
    ) -> AllreduceOutcome {
        let mut st = self.state.lock();
        if !st.members.contains(&worker) {
            return AllreduceOutcome::NotMember;
        }
        assert_eq!(st.vec_len, data.len(), "vector length mismatch");
        debug_assert!(
            !st.contributions.contains_key(&worker),
            "{worker} contributed twice to round {}",
            st.round
        );
        st.contributions.insert(worker, data.to_vec());
        let my_round = st.round;

        if st.contributions.len() == st.members.len() {
            // Last arriver publishes and opens the next round.
            st.complete_round();
            self.cvar.notify_all();
            return AllreduceOutcome::Sum {
                sum: Arc::clone(&st.result),
                world: st.result_world,
            };
        }
        // Wait for the round to publish, surfacing periodic wait ticks.
        while st.result_round != my_round {
            if self.cvar.wait_for(&mut st, WAIT_SLICE).timed_out() {
                drop(st);
                on_wait();
                st = self.state.lock();
            }
        }
        AllreduceOutcome::Sum {
            sum: Arc::clone(&st.result),
            world: st.result_world,
        }
    }

    /// Removes a (presumed dead) member mid-generation, discarding any
    /// contribution it made to the in-flight round; returns whether it was
    /// a member.
    ///
    /// If the victim was the only member the round was still waiting for,
    /// eviction completes the round on the spot, releasing the surviving
    /// members with a sum over the survivors — [`AllreduceOutcome::Sum`]
    /// carries the shrunken `world` so their averages stay correct. This
    /// is the data-plane half of failure-driven scale-in: the control
    /// plane evicts first so nobody blocks, then reconfigures the group at
    /// the next boundary.
    pub fn evict(&self, worker: WorkerId) -> bool {
        let mut st = self.state.lock();
        let was_member = st.members.remove(&worker);
        st.contributions.remove(&worker);
        if was_member
            && !st.members.is_empty()
            && !st.contributions.is_empty()
            && st.contributions.len() == st.members.len()
        {
            st.complete_round();
            self.cvar.notify_all();
        }
        was_member
    }

    /// Reconstructs the communication group (step ⑤): replaces the member
    /// set and bumps the generation. Must not race an in-flight round.
    ///
    /// # Panics
    ///
    /// Panics if called while contributions are pending, or with an empty
    /// member set.
    pub fn reconfigure(&self, members: impl IntoIterator<Item = WorkerId>) -> u64 {
        let mut st = self.state.lock();
        assert!(
            st.contributions.is_empty(),
            "reconfigure raced an in-flight allreduce round"
        );
        let members: BTreeSet<WorkerId> = members.into_iter().collect();
        assert!(!members.is_empty(), "group needs at least one member");
        st.members = members;
        st.generation += 1;
        st.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn spawn_allreduce(
        group: &Arc<CommGroup>,
        worker: WorkerId,
        data: Vec<f32>,
    ) -> thread::JoinHandle<AllreduceOutcome> {
        let g = Arc::clone(group);
        thread::spawn(move || g.allreduce(worker, &data))
    }

    #[test]
    fn sums_across_members() {
        let group = Arc::new(CommGroup::new((0..4).map(WorkerId), 8));
        let handles: Vec<_> = (0..4)
            .map(|i| spawn_allreduce(&group, WorkerId(i), vec![i as f32; 8]))
            .collect();
        for h in handles {
            match h.join().unwrap() {
                AllreduceOutcome::Sum { sum, world } => {
                    assert!(sum.iter().all(|&v| v == 6.0));
                    assert_eq!(world, 4);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn consecutive_rounds_do_not_mix() {
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 2));
        for round in 0..10 {
            let h = spawn_allreduce(&group, WorkerId(1), vec![round as f32; 2]);
            let a = group.allreduce(WorkerId(0), &[1.0; 2]);
            let b = h.join().unwrap();
            assert_eq!(a, b);
            match a {
                AllreduceOutcome::Sum { sum, .. } => assert_eq!(sum[0], round as f32 + 1.0),
                _ => panic!("not a sum"),
            }
        }
    }

    #[test]
    fn non_member_is_told_to_leave() {
        let group = CommGroup::new([WorkerId(0)], 2);
        assert_eq!(
            group.allreduce(WorkerId(9), &[0.0; 2]),
            AllreduceOutcome::NotMember
        );
    }

    #[test]
    fn reconfigure_bumps_generation_and_membership() {
        let group = CommGroup::new([WorkerId(0), WorkerId(1)], 2);
        assert_eq!(group.generation(), 0);
        let g = group.reconfigure((0..4).map(WorkerId));
        assert_eq!(g, 1);
        assert_eq!(group.world_size(), 4);
    }

    #[test]
    fn allreduce_works_after_scale_out() {
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 4));
        // Round with 2 members.
        let h = spawn_allreduce(&group, WorkerId(1), vec![1.0; 4]);
        group.allreduce(WorkerId(0), &[1.0; 4]);
        h.join().unwrap();
        // Scale out to 3 and reduce again.
        group.reconfigure((0..3).map(WorkerId));
        let h1 = spawn_allreduce(&group, WorkerId(1), vec![1.0; 4]);
        let h2 = spawn_allreduce(&group, WorkerId(2), vec![1.0; 4]);
        let a = group.allreduce(WorkerId(0), &[1.0; 4]);
        match a {
            AllreduceOutcome::Sum { sum, world } => {
                assert_eq!(sum[0], 3.0);
                assert_eq!(world, 3);
            }
            _ => panic!("not a sum"),
        }
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn evict_unblocks_a_waiting_round() {
        // Three members; only two contribute; the third is evicted. The
        // eviction must complete the round with world == 2.
        let group = Arc::new(CommGroup::new((0..3).map(WorkerId), 4));
        let h0 = spawn_allreduce(&group, WorkerId(0), vec![1.0; 4]);
        let h1 = spawn_allreduce(&group, WorkerId(1), vec![2.0; 4]);
        // Give both threads time to park in the round.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            {
                let st = group.state.lock();
                if st.contributions.len() == 2 {
                    break;
                }
            }
            assert!(std::time::Instant::now() < deadline, "contributions stuck");
            thread::sleep(Duration::from_millis(1));
        }
        assert!(group.evict(WorkerId(2)));
        for h in [h0, h1] {
            match h.join().unwrap() {
                AllreduceOutcome::Sum { sum, world } => {
                    assert_eq!(sum[0], 3.0);
                    assert_eq!(world, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(group.world_size(), 2);
    }

    #[test]
    fn evict_non_member_is_a_noop() {
        let group = CommGroup::new([WorkerId(0)], 2);
        assert!(!group.evict(WorkerId(9)));
        assert_eq!(group.world_size(), 1);
    }

    #[test]
    fn on_wait_fires_while_blocked() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 2));
        let ticks = Arc::new(AtomicU32::new(0));
        let (g, t) = (Arc::clone(&group), Arc::clone(&ticks));
        let h = thread::spawn(move || {
            g.allreduce_with(WorkerId(0), &[1.0; 2], || {
                t.fetch_add(1, Ordering::SeqCst);
            })
        });
        // Hold the round open long enough for at least one wait slice.
        thread::sleep(Duration::from_millis(160));
        group.allreduce(WorkerId(1), &[1.0; 2]);
        h.join().unwrap();
        assert!(ticks.load(Ordering::SeqCst) >= 1, "no wait ticks observed");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let group = CommGroup::new([WorkerId(0)], 4);
        let _ = group.allreduce(WorkerId(0), &[0.0; 3]);
    }

    #[test]
    fn many_threads_many_rounds_stress() {
        let n = 8u32;
        let rounds = 50u64;
        let group = Arc::new(CommGroup::new((0..n).map(WorkerId), 16));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let g = Arc::clone(&group);
                thread::spawn(move || {
                    let mut acc = 0.0f64;
                    for r in 0..rounds {
                        let data = vec![(i as f32) + (r as f32); 16];
                        match g.allreduce(WorkerId(i), &data) {
                            AllreduceOutcome::Sum { sum, .. } => acc += sum[0] as f64,
                            _ => panic!("membership lost"),
                        }
                    }
                    acc
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every member observed the identical sequence of sums.
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }
}
