//! A real allreduce for threads: generation-versioned collective group.
//!
//! Data-parallel training synchronizes gradients with collective
//! communication; the live runtime implements it for worker *threads*: a
//! shared accumulation buffer guarded by a mutex, a condvar barrier, and a
//! **generation** number that changes on every communication-group
//! reconstruction (step ⑤ of an adjustment), so workers can never mix
//! rounds across memberships.
//!
//! Reconfiguration must happen while no allreduce is in flight — Elan
//! guarantees this by adjusting only at coordination boundaries, where
//! every worker is parked in the control plane, not the data plane.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use elan_core::state::WorkerId;

/// Outcome of one allreduce call.
#[derive(Debug, Clone, PartialEq)]
pub enum AllreduceOutcome {
    /// Every member contributed; here is the element-wise sum.
    Sum(Arc<Vec<f32>>),
    /// The caller is not a member of the current generation (it was
    /// removed by an adjustment and should leave the data plane).
    NotMember,
}

#[derive(Debug)]
struct GroupState {
    generation: u64,
    members: BTreeSet<WorkerId>,
    round: u64,
    /// Per-member contributions of the in-flight round. Kept separate and
    /// summed in worker-id order when the round completes, so the f32 sum
    /// is bit-deterministic regardless of thread arrival order.
    contributions: std::collections::BTreeMap<WorkerId, Vec<f32>>,
    vec_len: usize,
    /// Result of the last completed round.
    result: Arc<Vec<f32>>,
    result_round: u64,
}

/// A dynamic-membership allreduce group.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use elan_core::state::WorkerId;
/// use elan_rt::CommGroup;
///
/// let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 4));
/// let g2 = Arc::clone(&group);
/// let t = std::thread::spawn(move || g2.allreduce(WorkerId(1), &[1.0; 4]));
/// let a = group.allreduce(WorkerId(0), &[2.0; 4]);
/// let b = t.join().unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct CommGroup {
    state: Mutex<GroupState>,
    cvar: Condvar,
}

impl CommGroup {
    /// Creates a group over `members` reducing vectors of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `len` is zero.
    pub fn new(members: impl IntoIterator<Item = WorkerId>, len: usize) -> Self {
        let members: BTreeSet<WorkerId> = members.into_iter().collect();
        assert!(!members.is_empty(), "group needs at least one member");
        assert!(len > 0, "vectors must be non-empty");
        CommGroup {
            state: Mutex::new(GroupState {
                generation: 0,
                members,
                round: 0,
                contributions: std::collections::BTreeMap::new(),
                vec_len: len,
                result: Arc::new(vec![0.0; len]),
                result_round: u64::MAX,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Current generation (bumps on every reconfiguration).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Current members.
    pub fn members(&self) -> Vec<WorkerId> {
        self.state.lock().members.iter().copied().collect()
    }

    /// World size of the current generation.
    pub fn world_size(&self) -> u32 {
        self.state.lock().members.len() as u32
    }

    /// Contributes `data` to the current round and blocks until every
    /// member has contributed; returns the element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the group's vector length.
    pub fn allreduce(&self, worker: WorkerId, data: &[f32]) -> AllreduceOutcome {
        let mut st = self.state.lock();
        if !st.members.contains(&worker) {
            return AllreduceOutcome::NotMember;
        }
        assert_eq!(st.vec_len, data.len(), "vector length mismatch");
        debug_assert!(
            !st.contributions.contains_key(&worker),
            "{worker} contributed twice to round {}",
            st.round
        );
        st.contributions.insert(worker, data.to_vec());
        let my_round = st.round;

        if st.contributions.len() == st.members.len() {
            // Last arriver publishes and opens the next round. Summing in
            // worker-id order keeps the f32 result bit-deterministic.
            let mut sum = vec![0.0f32; st.vec_len];
            for contribution in std::mem::take(&mut st.contributions).into_values() {
                for (a, d) in sum.iter_mut().zip(contribution) {
                    *a += d;
                }
            }
            st.result = Arc::new(sum);
            st.result_round = my_round;
            st.round += 1;
            self.cvar.notify_all();
            return AllreduceOutcome::Sum(Arc::clone(&st.result));
        }
        // Wait for the round to publish.
        while st.result_round != my_round {
            self.cvar.wait(&mut st);
        }
        AllreduceOutcome::Sum(Arc::clone(&st.result))
    }

    /// Reconstructs the communication group (step ⑤): replaces the member
    /// set and bumps the generation. Must not race an in-flight round.
    ///
    /// # Panics
    ///
    /// Panics if called while contributions are pending, or with an empty
    /// member set.
    pub fn reconfigure(&self, members: impl IntoIterator<Item = WorkerId>) -> u64 {
        let mut st = self.state.lock();
        assert!(
            st.contributions.is_empty(),
            "reconfigure raced an in-flight allreduce round"
        );
        let members: BTreeSet<WorkerId> = members.into_iter().collect();
        assert!(!members.is_empty(), "group needs at least one member");
        st.members = members;
        st.generation += 1;
        st.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn spawn_allreduce(
        group: &Arc<CommGroup>,
        worker: WorkerId,
        data: Vec<f32>,
    ) -> thread::JoinHandle<AllreduceOutcome> {
        let g = Arc::clone(group);
        thread::spawn(move || g.allreduce(worker, &data))
    }

    #[test]
    fn sums_across_members() {
        let group = Arc::new(CommGroup::new((0..4).map(WorkerId), 8));
        let handles: Vec<_> = (0..4)
            .map(|i| spawn_allreduce(&group, WorkerId(i), vec![i as f32; 8]))
            .collect();
        for h in handles {
            match h.join().unwrap() {
                AllreduceOutcome::Sum(sum) => assert!(sum.iter().all(|&v| v == 6.0)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn consecutive_rounds_do_not_mix() {
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 2));
        for round in 0..10 {
            let h = spawn_allreduce(&group, WorkerId(1), vec![round as f32; 2]);
            let a = group.allreduce(WorkerId(0), &[1.0; 2]);
            let b = h.join().unwrap();
            assert_eq!(a, b);
            match a {
                AllreduceOutcome::Sum(s) => assert_eq!(s[0], round as f32 + 1.0),
                _ => panic!("not a sum"),
            }
        }
    }

    #[test]
    fn non_member_is_told_to_leave() {
        let group = CommGroup::new([WorkerId(0)], 2);
        assert_eq!(
            group.allreduce(WorkerId(9), &[0.0; 2]),
            AllreduceOutcome::NotMember
        );
    }

    #[test]
    fn reconfigure_bumps_generation_and_membership() {
        let group = CommGroup::new([WorkerId(0), WorkerId(1)], 2);
        assert_eq!(group.generation(), 0);
        let g = group.reconfigure((0..4).map(WorkerId));
        assert_eq!(g, 1);
        assert_eq!(group.world_size(), 4);
    }

    #[test]
    fn allreduce_works_after_scale_out() {
        let group = Arc::new(CommGroup::new([WorkerId(0), WorkerId(1)], 4));
        // Round with 2 members.
        let h = spawn_allreduce(&group, WorkerId(1), vec![1.0; 4]);
        group.allreduce(WorkerId(0), &[1.0; 4]);
        h.join().unwrap();
        // Scale out to 3 and reduce again.
        group.reconfigure((0..3).map(WorkerId));
        let h1 = spawn_allreduce(&group, WorkerId(1), vec![1.0; 4]);
        let h2 = spawn_allreduce(&group, WorkerId(2), vec![1.0; 4]);
        let a = group.allreduce(WorkerId(0), &[1.0; 4]);
        match a {
            AllreduceOutcome::Sum(s) => assert_eq!(s[0], 3.0),
            _ => panic!("not a sum"),
        }
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let group = CommGroup::new([WorkerId(0)], 4);
        let _ = group.allreduce(WorkerId(0), &[0.0; 3]);
    }

    #[test]
    fn many_threads_many_rounds_stress() {
        let n = 8u32;
        let rounds = 50u64;
        let group = Arc::new(CommGroup::new((0..n).map(WorkerId), 16));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let g = Arc::clone(&group);
                thread::spawn(move || {
                    let mut acc = 0.0f64;
                    for r in 0..rounds {
                        let data = vec![(i as f32) + (r as f32); 16];
                        match g.allreduce(WorkerId(i), &data) {
                            AllreduceOutcome::Sum(s) => acc += s[0] as f64,
                            _ => panic!("membership lost"),
                        }
                    }
                    acc
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every member observed the identical sequence of sums.
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }
}
