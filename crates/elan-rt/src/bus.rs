//! The control-plane message bus: crossbeam channels with named endpoints.
//!
//! Stands in for the paper's ZeroMQ sockets (§V-D). Each participant owns
//! an [`Endpoint`] (its receive queue); anyone holding the [`Bus`] can
//! send to any endpoint by id. Per-receiver FIFO ordering is inherited
//! from the underlying channel — unless a [`ChaosPolicy`] is attached, in
//! which case messages may be dropped, duplicated, or delayed, and the
//! [`crate::reliable`] layer is responsible for masking the damage.
//!
//! The bus also keeps per-endpoint delivery statistics and a dead-letter
//! counter (sends to unregistered or departed endpoints), which the
//! shutdown report surfaces.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use elan_core::messages::{MsgId, MsgIdAllocator, StateKind};
use elan_core::state::WorkerId;

use crate::chaos::{ChaosEngine, ChaosPolicy, ChaosStats, PartitionWindow};
use crate::obs::{EventJournal, EventKind};
use crate::time::TimeSource;

/// Identifies a bus endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EndpointId {
    /// The application master.
    Am,
    /// A training worker.
    Worker(WorkerId),
    /// The external controller (the `ElasticRuntime` handle).
    Controller,
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointId::Am => write!(f, "am"),
            EndpointId::Worker(w) => write!(f, "{w}"),
            EndpointId::Controller => write!(f, "controller"),
        }
    }
}

/// Control-plane messages of the live runtime.
#[derive(Debug, Clone)]
pub enum RtMsg {
    /// Worker → AM: ready to join after start+initialization (step ②).
    Report {
        /// The new worker.
        worker: WorkerId,
    },
    /// Worker → AM: reached a coordination boundary (step ③).
    Coordinate {
        /// The coordinating worker.
        worker: WorkerId,
        /// Its current iteration.
        iteration: u64,
    },
    /// AM → worker: continue training unchanged. Tagged with the boundary
    /// iteration so a chaos-delayed release cannot un-park a later round.
    Proceed {
        /// The boundary iteration being released.
        boundary: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// AM → worker: replicate state to `dst` (step ④), then report done.
    TransferOrder {
        /// Destination worker.
        dst: WorkerId,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// Worker → AM: the ordered transfer finished.
    TransferDone {
        /// The source that completed its transfer.
        src: WorkerId,
        /// The destination it served (src == dst marks a checkpoint).
        dst: WorkerId,
    },
    /// Source worker → new worker: one chunk of the replicated training
    /// state. Replication is streamed — parameter ("GPU-state") and
    /// momentum ("CPU-state") chunks interleave on the wire so the two
    /// streams overlap per §IV, and because every chunk rides its own
    /// reliable envelope (id + ack + resend), a lossy bus retransmits
    /// only the missing chunks: the transfer is resumable per-chunk
    /// rather than all-or-nothing.
    StateChunk {
        /// Which state buffer this chunk belongs to.
        kind: StateKind,
        /// Iteration the snapshot was taken at (also the stream id — all
        /// chunks of one snapshot carry the same boundary iteration).
        iteration: u64,
        /// Serial data-loading cursor (§V-C: one integer).
        data_cursor: u64,
        /// Chunk index within this `kind`'s stream.
        index: u32,
        /// Total chunks in this `kind`'s stream.
        total: u32,
        /// Element offset of this chunk within the full buffer.
        offset: u64,
        /// The chunk payload — `Arc`-shared across destinations, so a
        /// boundary with several joiners copies the state once, not once
        /// per joiner.
        data: Arc<Vec<f32>>,
    },
    /// AM → worker: training resumes under the new membership (step ⑤).
    Resume {
        /// The new communication-group generation.
        generation: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// AM → worker: leave the job (scale-in / migration / shutdown).
    Leave {
        /// The sending AM's fencing term.
        term: u64,
    },
    /// Controller → AM: adjust to this membership.
    AdjustTo {
        /// Controller-side operation sequence number (idempotence across
        /// AM failovers).
        seq: u64,
        /// Workers after the adjustment.
        target: Vec<WorkerId>,
    },
    /// Controller → AM: stop the job at the next boundary.
    Stop {
        /// Operation sequence number.
        seq: u64,
    },
    /// Controller → AM: snapshot the training state at the next boundary.
    Checkpoint {
        /// Operation sequence number.
        seq: u64,
    },
    /// AM → worker: send your state to the controller (checkpoint), then
    /// report `TransferDone` with `src == dst`.
    CheckpointOrder {
        /// The checkpoint request being served.
        seq: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// AM → controller: operation `seq` finished.
    Ack {
        /// The completed operation.
        seq: u64,
    },
    /// Transport-level acknowledgement of one received message.
    MsgAck {
        /// The message being acknowledged.
        of: MsgId,
    },
    /// Worker → AM: liveness beacon (unreliable by design).
    Heartbeat {
        /// The beaconing worker.
        worker: WorkerId,
        /// Its current iteration.
        iteration: u64,
    },
    /// Replacement AM → everyone: a new AM epoch has begun; parked workers
    /// re-send `Coordinate`, joining workers re-send `Report`.
    AmReset {
        /// The new AM epoch.
        epoch: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// Restarted worker → AM: request re-admission after a crash,
    /// presenting the last term it observed and the boundary iteration of
    /// its last applied state (its snapshot version). The AM either admits
    /// it (re-replicating state at the next boundary) or fences it via the
    /// term in its reply traffic.
    Rejoin {
        /// The worker asking back in.
        worker: WorkerId,
        /// Highest AM term the worker saw before crashing.
        term: u64,
        /// Boundary iteration of its last applied snapshot/state.
        iteration: u64,
    },
}

/// One message in flight on the bus: the body plus the reliable-messaging
/// metadata every send carries.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Unique message id (stable across resends).
    pub id: MsgId,
    /// The sending endpoint.
    pub from: EndpointId,
    /// Send attempt, starting at 1; resends increment it so fault
    /// injection rolls fresh dice.
    pub attempt: u32,
    /// The payload.
    pub body: RtMsg,
}

/// Per-destination delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Sends addressed to this endpoint.
    pub sent: u64,
    /// Messages actually enqueued (post-chaos, endpoint registered).
    pub delivered: u64,
    /// Messages addressed to an unregistered or departed endpoint.
    pub dead_letters: u64,
}

#[derive(Default)]
struct BusInner {
    senders: RwLock<HashMap<EndpointId, Sender<Envelope>>>,
    stats: Mutex<HashMap<EndpointId, EndpointStats>>,
    chaos: Option<Mutex<ChaosEngine>>,
    /// The runtime's event journal, when observability is attached: the
    /// bus emits dead-letter and chaos events, and every component that
    /// holds the bus (reliable endpoints, workers) reaches the journal
    /// through [`Bus::journal`] without any extra plumbing.
    journal: Option<Arc<EventJournal>>,
    /// Id stream for bare [`Bus::send`] calls (owner `u32::MAX`).
    raw_ids: Mutex<MsgIdAllocator>,
    /// The runtime's clock. Every component holding the bus (reliable
    /// endpoints, workers, the comm group) reads time through
    /// [`Bus::time`], so one runtime ticks on exactly one source.
    time: TimeSource,
}

/// A shared registry of endpoint senders.
#[derive(Clone, Default)]
pub struct Bus {
    inner: Arc<BusInner>,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bus({} endpoints)", self.inner.senders.read().len())
    }
}

/// A participant's receive side.
#[derive(Debug)]
pub struct Endpoint {
    id: EndpointId,
    receiver: Receiver<Envelope>,
    time: TimeSource,
}

impl Bus {
    /// Creates an empty bus with no fault injection.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Creates a bus whose sends run through the given chaos policy.
    pub fn with_chaos(policy: ChaosPolicy) -> Self {
        Bus::with_options(Some(policy), None, TimeSource::real())
    }

    /// Creates a bus with optional fault injection, an optional event
    /// journal, and the runtime's clock (the runtime builder's entry
    /// point).
    pub fn with_options(
        chaos: Option<ChaosPolicy>,
        journal: Option<Arc<EventJournal>>,
        time: TimeSource,
    ) -> Self {
        Bus {
            inner: Arc::new(BusInner {
                chaos: chaos.map(|policy| Mutex::new(ChaosEngine::new(policy))),
                journal,
                raw_ids: Mutex::new(MsgIdAllocator::for_owner(u32::MAX)),
                time,
                ..BusInner::default()
            }),
        }
    }

    /// The attached event journal, if observability is wired up.
    pub fn journal(&self) -> Option<&Arc<EventJournal>> {
        self.inner.journal.as_ref()
    }

    /// The clock this bus (and the runtime around it) ticks on.
    pub fn time(&self) -> &TimeSource {
        &self.inner.time
    }

    /// Registers `id` and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn register(&self, id: EndpointId) -> Endpoint {
        let (tx, rx) = unbounded();
        let prev = self.inner.senders.write().insert(id, tx);
        assert!(prev.is_none(), "endpoint {id} registered twice");
        Endpoint {
            id,
            receiver: rx,
            time: self.inner.time.clone(),
        }
    }

    /// Removes an endpoint; subsequent sends to it become dead letters.
    pub fn unregister(&self, id: EndpointId) {
        self.inner.senders.write().remove(&id);
    }

    /// Sends a bare message with bus-allocated id and attempt 1 — for
    /// traffic outside any reliable endpoint (tests, fire-and-forget).
    /// Returns false if the destination is unregistered.
    pub fn send(&self, to: EndpointId, body: RtMsg) -> bool {
        let id = self.inner.raw_ids.lock().next_id();
        self.send_envelope(
            to,
            Envelope {
                id,
                from: EndpointId::Controller,
                attempt: 1,
                body,
            },
        )
    }

    /// Sends a full envelope through fault injection (if any) to `to`.
    /// Returns whether the destination endpoint is currently registered —
    /// a chaos drop still reports true, because a real sender cannot
    /// observe in-network loss.
    pub fn send_envelope(&self, to: EndpointId, env: Envelope) -> bool {
        {
            let mut stats = self.inner.stats.lock();
            stats.entry(to).or_default().sent += 1;
        }
        // Heartbeats and transport acks dominate chaotic traffic; their
        // fates stay out of the journal so the ring retains the events
        // that matter for adjustment forensics.
        let noisy = matches!(env.body, RtMsg::Heartbeat { .. } | RtMsg::MsgAck { .. });
        let deliveries = match &self.inner.chaos {
            Some(engine) => {
                let now = self.inner.time.now();
                let mut engine = engine.lock();
                // Window lifecycle transitions are observed on sends; with
                // heartbeats flowing constantly that pins the journal event
                // to within one beacon period of the scripted instant.
                let (started, healed) = engine.poll_windows(now);
                let (deliveries, fate) = engine.route(now, to, env);
                drop(engine);
                if let Some(journal) = self.inner.journal.as_ref() {
                    for name in started {
                        journal.emit(EventKind::PartitionStart { name });
                    }
                    for name in healed {
                        journal.emit(EventKind::PartitionHeal { name });
                    }
                    if let (Some(fate), false) = (fate, noisy) {
                        journal.emit(EventKind::ChaosInjected { fate, to });
                    }
                }
                deliveries
            }
            None => vec![(to, env)],
        };
        for (dst, envelope) in deliveries {
            let env_noisy = matches!(
                envelope.body,
                RtMsg::Heartbeat { .. } | RtMsg::MsgAck { .. }
            );
            let delivered = match self.inner.senders.read().get(&dst) {
                Some(tx) => tx.send(envelope).is_ok(),
                None => false,
            };
            let mut stats = self.inner.stats.lock();
            let entry = stats.entry(dst).or_default();
            if delivered {
                entry.delivered += 1;
            } else {
                entry.dead_letters += 1;
                if let (Some(journal), false) = (self.inner.journal.as_ref(), env_noisy) {
                    journal.emit(EventKind::DeadLetter { to: dst });
                }
            }
        }
        let registered = self.inner.senders.read().contains_key(&to);
        // Under virtual time, parked receivers re-check their queues only
        // when woken; publish the delivery. (No bus lock is held here, and
        // `wake_all` only flips scheduler states — it never blocks.)
        self.inner.time.wake_all();
        registered
    }

    /// Delivery counters for one destination.
    pub fn stats(&self, id: EndpointId) -> EndpointStats {
        self.inner
            .stats
            .lock()
            .get(&id)
            .copied()
            .unwrap_or_default()
    }

    /// All per-destination counters, sorted by endpoint.
    pub fn all_stats(&self) -> Vec<(EndpointId, EndpointStats)> {
        let mut v: Vec<_> = self
            .inner
            .stats
            .lock()
            .iter()
            .map(|(&k, &s)| (k, s))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Total messages that could not be delivered anywhere.
    pub fn total_dead_letters(&self) -> u64 {
        self.inner
            .stats
            .lock()
            .values()
            .map(|s| s.dead_letters)
            .sum()
    }

    /// Fault-injection counters, if a chaos policy is attached.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.inner.chaos.as_ref().map(|e| e.lock().stats())
    }

    /// Whether an open partition window currently cuts the `a`↔`b` edge.
    /// Always false on a bus without fault injection.
    pub fn is_partitioned(&self, a: EndpointId, b: EndpointId) -> bool {
        match &self.inner.chaos {
            Some(engine) => engine.lock().is_partitioned(self.inner.time.now(), a, b),
            None => false,
        }
    }

    /// Injects a partition window at runtime (in addition to any windows
    /// scripted in the policy). Returns false when the bus has no chaos
    /// engine to carry it.
    pub(crate) fn add_partition(&self, window: PartitionWindow) -> bool {
        match &self.inner.chaos {
            Some(engine) => {
                engine.lock().add_window(window);
                true
            }
            None => false,
        }
    }

    /// Registered endpoint count.
    pub fn len(&self) -> usize {
        self.inner.senders.read().len()
    }

    /// True when no endpoints are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.senders.read().is_empty()
    }
}

impl Endpoint {
    /// This endpoint's id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Blocks until a message arrives.
    ///
    /// # Panics
    ///
    /// Panics if every sender has been dropped — a protocol bug, since the
    /// bus itself holds the senders until unregistered.
    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (Endpoint::recv)
    pub fn recv(&self) -> Envelope {
        if self.time.is_virtual() {
            loop {
                if let Some(env) = self.try_recv() {
                    return env;
                }
                // Woken by the sender's `wake_all`; if no sender can ever
                // exist again the clock reports a virtual deadlock, which
                // surfaces the same protocol bug as the real-time expect.
                self.time.park();
            }
        }
        self.receiver
            .recv()
            .expect("bus dropped while endpoint alive")
    }

    /// Blocks up to `timeout` for a message. Under virtual time this parks
    /// the calling thread; the wait costs zero wall-clock time once every
    /// other runtime thread is quiescent.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if self.time.is_virtual() {
            let deadline = self.time.deadline_after(timeout);
            loop {
                if let Some(env) = self.try_recv() {
                    return Some(env);
                }
                if self.time.now() >= deadline {
                    return None;
                }
                self.time.park_until(deadline);
            }
        }
        self.receiver.recv_timeout(timeout).ok()
    }

    /// The clock of the bus this endpoint was registered on.
    pub fn time(&self) -> &TimeSource {
        &self.time
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_between_endpoints() {
        let bus = Bus::new();
        let am = bus.register(EndpointId::Am);
        let _w = bus.register(EndpointId::Worker(WorkerId(0)));
        assert!(bus.send(
            EndpointId::Am,
            RtMsg::Report {
                worker: WorkerId(0)
            }
        ));
        match am.recv().body {
            RtMsg::Report { worker } => assert_eq!(worker, WorkerId(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_to_missing_endpoint_is_a_dead_letter() {
        let bus = Bus::new();
        assert!(!bus.send(EndpointId::Am, RtMsg::Stop { seq: 0 }));
        assert_eq!(bus.stats(EndpointId::Am).dead_letters, 1);
        assert_eq!(bus.total_dead_letters(), 1);
    }

    #[test]
    fn unregister_removes() {
        let bus = Bus::new();
        let _e = bus.register(EndpointId::Controller);
        assert_eq!(bus.len(), 1);
        bus.unregister(EndpointId::Controller);
        assert!(bus.is_empty());
        assert!(!bus.send(EndpointId::Controller, RtMsg::Ack { seq: 0 }));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let bus = Bus::new();
        let _a = bus.register(EndpointId::Am);
        let _b = bus.register(EndpointId::Am);
    }

    #[test]
    fn per_receiver_fifo_order() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(1)));
        bus.send(
            EndpointId::Worker(WorkerId(1)),
            RtMsg::Proceed {
                boundary: 1,
                term: 1,
            },
        );
        bus.send(EndpointId::Worker(WorkerId(1)), RtMsg::Leave { term: 1 });
        assert!(matches!(w.recv().body, RtMsg::Proceed { .. }));
        assert!(matches!(w.recv().body, RtMsg::Leave { .. }));
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(2)));
        assert!(w.try_recv().is_none());
    }

    #[test]
    fn recv_timeout_expires() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(3)));
        assert!(w.recv_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn stats_count_sends_and_deliveries() {
        let bus = Bus::new();
        let _w = bus.register(EndpointId::Worker(WorkerId(0)));
        for _ in 0..3 {
            bus.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        }
        bus.send(EndpointId::Am, RtMsg::Leave { term: 0 }); // dead letter
        let s = bus.stats(EndpointId::Worker(WorkerId(0)));
        assert_eq!(s.sent, 3);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.dead_letters, 0);
        assert_eq!(bus.stats(EndpointId::Am).dead_letters, 1);
        assert_eq!(bus.all_stats().len(), 2);
    }

    #[test]
    fn envelopes_survive_unregistered_receiver_drop() {
        // Receiver dropped without unregister (crashed worker): sends
        // become dead letters, not panics.
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(7)));
        drop(w);
        assert!(bus.send(EndpointId::Worker(WorkerId(7)), RtMsg::Leave { term: 0 }));
        assert_eq!(bus.stats(EndpointId::Worker(WorkerId(7))).dead_letters, 1);
    }

    #[test]
    fn chaotic_bus_reports_stats() {
        use crate::chaos::ChaosPolicy;
        let bus = Bus::with_chaos(ChaosPolicy::new(9).drop(1.0));
        let w = bus.register(EndpointId::Worker(WorkerId(0)));
        bus.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        assert!(w.try_recv().is_none());
        let chaos = bus.chaos_stats().unwrap();
        assert_eq!(chaos.dropped, 1);
    }
}
