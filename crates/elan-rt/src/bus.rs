//! The control-plane message bus: crossbeam channels with named endpoints.
//!
//! Stands in for the paper's ZeroMQ sockets (§V-D). Each participant owns
//! an [`Endpoint`] (its receive queue); anyone holding the [`Bus`] can
//! send to any endpoint by id. Per-receiver FIFO ordering is inherited
//! from the underlying channel.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use elan_core::state::WorkerId;

/// Identifies a bus endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EndpointId {
    /// The application master.
    Am,
    /// A training worker.
    Worker(WorkerId),
    /// The external controller (the `ElasticRuntime` handle).
    Controller,
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointId::Am => write!(f, "am"),
            EndpointId::Worker(w) => write!(f, "{w}"),
            EndpointId::Controller => write!(f, "controller"),
        }
    }
}

/// Control-plane messages of the live runtime.
#[derive(Debug, Clone)]
pub enum RtMsg {
    /// Worker → AM: ready to join after start+initialization (step ②).
    Report {
        /// The new worker.
        worker: WorkerId,
    },
    /// Worker → AM: reached a coordination boundary (step ③).
    Coordinate {
        /// The coordinating worker.
        worker: WorkerId,
        /// Its current iteration.
        iteration: u64,
    },
    /// AM → worker: continue training unchanged.
    Proceed,
    /// AM → worker: replicate state to `dst` (step ④), then report done.
    TransferOrder {
        /// Destination worker.
        dst: WorkerId,
    },
    /// Worker → AM: the ordered transfer finished.
    TransferDone {
        /// The source that completed its transfer.
        src: WorkerId,
    },
    /// Source worker → new worker: the replicated training state.
    StateTransfer {
        /// Model parameters (really copied between threads).
        params: Arc<Vec<f32>>,
        /// Optimizer (momentum) state.
        momentum: Arc<Vec<f32>>,
        /// Iteration to resume from.
        iteration: u64,
        /// Serial data-loading cursor (§V-C: one integer).
        data_cursor: u64,
    },
    /// AM → worker: training resumes under the new membership (step ⑤).
    Resume {
        /// The new communication-group generation.
        generation: u64,
    },
    /// AM → worker: leave the job (scale-in / migration / shutdown).
    Leave,
    /// Controller → AM: adjust to this membership.
    AdjustTo {
        /// Workers after the adjustment.
        target: Vec<WorkerId>,
    },
    /// Controller → AM: stop the job at the next boundary.
    Stop,
    /// Controller → AM: snapshot the training state at the next boundary.
    Checkpoint,
    /// AM → worker: send your state to the controller (checkpoint), then
    /// report `TransferDone`.
    CheckpointOrder,
    /// AM → controller: the last requested operation finished.
    Ack,
}

/// A shared registry of endpoint senders.
#[derive(Clone, Default)]
pub struct Bus {
    senders: Arc<RwLock<HashMap<EndpointId, Sender<RtMsg>>>>,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bus({} endpoints)", self.senders.read().len())
    }
}

/// A participant's receive side.
#[derive(Debug)]
pub struct Endpoint {
    id: EndpointId,
    receiver: Receiver<RtMsg>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Registers `id` and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn register(&self, id: EndpointId) -> Endpoint {
        let (tx, rx) = unbounded();
        let prev = self.senders.write().insert(id, tx);
        assert!(prev.is_none(), "endpoint {id} registered twice");
        Endpoint { id, receiver: rx }
    }

    /// Removes an endpoint; subsequent sends to it report failure.
    pub fn unregister(&self, id: EndpointId) {
        self.senders.write().remove(&id);
    }

    /// Sends `msg` to `to`. Returns false if the endpoint is gone (the
    /// runtime equivalent of a lost peer; callers decide how to react).
    pub fn send(&self, to: EndpointId, msg: RtMsg) -> bool {
        let guard = self.senders.read();
        match guard.get(&to) {
            Some(tx) => tx.send(msg).is_ok(),
            None => false,
        }
    }

    /// Registered endpoint count.
    pub fn len(&self) -> usize {
        self.senders.read().len()
    }

    /// True when no endpoints are registered.
    pub fn is_empty(&self) -> bool {
        self.senders.read().is_empty()
    }
}

impl Endpoint {
    /// This endpoint's id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Blocks until a message arrives.
    ///
    /// # Panics
    ///
    /// Panics if every sender has been dropped — a protocol bug, since the
    /// bus itself holds the senders until unregistered.
    pub fn recv(&self) -> RtMsg {
        self.receiver
            .recv()
            .expect("bus dropped while endpoint alive")
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<RtMsg> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_between_endpoints() {
        let bus = Bus::new();
        let am = bus.register(EndpointId::Am);
        let _w = bus.register(EndpointId::Worker(WorkerId(0)));
        assert!(bus.send(EndpointId::Am, RtMsg::Report {
            worker: WorkerId(0)
        }));
        match am.recv() {
            RtMsg::Report { worker } => assert_eq!(worker, WorkerId(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_to_missing_endpoint_fails_gracefully() {
        let bus = Bus::new();
        assert!(!bus.send(EndpointId::Am, RtMsg::Stop));
    }

    #[test]
    fn unregister_removes() {
        let bus = Bus::new();
        let _e = bus.register(EndpointId::Controller);
        assert_eq!(bus.len(), 1);
        bus.unregister(EndpointId::Controller);
        assert!(bus.is_empty());
        assert!(!bus.send(EndpointId::Controller, RtMsg::Ack));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let bus = Bus::new();
        let _a = bus.register(EndpointId::Am);
        let _b = bus.register(EndpointId::Am);
    }

    #[test]
    fn per_receiver_fifo_order() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(1)));
        bus.send(EndpointId::Worker(WorkerId(1)), RtMsg::Proceed);
        bus.send(EndpointId::Worker(WorkerId(1)), RtMsg::Leave);
        assert!(matches!(w.recv(), RtMsg::Proceed));
        assert!(matches!(w.recv(), RtMsg::Leave));
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(2)));
        assert!(w.try_recv().is_none());
    }
}
