//! The control-plane message bus: crossbeam channels with named endpoints.
//!
//! Stands in for the paper's ZeroMQ sockets (§V-D). Each participant owns
//! an [`Endpoint`] (its receive queue); anyone holding the [`Bus`] can
//! send to any endpoint by id. Per-receiver FIFO ordering is inherited
//! from the underlying channel — unless a [`ChaosPolicy`] is attached, in
//! which case messages may be dropped, duplicated, or delayed, and the
//! [`crate::reliable`] layer is responsible for masking the damage.
//!
//! The bus also keeps per-endpoint delivery statistics and a dead-letter
//! counter (sends to unregistered or departed endpoints), which the
//! shutdown report surfaces.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use elan_core::messages::MsgIdAllocator;

use crate::chaos::{ChaosPolicy, ChaosStats, PartitionWindow};
use crate::obs::EventJournal;
use crate::time::TimeSource;
use crate::transport::{MemoryTransport, Transport};

pub use elan_core::protocol::{EndpointId, EndpointStats, Envelope, RtMsg};

/// A handle on a [`Transport`]: the shared registry of endpoints every
/// runtime component sends through.
///
/// Since the transport redesign the bus is a thin, cloneable facade — the
/// delivery mechanics (channels, chaos, sockets) live behind the
/// [`Transport`] trait, and the bus caches the transport's journal and
/// clock so hot paths ([`Bus::time`], [`Bus::journal`]) stay
/// allocation-free references.
pub struct Bus {
    transport: Arc<dyn Transport>,
    /// Cache of [`Transport::journal`], captured at construction: the
    /// bus emits nothing itself, but every component that holds the bus
    /// (reliable endpoints, workers) reaches the journal through
    /// [`Bus::journal`] without any extra plumbing.
    journal: Option<Arc<EventJournal>>,
    /// Cache of [`Transport::time`]. Every component holding the bus
    /// (reliable endpoints, workers, the comm group) reads time through
    /// [`Bus::time`], so one runtime ticks on exactly one source.
    time: TimeSource,
    /// Id stream for bare [`Bus::send`] calls (owner `u32::MAX`).
    raw_ids: Arc<Mutex<MsgIdAllocator>>,
}

impl Clone for Bus {
    fn clone(&self) -> Self {
        Bus {
            transport: Arc::clone(&self.transport),
            journal: self.journal.clone(),
            time: self.time.clone(),
            raw_ids: Arc::clone(&self.raw_ids),
        }
    }
}

impl Default for Bus {
    fn default() -> Self {
        Bus::new()
    }
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bus({} endpoints)", self.transport.endpoint_count())
    }
}

/// Fluent construction of an in-memory [`Bus`], mirroring
/// `ElasticRuntime::builder()`: chaos, journal, clock, and scripted
/// partition windows are all optional.
///
/// # Examples
///
/// ```
/// use elan_rt::{Bus, ChaosPolicy};
///
/// let bus = Bus::builder().chaos(ChaosPolicy::new(7).drop(0.1)).build();
/// assert!(bus.chaos_stats().is_some());
/// ```
#[derive(Default)]
pub struct BusBuilder {
    chaos: Option<ChaosPolicy>,
    journal: Option<Arc<EventJournal>>,
    time: Option<TimeSource>,
    partitions: Vec<PartitionWindow>,
}

impl fmt::Debug for BusBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BusBuilder")
            .field("chaos", &self.chaos.is_some())
            .field("journal", &self.journal.is_some())
            .field("time", &self.time)
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

impl BusBuilder {
    /// Routes every send through the given fault-injection policy.
    pub fn chaos(mut self, policy: ChaosPolicy) -> Self {
        self.chaos = Some(policy);
        self
    }

    /// Attaches an event journal: the transport emits dead-letter and
    /// chaos events into it.
    pub fn journal(mut self, journal: Arc<EventJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The clock the bus (and everything holding it) ticks on. Defaults
    /// to [`TimeSource::real`].
    pub fn time(mut self, time: TimeSource) -> Self {
        self.time = Some(time);
        self
    }

    /// Scripts a partition window. Implies a (fault-free) chaos engine
    /// when no [`BusBuilder::chaos`] policy was given, so the window has
    /// an engine to live in.
    pub fn partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// Builds the in-memory bus.
    pub fn build(self) -> Bus {
        let chaos = match (self.chaos, self.partitions.is_empty()) {
            (Some(policy), _) => Some(policy),
            // A scripted partition needs an engine even without faults.
            (None, false) => Some(ChaosPolicy::new(0)),
            (None, true) => None,
        };
        let time = self.time.unwrap_or_else(TimeSource::real);
        let transport = MemoryTransport::new(chaos, self.journal, time);
        for window in self.partitions {
            transport.add_partition(window);
        }
        Bus::with_transport(Arc::new(transport))
    }
}

/// A participant's receive side.
#[derive(Debug)]
pub struct Endpoint {
    id: EndpointId,
    receiver: Receiver<Envelope>,
    time: TimeSource,
}

impl Endpoint {
    /// Assembles an endpoint around its delivery channel — transport
    /// implementations call this from [`Transport::register`].
    pub(crate) fn assemble(id: EndpointId, receiver: Receiver<Envelope>, time: TimeSource) -> Self {
        Endpoint { id, receiver, time }
    }
}

impl Bus {
    /// Creates an empty in-memory bus with no fault injection.
    pub fn new() -> Self {
        BusBuilder::default().build()
    }

    /// Starts building an in-memory bus:
    /// `Bus::builder().chaos(policy).journal(j).time(t).build()`.
    pub fn builder() -> BusBuilder {
        BusBuilder::default()
    }

    /// Wraps an already-configured transport (in-memory or socket). The
    /// transport's journal and clock are captured here, so attach them
    /// (via [`Transport::attach`] or transport-specific construction)
    /// *before* wrapping.
    pub fn with_transport(transport: Arc<dyn Transport>) -> Self {
        Bus {
            journal: transport.journal(),
            time: transport.time(),
            raw_ids: Arc::new(Mutex::new(MsgIdAllocator::for_owner(u32::MAX))),
            transport,
        }
    }

    /// The transport this bus delivers through.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The attached event journal, if observability is wired up.
    pub fn journal(&self) -> Option<&Arc<EventJournal>> {
        self.journal.as_ref()
    }

    /// The clock this bus (and the runtime around it) ticks on.
    pub fn time(&self) -> &TimeSource {
        &self.time
    }

    /// Registers `id` and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered locally.
    pub fn register(&self, id: EndpointId) -> Endpoint {
        self.transport.register(id)
    }

    /// Removes an endpoint; subsequent sends to it become dead letters.
    pub fn unregister(&self, id: EndpointId) {
        self.transport.unregister(id);
    }

    /// Sends a bare message with bus-allocated id and attempt 1 — for
    /// traffic outside any reliable endpoint (tests, fire-and-forget).
    /// Returns false if the destination is unregistered.
    pub fn send(&self, to: EndpointId, body: RtMsg) -> bool {
        let id = self.raw_ids.lock().next_id();
        self.send_envelope(
            to,
            Envelope {
                id,
                from: EndpointId::Controller,
                attempt: 1,
                body,
            },
        )
    }

    /// Sends a full envelope through the transport (and its fault
    /// injection, if any) to `to`. Returns whether the destination is
    /// currently reachable — a chaos drop still reports true, because a
    /// real sender cannot observe in-network loss.
    pub fn send_envelope(&self, to: EndpointId, env: Envelope) -> bool {
        self.transport.send_envelope(to, env)
    }

    /// Delivery counters for one destination.
    pub fn stats(&self, id: EndpointId) -> EndpointStats {
        self.transport.stats(id)
    }

    /// All per-destination counters, sorted by endpoint.
    pub fn all_stats(&self) -> Vec<(EndpointId, EndpointStats)> {
        self.transport.all_stats()
    }

    /// Total messages that could not be delivered anywhere.
    pub fn total_dead_letters(&self) -> u64 {
        self.transport.total_dead_letters()
    }

    /// Fault-injection counters, if a chaos policy is attached.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.transport.chaos_stats()
    }

    /// Whether an open partition window currently cuts the `a`↔`b` edge.
    /// Always false on a transport without fault injection.
    pub fn is_partitioned(&self, a: EndpointId, b: EndpointId) -> bool {
        self.transport.is_partitioned(a, b)
    }

    /// Injects a partition window at runtime (in addition to any windows
    /// scripted in the policy). Returns false when the transport has no
    /// chaos engine to carry it.
    pub(crate) fn add_partition(&self, window: PartitionWindow) -> bool {
        self.transport.add_partition(window)
    }

    /// Registered endpoint count.
    pub fn len(&self) -> usize {
        self.transport.endpoint_count()
    }

    /// True when no endpoints are registered.
    pub fn is_empty(&self) -> bool {
        self.transport.endpoint_count() == 0
    }
}

impl Endpoint {
    /// This endpoint's id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Blocks until a message arrives.
    ///
    /// # Panics
    ///
    /// Panics if every sender has been dropped — a protocol bug, since the
    /// bus itself holds the senders until unregistered.
    #[allow(clippy::expect_used)] // waived: see verify-allow.toml (Endpoint::recv)
    pub fn recv(&self) -> Envelope {
        if self.time.is_virtual() {
            loop {
                if let Some(env) = self.try_recv() {
                    return env;
                }
                // Woken by the sender's `wake_all`; if no sender can ever
                // exist again the clock reports a virtual deadlock, which
                // surfaces the same protocol bug as the real-time expect.
                self.time.park();
            }
        }
        self.receiver
            .recv()
            .expect("bus dropped while endpoint alive")
    }

    /// Blocks up to `timeout` for a message. Under virtual time this parks
    /// the calling thread; the wait costs zero wall-clock time once every
    /// other runtime thread is quiescent.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if self.time.is_virtual() {
            let deadline = self.time.deadline_after(timeout);
            loop {
                if let Some(env) = self.try_recv() {
                    return Some(env);
                }
                if self.time.now() >= deadline {
                    return None;
                }
                self.time.park_until(deadline);
            }
        }
        self.receiver.recv_timeout(timeout).ok()
    }

    /// The clock of the bus this endpoint was registered on.
    pub fn time(&self) -> &TimeSource {
        &self.time
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan_core::state::WorkerId;

    #[test]
    fn roundtrip_between_endpoints() {
        let bus = Bus::new();
        let am = bus.register(EndpointId::Am);
        let _w = bus.register(EndpointId::Worker(WorkerId(0)));
        assert!(bus.send(
            EndpointId::Am,
            RtMsg::Report {
                worker: WorkerId(0)
            }
        ));
        match am.recv().body {
            RtMsg::Report { worker } => assert_eq!(worker, WorkerId(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_to_missing_endpoint_is_a_dead_letter() {
        let bus = Bus::new();
        assert!(!bus.send(EndpointId::Am, RtMsg::Stop { seq: 0 }));
        assert_eq!(bus.stats(EndpointId::Am).dead_letters, 1);
        assert_eq!(bus.total_dead_letters(), 1);
    }

    #[test]
    fn unregister_removes() {
        let bus = Bus::new();
        let _e = bus.register(EndpointId::Controller);
        assert_eq!(bus.len(), 1);
        bus.unregister(EndpointId::Controller);
        assert!(bus.is_empty());
        assert!(!bus.send(EndpointId::Controller, RtMsg::Ack { seq: 0 }));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let bus = Bus::new();
        let _a = bus.register(EndpointId::Am);
        let _b = bus.register(EndpointId::Am);
    }

    #[test]
    fn per_receiver_fifo_order() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(1)));
        bus.send(
            EndpointId::Worker(WorkerId(1)),
            RtMsg::Proceed {
                boundary: 1,
                term: 1,
            },
        );
        bus.send(EndpointId::Worker(WorkerId(1)), RtMsg::Leave { term: 1 });
        assert!(matches!(w.recv().body, RtMsg::Proceed { .. }));
        assert!(matches!(w.recv().body, RtMsg::Leave { .. }));
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(2)));
        assert!(w.try_recv().is_none());
    }

    #[test]
    fn recv_timeout_expires() {
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(3)));
        assert!(w.recv_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn stats_count_sends_and_deliveries() {
        let bus = Bus::new();
        let _w = bus.register(EndpointId::Worker(WorkerId(0)));
        for _ in 0..3 {
            bus.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        }
        bus.send(EndpointId::Am, RtMsg::Leave { term: 0 }); // dead letter
        let s = bus.stats(EndpointId::Worker(WorkerId(0)));
        assert_eq!(s.sent, 3);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.dead_letters, 0);
        assert_eq!(bus.stats(EndpointId::Am).dead_letters, 1);
        assert_eq!(bus.all_stats().len(), 2);
    }

    #[test]
    fn envelopes_survive_unregistered_receiver_drop() {
        // Receiver dropped without unregister (crashed worker): sends
        // become dead letters, not panics.
        let bus = Bus::new();
        let w = bus.register(EndpointId::Worker(WorkerId(7)));
        drop(w);
        assert!(bus.send(EndpointId::Worker(WorkerId(7)), RtMsg::Leave { term: 0 }));
        assert_eq!(bus.stats(EndpointId::Worker(WorkerId(7))).dead_letters, 1);
    }

    #[test]
    fn chaotic_bus_reports_stats() {
        let bus = Bus::builder().chaos(ChaosPolicy::new(9).drop(1.0)).build();
        let w = bus.register(EndpointId::Worker(WorkerId(0)));
        bus.send(EndpointId::Worker(WorkerId(0)), RtMsg::Leave { term: 0 });
        assert!(w.try_recv().is_none());
        let chaos = bus.chaos_stats().unwrap();
        assert_eq!(chaos.dropped, 1);
    }
}
