//! Post-hoc term-fencing safety checker over the [`EventJournal`].
//!
//! Chaos tests prove *liveness* by finishing; this module proves the
//! *safety* half of AM failover: replaying a run's retained events, it
//! checks that at most one AM acted per fencing term and that no effect
//! from a stale (fenced) AM landed after its successor's term bump —
//! the split-brain freedom the persist-before-act store is supposed to
//! guarantee under scripted partitions.
//!
//! The checker is deliberately conservative about the journal being a
//! bounded ring: an effect carrying a term *newer* than the last
//! retained `TermBump` means the bump itself was evicted, not that the
//! protocol misbehaved, so the checker adopts it as the new baseline
//! instead of flagging it.
//!
//! [`EventJournal`]: crate::obs::EventJournal

use crate::obs::{Event, EventKind};

/// One safety violation found in a journal replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermViolation {
    /// A `TermBump` did not strictly increase the term — two AM
    /// incarnations claimed the same (or an older) term.
    NonMonotonicTermBump {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The highest term bumped before it.
        prev: u64,
        /// The term it claimed.
        next: u64,
    },
    /// An `AmElected` did not strictly increase the epoch.
    NonMonotonicElection {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The highest epoch elected before it.
        prev: u64,
        /// The epoch it claimed.
        next: u64,
    },
    /// A term-carrying effect (boundary release, rejoin admission)
    /// landed *after* a successor bumped past its term: a fenced AM
    /// still acted.
    StaleTermEffect {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The effect's event kind (`EventKind::name`).
        kind: &'static str,
        /// The stale term the effect was issued under.
        term: u64,
        /// The term in force when it landed.
        current: u64,
    },
    /// A `StaleTermRejected` whose rejected term was not actually older
    /// than the fencing term — the fence fired on non-stale traffic.
    MalformedRejection {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The fencing term.
        term: u64,
        /// The term that was rejected.
        stale: u64,
    },
}

impl std::fmt::Display for TermViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermViolation::NonMonotonicTermBump { seq, prev, next } => {
                write!(
                    f,
                    "event #{seq}: term bump {prev} -> {next} is not an increase"
                )
            }
            TermViolation::NonMonotonicElection { seq, prev, next } => {
                write!(
                    f,
                    "event #{seq}: election epoch {prev} -> {next} is not an increase"
                )
            }
            TermViolation::StaleTermEffect {
                seq,
                kind,
                term,
                current,
            } => write!(
                f,
                "event #{seq}: {kind} under stale term {term} after bump to {current}"
            ),
            TermViolation::MalformedRejection { seq, term, stale } => write!(
                f,
                "event #{seq}: rejection of term {stale} under term {term} is not stale"
            ),
        }
    }
}

/// The outcome of a journal safety replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermSafetyReport {
    /// Every violation found, in journal order.
    pub violations: Vec<TermViolation>,
    /// `TermBump` events replayed.
    pub terms_seen: u64,
    /// Term-carrying effects audited against the fence.
    pub effects_checked: u64,
}

impl TermSafetyReport {
    /// True when the replay found no violation.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for TermSafetyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violations over {} term(s), {} effect(s)",
            self.violations.len(),
            self.terms_seen,
            self.effects_checked
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// Replays `events` (e.g. [`ShutdownReport::events`]) and proves the
/// term-fencing invariants: terms and election epochs are strictly
/// monotonic, every term-carrying effect was issued under the term in
/// force, and every logged rejection really was of stale traffic.
///
/// [`ShutdownReport::events`]: crate::runtime::ShutdownReport
pub fn check_term_safety(events: &[Event]) -> TermSafetyReport {
    let mut violations = Vec::new();
    let mut terms_seen = 0u64;
    let mut effects_checked = 0u64;
    // The term/epoch in force; None until the first bump/election is
    // seen (the ring may have evicted the run's opening events).
    let mut current_term: Option<u64> = None;
    let mut current_epoch: Option<u64> = None;
    let audit = |seq: u64,
                 kind: &'static str,
                 term: u64,
                 current_term: &mut Option<u64>,
                 violations: &mut Vec<TermViolation>| {
        match *current_term {
            Some(current) if term < current => violations.push(TermViolation::StaleTermEffect {
                seq,
                kind,
                term,
                current,
            }),
            Some(current) if term > current => *current_term = Some(term), // evicted bump
            Some(_) => {}
            None => *current_term = Some(term),
        }
    };
    for event in events {
        match &event.kind {
            EventKind::TermBump { term } => {
                terms_seen += 1;
                match current_term {
                    Some(prev) if *term <= prev => {
                        violations.push(TermViolation::NonMonotonicTermBump {
                            seq: event.seq,
                            prev,
                            next: *term,
                        });
                    }
                    _ => current_term = Some(*term),
                }
            }
            EventKind::AmElected { epoch } => match current_epoch {
                Some(prev) if *epoch <= prev => {
                    violations.push(TermViolation::NonMonotonicElection {
                        seq: event.seq,
                        prev,
                        next: *epoch,
                    });
                }
                _ => current_epoch = Some(*epoch),
            },
            EventKind::BoundaryReleased { term, .. } => {
                effects_checked += 1;
                audit(
                    event.seq,
                    event.kind.name(),
                    *term,
                    &mut current_term,
                    &mut violations,
                );
            }
            EventKind::WorkerRejoin { term, .. } => {
                effects_checked += 1;
                audit(
                    event.seq,
                    event.kind.name(),
                    *term,
                    &mut current_term,
                    &mut violations,
                );
            }
            EventKind::StaleTermRejected { term, stale } if stale >= term => {
                violations.push(TermViolation::MalformedRejection {
                    seq: event.seq,
                    term: *term,
                    stale: *stale,
                });
            }
            _ => {}
        }
    }
    TermSafetyReport {
        violations,
        terms_seen,
        effects_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            at_us: seq * 10,
            kind,
        }
    }

    #[test]
    fn clean_history_is_safe() {
        let events = vec![
            ev(0, EventKind::TermBump { term: 1 }),
            ev(
                1,
                EventKind::BoundaryReleased {
                    boundary: 5,
                    world: 2,
                    term: 1,
                },
            ),
            ev(2, EventKind::AmElected { epoch: 1 }),
            ev(3, EventKind::TermBump { term: 2 }),
            ev(4, EventKind::StaleTermRejected { term: 2, stale: 1 }),
            ev(
                5,
                EventKind::BoundaryReleased {
                    boundary: 10,
                    world: 2,
                    term: 2,
                },
            ),
        ];
        let report = check_term_safety(&events);
        assert!(report.is_safe(), "{report}");
        assert_eq!(report.terms_seen, 2);
        assert_eq!(report.effects_checked, 2);
    }

    #[test]
    fn post_fence_effect_is_flagged() {
        let events = vec![
            ev(0, EventKind::TermBump { term: 1 }),
            ev(1, EventKind::TermBump { term: 2 }),
            // The fenced term-1 AM releases a boundary anyway.
            ev(
                2,
                EventKind::BoundaryReleased {
                    boundary: 5,
                    world: 2,
                    term: 1,
                },
            ),
        ];
        let report = check_term_safety(&events);
        assert_eq!(
            report.violations,
            vec![TermViolation::StaleTermEffect {
                seq: 2,
                kind: "boundary_released",
                term: 1,
                current: 2,
            }]
        );
    }

    #[test]
    fn duplicate_term_claim_is_flagged() {
        let events = vec![
            ev(0, EventKind::TermBump { term: 3 }),
            ev(1, EventKind::TermBump { term: 3 }),
        ];
        let report = check_term_safety(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            TermViolation::NonMonotonicTermBump {
                prev: 3,
                next: 3,
                ..
            }
        ));
    }

    #[test]
    fn non_monotonic_election_is_flagged() {
        let events = vec![
            ev(0, EventKind::AmElected { epoch: 2 }),
            ev(1, EventKind::AmElected { epoch: 2 }),
        ];
        assert_eq!(check_term_safety(&events).violations.len(), 1);
    }

    #[test]
    fn malformed_rejection_is_flagged() {
        let events = vec![ev(0, EventKind::StaleTermRejected { term: 2, stale: 2 })];
        assert!(matches!(
            check_term_safety(&events).violations[0],
            TermViolation::MalformedRejection {
                term: 2,
                stale: 2,
                ..
            }
        ));
    }

    #[test]
    fn evicted_bump_adopts_newer_effect_term() {
        // Ring eviction dropped `TermBump { 2 }`: a term-2 effect is the
        // new baseline, not a violation — but a later term-1 effect is.
        let events = vec![
            ev(0, EventKind::TermBump { term: 1 }),
            ev(
                1,
                EventKind::WorkerRejoin {
                    worker: elan_core::state::WorkerId(3),
                    term: 2,
                },
            ),
            ev(
                2,
                EventKind::BoundaryReleased {
                    boundary: 5,
                    world: 2,
                    term: 1,
                },
            ),
        ];
        let report = check_term_safety(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            TermViolation::StaleTermEffect {
                term: 1,
                current: 2,
                ..
            }
        ));
    }

    #[test]
    fn empty_journal_is_vacuously_safe() {
        let report = check_term_safety(&[]);
        assert!(report.is_safe());
        assert_eq!(report.terms_seen, 0);
    }
}
