//! Post-hoc term-fencing safety checker over the [`EventJournal`].
//!
//! Chaos tests prove *liveness* by finishing; this module proves the
//! *safety* half of AM failover: replaying a run's retained events, it
//! checks that at most one AM acted per fencing term and that no effect
//! from a stale (fenced) AM landed after its successor's term bump —
//! the split-brain freedom the persist-before-act store is supposed to
//! guarantee under scripted partitions.
//!
//! The checker is deliberately conservative about the journal being a
//! bounded ring: an effect carrying a term *newer* than the last
//! retained `TermBump` means the bump itself was evicted, not that the
//! protocol misbehaved, so the checker adopts it as the new baseline
//! instead of flagging it.
//!
//! [`EventJournal`]: crate::obs::EventJournal

use std::collections::BTreeSet;

use elan_core::protocol::EpochPhase;
use elan_core::state::WorkerId;

use crate::obs::{Event, EventKind};

/// One safety violation found in a journal replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermViolation {
    /// A `TermBump` did not strictly increase the term — two AM
    /// incarnations claimed the same (or an older) term.
    NonMonotonicTermBump {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The highest term bumped before it.
        prev: u64,
        /// The term it claimed.
        next: u64,
    },
    /// An `AmElected` did not strictly increase the epoch.
    NonMonotonicElection {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The highest epoch elected before it.
        prev: u64,
        /// The epoch it claimed.
        next: u64,
    },
    /// A term-carrying effect (boundary release, rejoin admission)
    /// landed *after* a successor bumped past its term: a fenced AM
    /// still acted.
    StaleTermEffect {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The effect's event kind (`EventKind::name`).
        kind: &'static str,
        /// The stale term the effect was issued under.
        term: u64,
        /// The term in force when it landed.
        current: u64,
    },
    /// A `StaleTermRejected` whose rejected term was not actually older
    /// than the fencing term — the fence fired on non-stale traffic.
    MalformedRejection {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The fencing term.
        term: u64,
        /// The term that was rejected.
        stale: u64,
    },
}

impl std::fmt::Display for TermViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermViolation::NonMonotonicTermBump { seq, prev, next } => {
                write!(
                    f,
                    "event #{seq}: term bump {prev} -> {next} is not an increase"
                )
            }
            TermViolation::NonMonotonicElection { seq, prev, next } => {
                write!(
                    f,
                    "event #{seq}: election epoch {prev} -> {next} is not an increase"
                )
            }
            TermViolation::StaleTermEffect {
                seq,
                kind,
                term,
                current,
            } => write!(
                f,
                "event #{seq}: {kind} under stale term {term} after bump to {current}"
            ),
            TermViolation::MalformedRejection { seq, term, stale } => write!(
                f,
                "event #{seq}: rejection of term {stale} under term {term} is not stale"
            ),
        }
    }
}

/// The outcome of a journal safety replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermSafetyReport {
    /// Every violation found, in journal order.
    pub violations: Vec<TermViolation>,
    /// `TermBump` events replayed.
    pub terms_seen: u64,
    /// Term-carrying effects audited against the fence.
    pub effects_checked: u64,
}

impl TermSafetyReport {
    /// True when the replay found no violation.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for TermSafetyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violations over {} term(s), {} effect(s)",
            self.violations.len(),
            self.terms_seen,
            self.effects_checked
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// Replays `events` (e.g. [`ShutdownReport::events`]) and proves the
/// term-fencing invariants: terms and election epochs are strictly
/// monotonic, every term-carrying effect was issued under the term in
/// force, and every logged rejection really was of stale traffic.
///
/// [`ShutdownReport::events`]: crate::runtime::ShutdownReport
pub fn check_term_safety(events: &[Event]) -> TermSafetyReport {
    let mut violations = Vec::new();
    let mut terms_seen = 0u64;
    let mut effects_checked = 0u64;
    // The term/epoch in force; None until the first bump/election is
    // seen (the ring may have evicted the run's opening events).
    let mut current_term: Option<u64> = None;
    let mut current_epoch: Option<u64> = None;
    let audit = |seq: u64,
                 kind: &'static str,
                 term: u64,
                 current_term: &mut Option<u64>,
                 violations: &mut Vec<TermViolation>| {
        match *current_term {
            Some(current) if term < current => violations.push(TermViolation::StaleTermEffect {
                seq,
                kind,
                term,
                current,
            }),
            Some(current) if term > current => *current_term = Some(term), // evicted bump
            Some(_) => {}
            None => *current_term = Some(term),
        }
    };
    for event in events {
        match &event.kind {
            EventKind::TermBump { term } => {
                terms_seen += 1;
                match current_term {
                    Some(prev) if *term <= prev => {
                        violations.push(TermViolation::NonMonotonicTermBump {
                            seq: event.seq,
                            prev,
                            next: *term,
                        });
                    }
                    _ => current_term = Some(*term),
                }
            }
            EventKind::AmElected { epoch } => match current_epoch {
                Some(prev) if *epoch <= prev => {
                    violations.push(TermViolation::NonMonotonicElection {
                        seq: event.seq,
                        prev,
                        next: *epoch,
                    });
                }
                _ => current_epoch = Some(*epoch),
            },
            EventKind::BoundaryReleased { term, .. } => {
                effects_checked += 1;
                audit(
                    event.seq,
                    event.kind.name(),
                    *term,
                    &mut current_term,
                    &mut violations,
                );
            }
            EventKind::WorkerRejoin { term, .. } => {
                effects_checked += 1;
                audit(
                    event.seq,
                    event.kind.name(),
                    *term,
                    &mut current_term,
                    &mut violations,
                );
            }
            EventKind::StaleTermRejected { term, stale } if stale >= term => {
                violations.push(TermViolation::MalformedRejection {
                    seq: event.seq,
                    term: *term,
                    stale: *stale,
                });
            }
            _ => {}
        }
    }
    TermSafetyReport {
        violations,
        terms_seen,
        effects_checked,
    }
}

/// One open-membership safety violation found in a journal replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochViolation {
    /// An `EpochPhaseEntered` went backwards in epochs.
    NonMonotonicEpoch {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The epoch in force before it.
        prev: u64,
        /// The epoch it claimed.
        next: u64,
    },
    /// A phase entry that the machine's diagram does not allow
    /// (e.g. `Train` without a `Warmup`, or a new epoch that skipped
    /// `Cooldown`).
    IllegalPhaseTransition {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The phase (and epoch) in force before it.
        from: (u64, EpochPhase),
        /// The phase (and epoch) it entered.
        to: (u64, EpochPhase),
    },
    /// A `Train` phase started with membership outside the configured
    /// `[min_members, max_members]` thresholds.
    MembershipOutOfBounds {
        /// Journal sequence of the offending event.
        seq: u64,
        /// Members at `Train` entry.
        members: u64,
        /// Configured floor.
        min: u64,
        /// Configured cap.
        max: u64,
    },
    /// A `JoinAdmitted` with no preceding admit `WitnessVoteCast` for
    /// that (worker, epoch) — an un-witnessed admission.
    UnwitnessedAdmission {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The admitted worker.
        worker: WorkerId,
        /// The admitting epoch.
        epoch: u64,
    },
    /// A `JoinAdmitted` whose recorded tally does not carry a strict
    /// majority (or carries no admit vote at all).
    BadAdmissionTally {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The admitted worker.
        worker: WorkerId,
        /// Admit votes recorded.
        votes_for: u64,
        /// Evict votes recorded.
        votes_against: u64,
    },
    /// A `JoinAdmitted` or `WitnessEvicted` landed while the epoch was
    /// not in `Warmup` — membership changed mid-epoch.
    AdmissionOutsidePhase {
        /// Journal sequence of the offending event.
        seq: u64,
        /// The worker admitted or evicted.
        worker: WorkerId,
        /// The phase in force when it landed.
        phase: EpochPhase,
    },
}

impl std::fmt::Display for EpochViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochViolation::NonMonotonicEpoch { seq, prev, next } => {
                write!(f, "event #{seq}: epoch {prev} -> {next} is not monotonic")
            }
            EpochViolation::IllegalPhaseTransition { seq, from, to } => write!(
                f,
                "event #{seq}: illegal phase transition {}@{} -> {}@{}",
                from.1, from.0, to.1, to.0
            ),
            EpochViolation::MembershipOutOfBounds {
                seq,
                members,
                min,
                max,
            } => write!(
                f,
                "event #{seq}: Train entered with {members} members outside [{min}, {max}]"
            ),
            EpochViolation::UnwitnessedAdmission { seq, worker, epoch } => write!(
                f,
                "event #{seq}: worker {worker} admitted in epoch {epoch} with no admit vote on record"
            ),
            EpochViolation::BadAdmissionTally {
                seq,
                worker,
                votes_for,
                votes_against,
            } => write!(
                f,
                "event #{seq}: worker {worker} admitted on a {votes_for}-{votes_against} tally"
            ),
            EpochViolation::AdmissionOutsidePhase { seq, worker, phase } => write!(
                f,
                "event #{seq}: membership change for worker {worker} during {phase}"
            ),
        }
    }
}

/// The outcome of an open-membership journal replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSafetyReport {
    /// Every violation found, in journal order.
    pub violations: Vec<EpochViolation>,
    /// `EpochPhaseEntered` events replayed.
    pub phases_seen: u64,
    /// Admissions and evictions audited.
    pub admissions_checked: u64,
}

impl EpochSafetyReport {
    /// True when the replay found no violation.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for EpochSafetyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violations over {} phase(s), {} admission(s)",
            self.violations.len(),
            self.phases_seen,
            self.admissions_checked
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// Replays `events` and proves the open-membership invariants of
/// [`EpochMachine`](crate::epoch::EpochMachine): epochs are monotonic
/// and phases follow the machine's diagram, every `Train` phase starts
/// within the configured membership thresholds, and every admission is
/// witnessed — backed by at least one recorded admit vote, a strict
/// majority tally, and landing only during `Warmup`.
///
/// Like [`check_term_safety`], the checker is conservative about the
/// journal being a bounded ring: with no retained `EpochConfigured`
/// the threshold check is skipped, the first retained phase entry is
/// adopted as baseline, and the witness-vote requirement only applies
/// to epochs whose `Warmup` entry is itself retained (the votes land
/// after it, so eviction cannot have split them).
pub fn check_epoch_safety(events: &[Event]) -> EpochSafetyReport {
    let mut violations = Vec::new();
    let mut phases_seen = 0u64;
    let mut admissions_checked = 0u64;
    let mut bounds: Option<(u64, u64)> = None;
    let mut current: Option<(u64, EpochPhase)> = None;
    // Epochs whose Warmup entry is retained: vote-presence is enforceable.
    let mut warmups_retained: BTreeSet<u64> = BTreeSet::new();
    // (subject, epoch) pairs with a retained admit vote.
    let mut admit_votes: BTreeSet<(WorkerId, u64)> = BTreeSet::new();
    for event in events {
        match &event.kind {
            EventKind::EpochConfigured {
                min_members,
                max_members,
                ..
            } => {
                bounds = Some((*min_members, *max_members));
            }
            EventKind::EpochPhaseEntered {
                epoch,
                phase,
                members,
            } => {
                phases_seen += 1;
                match current {
                    Some((prev, _)) if *epoch < prev => {
                        violations.push(EpochViolation::NonMonotonicEpoch {
                            seq: event.seq,
                            prev,
                            next: *epoch,
                        });
                    }
                    Some(from) => {
                        let legal = match (from.1, *phase) {
                            (EpochPhase::WaitingForMembers, EpochPhase::Warmup)
                            | (EpochPhase::Warmup, EpochPhase::Train)
                            | (EpochPhase::Warmup, EpochPhase::Cooldown)
                            | (EpochPhase::Train, EpochPhase::Cooldown) => *epoch == from.0,
                            (EpochPhase::Cooldown, EpochPhase::WaitingForMembers) => {
                                *epoch == from.0 + 1
                            }
                            _ => false,
                        };
                        if !legal {
                            violations.push(EpochViolation::IllegalPhaseTransition {
                                seq: event.seq,
                                from,
                                to: (*epoch, *phase),
                            });
                        }
                    }
                    None => {} // ring evicted the prefix: adopt as baseline
                }
                current = Some((*epoch, *phase));
                if *phase == EpochPhase::Warmup {
                    warmups_retained.insert(*epoch);
                }
                if *phase == EpochPhase::Train {
                    if let Some((min, max)) = bounds {
                        if *members < min || *members > max {
                            violations.push(EpochViolation::MembershipOutOfBounds {
                                seq: event.seq,
                                members: *members,
                                min,
                                max,
                            });
                        }
                    }
                }
            }
            EventKind::WitnessVoteCast {
                subject,
                epoch,
                admit,
                ..
            } if *admit => {
                admit_votes.insert((*subject, *epoch));
            }
            EventKind::JoinAdmitted {
                worker,
                epoch,
                votes_for,
                votes_against,
            } => {
                admissions_checked += 1;
                if *votes_for == 0 || *votes_for <= *votes_against {
                    violations.push(EpochViolation::BadAdmissionTally {
                        seq: event.seq,
                        worker: *worker,
                        votes_for: *votes_for,
                        votes_against: *votes_against,
                    });
                }
                if warmups_retained.contains(epoch) && !admit_votes.contains(&(*worker, *epoch)) {
                    violations.push(EpochViolation::UnwitnessedAdmission {
                        seq: event.seq,
                        worker: *worker,
                        epoch: *epoch,
                    });
                }
                if let Some((_, phase)) = current {
                    if phase != EpochPhase::Warmup {
                        violations.push(EpochViolation::AdmissionOutsidePhase {
                            seq: event.seq,
                            worker: *worker,
                            phase,
                        });
                    }
                }
            }
            EventKind::WitnessEvicted { worker, .. } => {
                admissions_checked += 1;
                if let Some((_, phase)) = current {
                    if phase != EpochPhase::Warmup {
                        violations.push(EpochViolation::AdmissionOutsidePhase {
                            seq: event.seq,
                            worker: *worker,
                            phase,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    EpochSafetyReport {
        violations,
        phases_seen,
        admissions_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            at_us: seq * 10,
            kind,
        }
    }

    #[test]
    fn clean_history_is_safe() {
        let events = vec![
            ev(0, EventKind::TermBump { term: 1 }),
            ev(
                1,
                EventKind::BoundaryReleased {
                    boundary: 5,
                    world: 2,
                    term: 1,
                },
            ),
            ev(2, EventKind::AmElected { epoch: 1 }),
            ev(3, EventKind::TermBump { term: 2 }),
            ev(4, EventKind::StaleTermRejected { term: 2, stale: 1 }),
            ev(
                5,
                EventKind::BoundaryReleased {
                    boundary: 10,
                    world: 2,
                    term: 2,
                },
            ),
        ];
        let report = check_term_safety(&events);
        assert!(report.is_safe(), "{report}");
        assert_eq!(report.terms_seen, 2);
        assert_eq!(report.effects_checked, 2);
    }

    #[test]
    fn post_fence_effect_is_flagged() {
        let events = vec![
            ev(0, EventKind::TermBump { term: 1 }),
            ev(1, EventKind::TermBump { term: 2 }),
            // The fenced term-1 AM releases a boundary anyway.
            ev(
                2,
                EventKind::BoundaryReleased {
                    boundary: 5,
                    world: 2,
                    term: 1,
                },
            ),
        ];
        let report = check_term_safety(&events);
        assert_eq!(
            report.violations,
            vec![TermViolation::StaleTermEffect {
                seq: 2,
                kind: "boundary_released",
                term: 1,
                current: 2,
            }]
        );
    }

    #[test]
    fn duplicate_term_claim_is_flagged() {
        let events = vec![
            ev(0, EventKind::TermBump { term: 3 }),
            ev(1, EventKind::TermBump { term: 3 }),
        ];
        let report = check_term_safety(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            TermViolation::NonMonotonicTermBump {
                prev: 3,
                next: 3,
                ..
            }
        ));
    }

    #[test]
    fn non_monotonic_election_is_flagged() {
        let events = vec![
            ev(0, EventKind::AmElected { epoch: 2 }),
            ev(1, EventKind::AmElected { epoch: 2 }),
        ];
        assert_eq!(check_term_safety(&events).violations.len(), 1);
    }

    #[test]
    fn malformed_rejection_is_flagged() {
        let events = vec![ev(0, EventKind::StaleTermRejected { term: 2, stale: 2 })];
        assert!(matches!(
            check_term_safety(&events).violations[0],
            TermViolation::MalformedRejection {
                term: 2,
                stale: 2,
                ..
            }
        ));
    }

    #[test]
    fn evicted_bump_adopts_newer_effect_term() {
        // Ring eviction dropped `TermBump { 2 }`: a term-2 effect is the
        // new baseline, not a violation — but a later term-1 effect is.
        let events = vec![
            ev(0, EventKind::TermBump { term: 1 }),
            ev(
                1,
                EventKind::WorkerRejoin {
                    worker: elan_core::state::WorkerId(3),
                    term: 2,
                },
            ),
            ev(
                2,
                EventKind::BoundaryReleased {
                    boundary: 5,
                    world: 2,
                    term: 1,
                },
            ),
        ];
        let report = check_term_safety(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            TermViolation::StaleTermEffect {
                term: 1,
                current: 2,
                ..
            }
        ));
    }

    #[test]
    fn empty_journal_is_vacuously_safe() {
        let report = check_term_safety(&[]);
        assert!(report.is_safe());
        assert_eq!(report.terms_seen, 0);
    }

    fn w(n: u32) -> WorkerId {
        WorkerId(n)
    }

    fn phase(seq: u64, epoch: u64, phase: EpochPhase, members: u64) -> Event {
        ev(
            seq,
            EventKind::EpochPhaseEntered {
                epoch,
                phase,
                members,
            },
        )
    }

    fn configured(seq: u64, min: u64, max: u64) -> Event {
        ev(
            seq,
            EventKind::EpochConfigured {
                min_members: min,
                max_members: max,
                join_window_ms: 10,
            },
        )
    }

    #[test]
    fn clean_epoch_history_is_safe() {
        let events = vec![
            configured(0, 2, 4),
            phase(1, 0, EpochPhase::WaitingForMembers, 2),
            phase(2, 0, EpochPhase::Warmup, 2),
            ev(
                3,
                EventKind::WitnessVoteCast {
                    witness: w(1),
                    subject: w(9),
                    epoch: 0,
                    admit: true,
                },
            ),
            ev(
                4,
                EventKind::JoinAdmitted {
                    worker: w(9),
                    epoch: 0,
                    votes_for: 1,
                    votes_against: 0,
                },
            ),
            phase(5, 0, EpochPhase::Train, 3),
            phase(6, 0, EpochPhase::Cooldown, 3),
            phase(7, 1, EpochPhase::WaitingForMembers, 3),
        ];
        let report = check_epoch_safety(&events);
        assert!(report.is_safe(), "{report}");
        assert_eq!(report.phases_seen, 5);
        assert_eq!(report.admissions_checked, 1);
    }

    #[test]
    fn train_without_warmup_is_flagged() {
        let events = vec![
            phase(0, 0, EpochPhase::WaitingForMembers, 2),
            phase(1, 0, EpochPhase::Train, 2),
        ];
        assert!(matches!(
            check_epoch_safety(&events).violations[..],
            [EpochViolation::IllegalPhaseTransition { .. }]
        ));
    }

    #[test]
    fn epoch_going_backwards_is_flagged() {
        let events = vec![
            phase(0, 3, EpochPhase::Cooldown, 2),
            phase(1, 2, EpochPhase::WaitingForMembers, 2),
        ];
        assert!(matches!(
            check_epoch_safety(&events).violations[..],
            [EpochViolation::NonMonotonicEpoch {
                prev: 3,
                next: 2,
                ..
            }]
        ));
    }

    #[test]
    fn under_strength_train_is_flagged() {
        let events = vec![
            configured(0, 3, 8),
            phase(1, 0, EpochPhase::Warmup, 2),
            phase(2, 0, EpochPhase::Train, 2),
        ];
        assert!(matches!(
            check_epoch_safety(&events).violations[..],
            [EpochViolation::MembershipOutOfBounds {
                members: 2,
                min: 3,
                max: 8,
                ..
            }]
        ));
    }

    #[test]
    fn unwitnessed_admission_is_flagged() {
        let events = vec![
            phase(0, 1, EpochPhase::Warmup, 2),
            ev(
                1,
                EventKind::JoinAdmitted {
                    worker: w(9),
                    epoch: 1,
                    votes_for: 2,
                    votes_against: 0,
                },
            ),
        ];
        assert!(matches!(
            check_epoch_safety(&events).violations[..],
            [EpochViolation::UnwitnessedAdmission { epoch: 1, .. }]
        ));
    }

    #[test]
    fn minority_tally_admission_is_flagged() {
        let events = vec![
            phase(0, 1, EpochPhase::Warmup, 3),
            ev(
                1,
                EventKind::WitnessVoteCast {
                    witness: w(1),
                    subject: w(9),
                    epoch: 1,
                    admit: true,
                },
            ),
            ev(
                2,
                EventKind::JoinAdmitted {
                    worker: w(9),
                    epoch: 1,
                    votes_for: 1,
                    votes_against: 2,
                },
            ),
        ];
        assert!(matches!(
            check_epoch_safety(&events).violations[..],
            [EpochViolation::BadAdmissionTally {
                votes_for: 1,
                votes_against: 2,
                ..
            }]
        ));
    }

    #[test]
    fn mid_train_admission_is_flagged() {
        let events = vec![
            phase(0, 1, EpochPhase::Warmup, 2),
            ev(
                1,
                EventKind::WitnessVoteCast {
                    witness: w(1),
                    subject: w(9),
                    epoch: 1,
                    admit: true,
                },
            ),
            phase(2, 1, EpochPhase::Train, 2),
            ev(
                3,
                EventKind::JoinAdmitted {
                    worker: w(9),
                    epoch: 1,
                    votes_for: 1,
                    votes_against: 0,
                },
            ),
        ];
        assert!(matches!(
            check_epoch_safety(&events).violations[..],
            [EpochViolation::AdmissionOutsidePhase {
                phase: EpochPhase::Train,
                ..
            }]
        ));
    }

    #[test]
    fn evicted_prefix_is_tolerated() {
        // The ring dropped everything before this epoch's Train: no
        // config, no Warmup entry — the checker adopts the baseline and
        // skips the unenforceable checks.
        let events = vec![
            phase(0, 7, EpochPhase::Train, 5),
            phase(1, 7, EpochPhase::Cooldown, 5),
            phase(2, 8, EpochPhase::WaitingForMembers, 5),
        ];
        assert!(check_epoch_safety(&events).is_safe());
    }
}
