//! End-to-end checks: the fixture suite behaves as declared and the real
//! workspace passes clean under the checked-in waiver file. This is the
//! same gate CI's `invariants` job runs via the binary; having it as a
//! cargo test keeps `cargo test --workspace` self-contained.

use std::path::{Path, PathBuf};

use elan_verify::waiver::parse_waivers;
use elan_verify::{apply_waivers, run_all, self_test, Workspace};

fn repo_root() -> PathBuf {
    // crates/elan-verify -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has two ancestors")
        .to_path_buf()
}

#[test]
fn fixtures_fire_exactly_their_declared_rule() {
    let results = self_test(&repo_root()).expect("fixture suite runs");
    assert!(!results.is_empty(), "fixture suite must not be empty");
    for r in &results {
        assert!(
            r.pass,
            "fixture {} expected {:?} but fired {:?}",
            r.name, r.expected, r.fired
        );
    }
}

#[test]
fn workspace_is_clean_under_checked_in_waivers() {
    let root = repo_root();
    let ws = Workspace::load(&root).expect("workspace loads");
    let mut diags = run_all(&ws).expect("all rules run");
    let waivers = parse_waivers(&root.join("verify-allow.toml")).expect("waiver file parses");
    let applied = apply_waivers(&mut diags, waivers);
    let active: Vec<_> = diags.iter().filter(|d| !d.waived).collect();
    assert!(
        active.is_empty(),
        "workspace has unwaived diagnostics:\n{:#?}",
        active
    );
    let stale: Vec<_> = applied
        .iter()
        .filter(|w| w.used == 0)
        .map(|w| format!("{} @ {} (line {})", w.rule, w.file, w.line))
        .collect();
    assert!(
        stale.is_empty(),
        "stale waivers (no longer match anything): {stale:?}"
    );
}

#[test]
fn known_bad_fixture_is_not_clean() {
    // Guards against the checker rotting into a yes-machine: the seeded
    // lock-cycle fixture must keep producing a diagnostic when run raw.
    let path = repo_root().join("crates/elan-verify/fixtures/lock_cycle.rs");
    let ws = Workspace::load_fixture(&path).expect("fixture loads");
    let diags = run_all(&ws).expect("rules run");
    assert_eq!(diags.len(), 1, "got {diags:?}");
    assert_eq!(diags[0].rule, "LOCK_ORDER_CYCLE");
}

#[test]
fn wire_renumber_fixture_is_caught() {
    // CI's negative control for the wire-format gate: a deliberately
    // renumbered tag must keep producing exactly one WIRE_COMPAT
    // diagnostic when the fixture is run raw.
    let path = repo_root().join("crates/elan-verify/fixtures/wire_tag_renumber.rs");
    let ws = Workspace::load_fixture(&path).expect("fixture loads");
    let diags = run_all(&ws).expect("rules run");
    assert_eq!(diags.len(), 1, "got {diags:?}");
    assert_eq!(diags[0].rule, "WIRE_COMPAT");
    assert!(
        diags[0].message.contains("renumbered or removed"),
        "{}",
        diags[0].message
    );
}

#[test]
fn reachability_rules_are_covered_by_fixtures() {
    // The interprocedural rules each need a known-bad seed so the engine
    // cannot silently stop resolving calls.
    let results = self_test(&repo_root()).expect("fixture suite runs");
    let covered: Vec<&str> = results
        .iter()
        .flat_map(|r| r.expected.iter().map(String::as_str))
        .collect();
    for rule in [
        "BLOCKING_UNDER_LOCK",
        "VIRTUAL_TIME_UNSAFE",
        "TERM_FENCED_SEND",
        "WIRE_COMPAT",
    ] {
        assert!(covered.contains(&rule), "no fixture covers {rule}");
    }
}

#[test]
fn reachability_diagnostics_print_call_paths() {
    // The path attribution is part of the contract: a transitive finding
    // must name every hop with file:line, not just the sink.
    let path = repo_root().join("crates/elan-verify/fixtures/blocking_under_lock.rs");
    let ws = Workspace::load_fixture(&path).expect("fixture loads");
    let diags = run_all(&ws).expect("rules run");
    assert_eq!(diags.len(), 1, "got {diags:?}");
    let msg = &diags[0].message;
    assert!(msg.contains("`Hub::relay` ("), "missing first hop: {msg}");
    assert!(msg.contains("`Hub::emit` ("), "missing second hop: {msg}");
    assert!(msg.contains("write_all"), "missing sink: {msg}");
}

#[test]
fn committed_codec_surface_is_current() {
    let root = repo_root();
    let ws = Workspace::load(&root).expect("workspace loads");
    let current = elan_verify::rules::wirecompat::surface(&ws).expect("codec surface extracts");
    let committed = std::fs::read_to_string(root.join("codec_surface.txt"))
        .expect("codec_surface.txt is committed at the workspace root");
    assert_eq!(
        committed, current,
        "codec_surface.txt is stale; regenerate with \
         `cargo run -p elan-verify -- --emit-codec-surface > codec_surface.txt`"
    );
}

#[test]
fn every_workspace_diagnostic_is_waived_with_a_reason() {
    let root = repo_root();
    let waivers = parse_waivers(&root.join("verify-allow.toml")).expect("waiver file parses");
    for w in &waivers {
        assert!(
            !w.reason.trim().is_empty(),
            "waiver for {} in {} has an empty reason",
            w.rule,
            w.file
        );
    }
}
