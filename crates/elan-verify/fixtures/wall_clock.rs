// expect: WALL_CLOCK
//
// Known-bad: a raw machine-clock read outside time.rs. Under the
// virtual clock the journal timestamps must be a pure function of the
// seed; this read injects wall-clock jitter, so two runs of the same
// seed hash differently and the seedsweep CI job goes red. Route the
// read through TimeSource::now() instead.
//
// This file is a checker fixture, not part of the build.

fn stamp_event(journal: &Journal) {
    let at = Instant::now();
    journal.record(at);
}
