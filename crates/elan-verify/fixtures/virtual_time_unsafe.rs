// expect: VIRTUAL_TIME_UNSAFE
//
// Known-bad: the worker loop reaps a helper thread with a raw
// `join()`. Under the seeded virtual clock a real OS wait never
// advances virtual time, so the whole scheduler hangs silently. The
// wait must park through TimeSource, or be wrapped in
// `TimeSource::blocking(..)` so the clock knows a thread is
// legitimately off-world (DESIGN.md §12/§16).
//
// This file is a checker fixture, not part of the build.

fn run_worker(handle: JoinHandle) {
    reap(handle);
}

fn reap(handle: JoinHandle) {
    let _ = handle.join();
}
