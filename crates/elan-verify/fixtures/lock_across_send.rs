// expect: LOCK_ACROSS_SEND
//
// Known-bad: a bus send while holding a mutex guard. Under chaos the
// send's retry/ack path can re-enter code that wants the same lock, and
// a slow receiver extends the critical section unboundedly (§V-B). The
// fix is to drop the guard (or end its statement) before sending.
//
// This file is a checker fixture, not part of the build.

use std::sync::Mutex;

struct Notifier {
    members: Mutex<Members>,
}

impl Notifier {
    fn broadcast(&self, to: EndpointId, msg: Msg) {
        let guard = self.members.lock();
        send_envelope(to, stamp(msg, &guard));
    }
}
