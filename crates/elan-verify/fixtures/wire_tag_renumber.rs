// expect: WIRE_COMPAT
//
// Known-bad: the encoder gives `Proceed` wire tag 1, but the decoder
// has no arm for tag 1 — the variant was renumbered (or its decode arm
// removed) without touching the other side. A coordinator and worker
// built from different commits now silently mis-frame every in-flight
// adjustment. Wire tags are append-only: shipped tags keep their
// numbers forever (DESIGN.md §16).
//
// This file is a checker fixture, not part of the build.

fn write_msg(w: &mut Writer, msg: &RtMsg) {
    match msg {
        RtMsg::Report { .. } => {
            w.u8(0);
        }
        RtMsg::Proceed { .. } => {
            w.u8(1);
        }
    }
}

fn read_msg(r: &mut Reader) -> Result<RtMsg> {
    Ok(match r.u8() {
        0 => RtMsg::Report {},
        _ => RtMsg::Report {},
    })
}
