// expect: TERM_FENCED_SEND
//
// Known-bad: an authority-bearing `Resume` carries its fencing term,
// but the only path that constructs and sends it never passes a fence
// check — no caller chain touches `persist_fenced` or the `fenced`
// flag. A deposed AM racing its replacement can still push the message
// onto the bus (DESIGN.md §13/§16). The diagnostic prints the
// unguarded chain hop by hop.
//
// This file is a checker fixture, not part of the build.

impl Am {
    fn drive(&mut self, term: u64) {
        self.emit(term);
    }

    fn emit(&mut self, term: u64) {
        self.bus.send(RtMsg::Resume { term });
    }
}
