// expect: NETWORK_IO
//
// A runtime module opening its own socket instead of going through the
// transport layer: the bytes bypass framing, CRC checks, and reconnect
// semantics, and no chaos policy or deterministic run can see them.

fn dial(addr: &str) -> bool {
    let conn = TcpStream::connect(addr);
    conn.is_ok()
}
