// expect: PROTOCOL_UNHANDLED_MSG
//
// Known-bad: the dispatch loop matches `RtMsg::Ping` but never matches
// `RtMsg::Pong` in any pattern, so a peer sending Pong is silently
// swallowed by the catch-all arm. Every protocol variant must appear in
// pattern position somewhere (§V-D: unhandled control messages are how
// adjustments wedge).
//
// This file is a checker fixture, not part of the build.

enum RtMsg {
    Ping,
    Pong,
}

fn dispatch(m: RtMsg) {
    match m {
        RtMsg::Ping => on_ping(),
        _ => {}
    }
}

fn on_ping() {}
