// expect: BLOCKING_UNDER_LOCK
//
// Known-bad: the hub holds its route-map lock while a frame write goes
// out on a socket. A peer that stops reading makes `write_all` park the
// thread with the lock held, wedging every other connection that needs
// the routes (DESIGN.md §16). The blocking op is one call away — the
// diagnostic must print the full path, hop by hop.
//
// This file is a checker fixture, not part of the build.

use std::sync::Mutex;

struct Hub {
    routes: Mutex<Routes>,
    sock: Stream,
}

impl Hub {
    fn relay(&self, frame: &Frame) {
        let guard = self.routes.lock();
        self.emit(frame, &guard);
    }

    fn emit(&self, frame: &Frame, routes: &Routes) {
        self.sock.write_all(frame.bytes());
    }
}
