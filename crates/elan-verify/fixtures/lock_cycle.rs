// expect: LOCK_ORDER_CYCLE
//
// Known-bad: two methods acquire the same pair of mutexes in opposite
// orders. Two threads running `ab` and `ba` concurrently deadlock. The
// checker must report exactly one cycle (a -> b -> a, canonicalised).
//
// This file is a checker fixture, not part of the build: it is compiled
// only by `elan-verify --self-test` / `--fixture`, never by cargo.

use std::sync::Mutex;

struct Shared {
    a: Mutex<State>,
    b: Mutex<State>,
}

impl Shared {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}
