// expect: PERSIST_BEFORE_ACT
//
// Known-bad: the AM mutates its durable record and then tells a worker
// about the new phase *before* persisting. If the AM crashes between
// the send and the persist, the replacement AM recovers a record that
// never heard of the in-flight adjustment while a worker is already
// acting on it (§V-D). Persist must dominate the send.
//
// This file is a checker fixture, not part of the build.

impl Am {
    fn begin_adjust(&mut self, worker: EndpointId) {
        self.durable.phase = Phase::Adjusting;
        self.rep.send_envelope(worker, adjust_msg());
        self.ctrl.persist(&self.durable);
    }
}
