// expect: MAGIC_NUMBER
//
// Known-bad: a reliability bound written as a bare literal. Dedup
// window sizes and retry budgets must live in named consts so the
// sender's and receiver's idea of the bound cannot drift apart when
// one call site is edited (§V-D bounded-memory dedup).
//
// This file is a checker fixture, not part of the build.

fn dedup_window_len() -> usize {
    64
}
