// expect: PANIC_HYGIENE
//
// Known-bad: a bare `.unwrap()` in non-test runtime code. A lost
// message or a crashed peer turns this into a panic that takes the
// whole process down instead of a typed ElanError the scheduler loop
// can react to. Either return an error or add a justified waiver.
//
// This file is a checker fixture, not part of the build.

fn current_epoch(progress: Option<Epoch>) -> Epoch {
    progress.unwrap()
}
