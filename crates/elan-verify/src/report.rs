//! Diagnostics and output rendering (human text and `--json`).

use std::fmt::Write as _;

/// Stable invariant identifiers. These appear in diagnostics, waiver files,
/// fixture `// expect:` headers, and CI logs — treat them as API.
pub mod rules {
    pub const LOCK_ORDER_CYCLE: &str = "LOCK_ORDER_CYCLE";
    pub const LOCK_ACROSS_SEND: &str = "LOCK_ACROSS_SEND";
    pub const PROTOCOL_UNHANDLED_MSG: &str = "PROTOCOL_UNHANDLED_MSG";
    pub const PROTOCOL_UNEMITTED_EVENT: &str = "PROTOCOL_UNEMITTED_EVENT";
    pub const PROTOCOL_UNCONSTRUCTED_ERROR: &str = "PROTOCOL_UNCONSTRUCTED_ERROR";
    pub const PERSIST_BEFORE_ACT: &str = "PERSIST_BEFORE_ACT";
    pub const PANIC_HYGIENE: &str = "PANIC_HYGIENE";
    pub const MAGIC_NUMBER: &str = "MAGIC_NUMBER";
    pub const WALL_CLOCK: &str = "WALL_CLOCK";
    pub const NETWORK_IO: &str = "NETWORK_IO";
    pub const BLOCKING_UNDER_LOCK: &str = "BLOCKING_UNDER_LOCK";
    pub const VIRTUAL_TIME_UNSAFE: &str = "VIRTUAL_TIME_UNSAFE";
    pub const TERM_FENCED_SEND: &str = "TERM_FENCED_SEND";
    pub const WIRE_COMPAT: &str = "WIRE_COMPAT";

    /// All rule IDs, for `--self-test` cross-checking.
    pub const ALL: [&str; 14] = [
        LOCK_ORDER_CYCLE,
        LOCK_ACROSS_SEND,
        PROTOCOL_UNHANDLED_MSG,
        PROTOCOL_UNEMITTED_EVENT,
        PROTOCOL_UNCONSTRUCTED_ERROR,
        PERSIST_BEFORE_ACT,
        PANIC_HYGIENE,
        MAGIC_NUMBER,
        WALL_CLOCK,
        NETWORK_IO,
        BLOCKING_UNDER_LOCK,
        VIRTUAL_TIME_UNSAFE,
        TERM_FENCED_SEND,
        WIRE_COMPAT,
    ];
}

/// One finding. `detail` is a rule-specific discriminator (variant name, lock
/// pair, literal value) used for waiver matching.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub func: String,
    pub detail: String,
    pub message: String,
    pub hint: String,
    pub waived: bool,
    /// Set when suppressed by a waiver; carries the waiver's justification.
    pub waived_reason: Option<String>,
}

impl Diagnostic {
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        func: impl Into<String>,
        detail: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            func: func.into(),
            detail: detail.into(),
            message: message.into(),
            hint: hint.into(),
            waived: false,
            waived_reason: None,
        }
    }
}

/// Render diagnostics as human-readable text, one block per finding.
pub fn render_text(diags: &[Diagnostic], show_waived: bool) -> String {
    let mut out = String::new();
    for d in diags {
        if d.waived && !show_waived {
            continue;
        }
        let status = if d.waived { " (waived)" } else { "" };
        let _ = writeln!(
            out,
            "{}:{}: [{}]{} {}",
            d.file, d.line, d.rule, status, d.message
        );
        if !d.func.is_empty() {
            let _ = writeln!(out, "    in: {}", d.func);
        }
        if !d.hint.is_empty() {
            let _ = writeln!(out, "    hint: {}", d.hint);
        }
        if let Some(reason) = &d.waived_reason {
            let _ = writeln!(out, "    waiver: {reason}");
        }
    }
    out
}

/// Render diagnostics as a JSON document for the CI `invariants` job.
pub fn render_json(diags: &[Diagnostic], clean: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let active = diags.iter().filter(|d| !d.waived).count();
    let waived = diags.iter().filter(|d| d.waived).count();
    let _ = writeln!(out, "  \"ok\": {},", clean);
    let _ = writeln!(out, "  \"active\": {active},");
    let _ = writeln!(out, "  \"waived\": {waived},");
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 == diags.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"func\": {}, \"detail\": {}, \"message\": {}, \"hint\": {}, \"waived\": {}}}{comma}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.func),
            json_str(&d.detail),
            json_str(&d.message),
            json_str(&d.hint),
            d.waived,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn text_render_includes_rule_and_hint() {
        let d = Diagnostic::new(
            rules::PANIC_HYGIENE,
            "crates/x/src/a.rs",
            10,
            "F::g",
            "unwrap",
            "naked unwrap",
            "return a typed ElanError instead",
        );
        let text = render_text(&[d], false);
        assert!(text.contains("[PANIC_HYGIENE]"));
        assert!(text.contains("hint:"));
    }
}
