//! `elan-verify`: static invariant checker for the elan workspace.
//!
//! Parses `crates/*/src` with a lightweight lexer (no rustc dependency — the
//! build environment is offline, same spirit as `third_party/`) and enforces
//! the invariants the Rust compiler cannot see but the paper's correctness
//! story depends on:
//!
//! - **Lock-order analysis** (`LOCK_ORDER_CYCLE`, `LOCK_ACROSS_SEND`):
//!   acquisition sites per function, an inter-procedural lock graph, cycle
//!   detection, and no bus send while holding a guard (§V-B asynchronous
//!   coordination must never deadlock a live adjustment under chaos retries).
//! - **Protocol exhaustiveness** (`PROTOCOL_UNHANDLED_MSG`,
//!   `PROTOCOL_UNEMITTED_EVENT`, `PROTOCOL_UNCONSTRUCTED_ERROR`): every
//!   `RtMsg` variant dispatched, every `EventKind` emitted, every `ElanError`
//!   constructed or waived.
//! - **Persist-before-act** (`PERSIST_BEFORE_ACT`): AM durable-record writes
//!   dominate outgoing coordination sends (§V-D fault tolerance).
//! - **Panic hygiene** (`PANIC_HYGIENE`): no `unwrap`/`expect`/`panic!` in
//!   non-test runtime code without a justified waiver.
//! - **Magic numbers** (`MAGIC_NUMBER`): reliability bounds live in named
//!   consts, not literals.
//! - **Wall-clock discipline** (`WALL_CLOCK`): inside `elan-rt`, only
//!   `time.rs` may read the OS clock or block the scheduler; everything
//!   else routes through `TimeSource`, test code included, so seeded
//!   virtual-time runs stay deterministic (DESIGN.md §12).
//! - **Network-IO confinement** (`NETWORK_IO`): inside `elan-rt`, only
//!   `transport/` may open sockets or name socket types; everything else
//!   talks to peers through a `Transport` behind the bus, so every wire
//!   byte goes through the framed, CRC-checked codec (DESIGN.md §15).
//! - **Blocking under lock** (`BLOCKING_UNDER_LOCK`): no OS-blocking op
//!   (stream IO, `join()`, `accept()`, condvar waits, raw `recv`) while a
//!   guard is live, directly or through the call graph (DESIGN.md §16).
//! - **Virtual-time safety** (`VIRTUAL_TIME_UNSAFE`): real blocking ops
//!   reachable from runtime entry points without the `blocking()` escape
//!   hatch hang the seeded scheduler (DESIGN.md §12/§16).
//! - **Term-fenced sends** (`TERM_FENCED_SEND`): AM-originated authority
//!   messages carry a fencing term and only flow on `persist_fenced`-
//!   guarded paths (DESIGN.md §13/§16).
//! - **Wire compatibility** (`WIRE_COMPAT`): the RtMsg tag table, frame
//!   kinds, and framing constants match the committed `codec_surface.txt`
//!   manifest; tags are append-only (DESIGN.md §16).
//!
//! The lock, blocking, virtual-time, and fencing rules share one
//! interprocedural reachability engine ([`engine::Engine`]): a cross-crate
//! name-based call graph with per-function effect sets and call-path
//! attribution, so diagnostics print every hop with file:line.
//!
//! Diagnostics carry `file:line`, an invariant ID, and a fix hint; waivers
//! come from `verify-allow.toml` (diffed in CI so they only grow with
//! review). See DESIGN.md §11/§16 for the rule catalogue.

pub mod engine;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules {
    pub mod blocking;
    pub mod fence;
    pub mod locks;
    pub mod magic;
    pub mod netio;
    pub mod panics;
    pub mod persist;
    pub mod protocol;
    pub mod vtime;
    pub mod wallclock;
    pub mod wirecompat;
}
pub mod waiver;

use std::fs;
use std::path::{Path, PathBuf};

pub use model::Workspace;
pub use report::{render_json, render_text, Diagnostic};
pub use waiver::{apply_waivers, parse_waivers, Waiver};

/// Run every invariant class over the workspace (or fixture) and return the
/// diagnostics sorted by file, line, then rule.
pub fn run_all(ws: &Workspace) -> Result<Vec<Diagnostic>, String> {
    let eng = engine::Engine::build(ws);
    let mut diags = Vec::new();
    diags.extend(rules::locks::run(ws, &eng));
    diags.extend(rules::protocol::run(ws)?);
    diags.extend(rules::persist::run(ws));
    diags.extend(rules::panics::run(ws));
    diags.extend(rules::magic::run(ws));
    diags.extend(rules::wallclock::run(ws));
    diags.extend(rules::netio::run(ws));
    diags.extend(rules::blocking::run(ws, &eng));
    diags.extend(rules::vtime::run(ws, &eng));
    diags.extend(rules::fence::run(ws, &eng));
    diags.extend(rules::wirecompat::run(ws));
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(diags)
}

/// Locate the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

/// Outcome of `--self-test` for one fixture.
#[derive(Debug)]
pub struct FixtureResult {
    pub name: String,
    pub expected: Vec<String>,
    pub fired: Vec<String>,
    pub pass: bool,
}

/// Run the fixture suite: every `fixtures/*.rs` file declares its expected
/// rule(s) in `// expect: RULE_ID` header lines; each expected rule must fire
/// exactly once and no other rule may fire at all.
pub fn self_test(root: &Path) -> Result<Vec<FixtureResult>, String> {
    let dir = root.join("crates/elan-verify/fixtures");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .map_err(|e| format!("cannot read fixtures dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no fixtures found in {}", dir.display()));
    }
    let mut results = Vec::new();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read fixture {}: {e}", path.display()))?;
        let expected: Vec<String> = text
            .lines()
            .filter_map(|l| l.trim().strip_prefix("// expect:"))
            .map(|s| s.trim().to_string())
            .collect();
        if expected.is_empty() {
            return Err(format!("fixture {name} has no `// expect: RULE_ID` header"));
        }
        for e in &expected {
            if !report::rules::ALL.contains(&e.as_str()) {
                return Err(format!("fixture {name} expects unknown rule {e:?}"));
            }
        }
        let ws = Workspace::load_fixture(&path)?;
        let diags = run_all(&ws)?;
        let fired: Vec<String> = diags.iter().map(|d| d.rule.to_string()).collect();
        let pass = expected
            .iter()
            .all(|e| fired.iter().filter(|f| f.as_str() == e.as_str()).count() == 1)
            && fired.iter().all(|f| expected.contains(f));
        results.push(FixtureResult {
            name,
            expected,
            fired,
            pass,
        });
    }
    Ok(results)
}
