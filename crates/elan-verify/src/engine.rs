//! Interprocedural reachability engine: a cross-crate, name-based call
//! graph over every scan root, with per-function *effect sets* extracted
//! in one token pass — locks acquired, guards live at each call site,
//! OS-blocking operations, bus sends, `RtMsg` constructions, and the
//! `blocking()` escape hatch. Rules consume the graph through fixpoint
//! helpers ([`Engine::reach_paths`]) that record the call chain hop by
//! hop, so a diagnostic can print `fn a → fn b → write_all(..)` with a
//! file:line for every hop (DESIGN.md §16).
//!
//! Resolution is by simple name: candidates in the caller's own crate
//! win; only when the caller's crate defines no function of that name
//! does the search widen to the whole workspace (the facade bins call
//! into `elan-rt`, integration tests call into every crate). Names with
//! more than [`MAX_RESOLVE`] candidates are dropped as noise, exactly
//! like the PR 4 lock analysis this generalises.

use std::collections::{BTreeSet, HashMap};
use std::ops::Range;

use crate::lexer::{Tok, TokKind};
use crate::model::{FileModel, Function, Workspace};

/// Names that, when followed by `(`, are never treated as workspace calls.
const CALL_SKIP: &[&str] = &[
    "lock",
    "read",
    "write",
    "drop",
    "if",
    "while",
    "for",
    "match",
    "return",
    "loop",
    "move",
    "in",
    "as",
    "let",
    "else",
    "fn",
    "unsafe",
    "ref",
    "mut",
    "dyn",
    "impl",
    "where",
    "pub",
    "use",
    "crate",
    "super",
    "Self",
    "self",
    "send",
    "send_envelope",
    "send_unreliable",
    // Ubiquitous collection methods: `.len()`/`.is_empty()`/`.clear()` on a
    // Vec or map would otherwise resolve to any inherent `len` elsewhere in
    // the workspace (e.g. the bus's lock-taking `len`), wiring phantom edges
    // into the lock graph.
    "len",
    "is_empty",
    "clear",
    "get",
    "insert",
    "remove",
    "push",
    "contains_key",
];

/// Skip call-graph resolution for names matching more functions than this.
pub const MAX_RESOLVE: usize = 4;

/// Bus-send receiver names (`tx.send(..)` is a plain channel, not a bus send).
const SEND_RECEIVERS: &[&str] = &["bus", "rep"];

/// Argument-free method calls that park the OS thread: `h.join()`,
/// `listener.accept()`, `writer.flush()`. The arity requirement keeps
/// `path.join(sep)` and `asm.accept(index)` (an ordinary workspace call)
/// out of the set.
const BLOCKING_ARGLESS: &[&str] = &["join", "accept", "flush"];

/// Stream methods that block until the peer produces/consumes bytes.
const BLOCKING_STREAM: &[&str] = &["read_exact", "write_all", "read_to_end"];

/// Condvar/barrier waits. A condvar wait *releases* the mutex whose guard
/// it is handed, so guards named in the argument list are recorded in
/// [`BlockingOp::released`] rather than counted as held across the wait.
const BLOCKING_WAIT: &[&str] = &["wait", "wait_for", "wait_timeout"];

/// `.recv()` / `.recv_timeout()` count as raw OS blocking only on receivers
/// with these names: a bare channel endpoint. The runtime's own wrappers
/// (`rep.recv_timeout`, `endpoint.recv_timeout`) dispatch on virtual time
/// internally and are modelled through the call graph instead.
const RAW_RECV_RECEIVERS: &[&str] = &["receiver", "rx"];

/// One OS-blocking operation performed directly by a function.
#[derive(Debug, Clone)]
pub struct BlockingOp {
    /// Human-readable op, e.g. `write_all(..)`, `join()`, `thread::park`.
    pub what: String,
    pub line: u32,
    /// Lock names of all guards live at the op.
    pub holding: Vec<String>,
    /// Lock names released *by* the op (condvar waits that take the guard).
    pub released: Vec<String>,
    /// The op's receiver is itself a live guard (`s.write_all(..)` where
    /// `s = self.stream.lock()`) — blocking on your own lock is the
    /// intended use, but the op still blocks callers holding *other* locks.
    pub self_guard: bool,
    /// Inside a `.blocking(..)` escape-hatch closure.
    pub escaped: bool,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    pub line: u32,
    /// Lock names of all guards live at the call.
    pub holding: Vec<String>,
    /// Inside a `.blocking(..)` escape-hatch closure.
    pub escaped: bool,
}

/// An `RtMsg::Variant` value construction (expression position only).
#[derive(Debug, Clone)]
pub struct Construction {
    pub variant: String,
    pub line: u32,
    /// The struct-literal body names a `term` field.
    pub has_term: bool,
}

/// Effect summary for one non-test function.
#[derive(Debug)]
pub struct FnEffects {
    /// Index into `ws.files`.
    pub file: usize,
    pub name: String,
    pub qual: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Locks acquired anywhere in this function.
    pub acquired: BTreeSet<String>,
    pub calls: Vec<CallSite>,
    /// (line, locks held) for each bus send performed under a lock.
    pub sends: Vec<(u32, Vec<String>)>,
    /// Whether the function performs a bus send at all.
    pub sends_any: bool,
    /// Direct lock-order edges `held -> newly acquired` with the line.
    pub edges: Vec<(String, String, u32)>,
    pub blocking: Vec<BlockingOp>,
    pub constructions: Vec<Construction>,
    /// The body mentions `persist_fenced` or `fenced`: it either persists
    /// the fencing term or checks the fence before acting.
    pub fence_aware: bool,
}

/// One hop of a reachability path: the function plus the line within it
/// (a call site for intermediate hops, the effect itself for the last).
#[derive(Debug, Clone)]
pub struct Hop {
    pub file: String,
    pub qual: String,
    pub line: u32,
}

/// Render a path as `` `a` (f.rs:10) → `b` (g.rs:20) → write_all(..)``.
pub fn format_path(path: &[Hop], detail: &str) -> String {
    let hops: Vec<String> = path
        .iter()
        .map(|h| format!("`{}` ({}:{})", h.qual, h.file, h.line))
        .collect();
    format!("{} -> {detail}", hops.join(" -> "))
}

pub struct Engine {
    pub fns: Vec<FnEffects>,
    by_crate_name: HashMap<(String, String), Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
}

impl Engine {
    /// Scan every non-test function in the workspace into an effect summary
    /// and index the call graph.
    pub fn build(ws: &Workspace) -> Engine {
        // Global RwLock field-name set: fields are declared in one file and
        // locked from others.
        let rwlock_fields: BTreeSet<String> = ws
            .files
            .iter()
            .flat_map(|f| f.rwlock_fields.iter().cloned())
            .collect();
        let mut fns = Vec::new();
        let mut by_crate_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            let bodies: Vec<Range<usize>> = file.functions.iter().map(|f| f.body.clone()).collect();
            for (fni, f) in file.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                // Nested function bodies strictly inside this one are scanned
                // as their own functions; skip their tokens here.
                let nested: Vec<Range<usize>> = bodies
                    .iter()
                    .enumerate()
                    .filter(|(j, b)| *j != fni && b.start > f.body.start && b.end <= f.body.end)
                    .map(|(_, b)| b.clone())
                    .collect();
                let idx = fns.len();
                fns.push(scan_fn(file, fi, f, &rwlock_fields, &nested));
                by_crate_name
                    .entry((file.crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
                by_name.entry(f.name.clone()).or_default().push(idx);
            }
        }
        Engine {
            fns,
            by_crate_name,
            by_name,
        }
    }

    /// Resolve a callee name from the caller's crate; same-crate candidates
    /// win, cross-crate is the fallback when the caller's crate has none.
    pub fn resolve(&self, ws: &Workspace, caller: usize, callee: &str) -> Vec<usize> {
        let crate_name = &ws.files[self.fns[caller].file].crate_name;
        let local = self
            .by_crate_name
            .get(&(crate_name.clone(), callee.to_string()));
        let candidates = match local {
            Some(v) if !v.is_empty() => v,
            _ => match self.by_name.get(callee) {
                Some(v) => v,
                None => return Vec::new(),
            },
        };
        if candidates.len() > MAX_RESOLVE {
            return Vec::new();
        }
        candidates.clone()
    }

    /// Shortest call paths from every function to a direct effect.
    ///
    /// `direct[i]` is `Some((detail, line))` when function `i` performs the
    /// effect in its own body; `skip(i)` drops function `i` from the graph
    /// entirely (exempt modules); `cut_escaped` stops propagation through
    /// call sites inside a `.blocking(..)` closure (the virtual-time escape
    /// hatch legitimises everything behind it).
    ///
    /// Returns, per function, the hop list and the effect detail. The last
    /// hop's line is the effect line; earlier hops carry their call-site
    /// line, so the rendered path has a file:line for every step.
    pub fn reach_paths(
        &self,
        ws: &Workspace,
        direct: &[Option<(String, u32)>],
        skip: &dyn Fn(usize) -> bool,
        cut_escaped: bool,
    ) -> Vec<Option<(Vec<Hop>, String)>> {
        let mut out: Vec<Option<(Vec<Hop>, String)>> = (0..self.fns.len()).map(|_| None).collect();
        for (i, d) in direct.iter().enumerate() {
            if skip(i) {
                continue;
            }
            if let Some((detail, line)) = d {
                out[i] = Some((
                    vec![Hop {
                        file: ws.files[self.fns[i].file].rel.clone(),
                        qual: self.fns[i].qual.clone(),
                        line: *line,
                    }],
                    detail.clone(),
                ));
            }
        }
        // BFS layering: each pass extends paths by exactly one hop, applied
        // after the pass, so every function gets a shortest path and the
        // fixpoint terminates (paths are set at most once).
        loop {
            let mut assign: Vec<(usize, (Vec<Hop>, String))> = Vec::new();
            'fns: for i in 0..self.fns.len() {
                if out[i].is_some() || skip(i) {
                    continue;
                }
                for c in &self.fns[i].calls {
                    if cut_escaped && c.escaped {
                        continue;
                    }
                    for t in self.resolve(ws, i, &c.callee) {
                        if t == i || skip(t) {
                            continue;
                        }
                        if let Some((hops, detail)) = &out[t] {
                            let mut path = vec![Hop {
                                file: ws.files[self.fns[i].file].rel.clone(),
                                qual: self.fns[i].qual.clone(),
                                line: c.line,
                            }];
                            path.extend(hops.iter().cloned());
                            assign.push((i, (path, detail.clone())));
                            continue 'fns;
                        }
                    }
                }
            }
            if assign.is_empty() {
                break;
            }
            for (i, p) in assign {
                out[i] = Some(p);
            }
        }
        out
    }
}

fn scan_fn(
    file: &FileModel,
    fi: usize,
    f: &Function,
    rwlock_fields: &BTreeSet<String>,
    nested: &[Range<usize>],
) -> FnEffects {
    let toks = &file.toks;
    let mut info = FnEffects {
        file: fi,
        name: f.name.clone(),
        qual: f.qual.clone(),
        line: f.line,
        acquired: BTreeSet::new(),
        calls: Vec::new(),
        sends: Vec::new(),
        sends_any: false,
        edges: Vec::new(),
        blocking: Vec::new(),
        constructions: Vec::new(),
        fence_aware: false,
    };

    // Pre-pass: `.blocking(..)` escape regions.
    let mut escapes: Vec<Range<usize>> = Vec::new();
    for i in f.body.clone() {
        if toks[i].is_ident("blocking")
            && i > f.body.start
            && toks[i - 1].is(".")
            && i + 1 < f.body.end
            && toks[i + 1].is("(")
        {
            escapes.push(i + 1..crate::model::match_bracket(toks, i + 1, "(", ")"));
        }
    }
    let escaped_at = |i: usize| escapes.iter().any(|r| r.contains(&i));

    struct Guard {
        lock: String,
        binding: Option<String>,
        depth: i32,
        temp: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = f.body.start;
    while i < f.body.end {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &toks[i];
        if t.is_ident("persist_fenced") || t.is_ident("fenced") {
            info.fence_aware = true;
        }
        match t.text.as_str() {
            "{" => {
                depth += 1;
                i += 1;
                continue;
            }
            "}" => {
                depth -= 1;
                // let-guards die when their block closes; temporaries also die
                // when a block opened after their acquisition closes back to
                // their depth (end of a match/if-let statement) — unless the
                // block is followed by `else`: an `if let` scrutinee temporary
                // lives through the else branch too.
                let next_is_else = i + 1 < f.body.end && toks[i + 1].is_ident("else");
                guards.retain(|g| {
                    g.depth <= depth && (next_is_else || !(g.temp && g.depth == depth))
                });
                i += 1;
                continue;
            }
            ";" => {
                let d = depth;
                guards.retain(|g| !(g.temp && g.depth >= d));
                i += 1;
                continue;
            }
            _ => {}
        }
        // drop(binding)
        if t.is_ident("drop")
            && i + 3 < f.body.end
            && toks[i + 1].is("(")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is(")")
        {
            let name = &toks[i + 2].text;
            if let Some(pos) = guards
                .iter()
                .rposition(|g| g.binding.as_deref() == Some(name))
            {
                guards.remove(pos);
            }
            i += 4;
            continue;
        }
        // lock acquisition: `.lock()` always; `.read()`/`.write()` only on
        // known RwLock fields.
        let is_acq = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
            && i > f.body.start
            && toks[i - 1].is(".")
            && i + 2 < f.body.end
            && toks[i + 1].is("(")
            && toks[i + 2].is(")");
        if is_acq {
            if let Some(recv) = receiver_name(toks, i - 2, f.body.start) {
                let counts = t.is_ident("lock") || rwlock_fields.contains(&recv);
                if counts {
                    // The guard is only bound to a name when the acquisition
                    // is the *entire* RHS (`let g = x.lock();`, optionally via
                    // guard-returning `.unwrap()` / `.expect(..)` on a std
                    // Mutex). `let id = x.lock().next_id();` binds the result,
                    // so the guard is a temporary that dies at the `;`.
                    let mut rhs_end = i + 2; // index of the `)`
                    while rhs_end + 3 < f.body.end
                        && toks[rhs_end + 1].is(".")
                        && (toks[rhs_end + 2].is_ident("unwrap")
                            || toks[rhs_end + 2].is_ident("expect"))
                        && toks[rhs_end + 3].is("(")
                    {
                        rhs_end = crate::model::match_bracket(toks, rhs_end + 3, "(", ")");
                    }
                    let whole_rhs = rhs_end + 1 < f.body.end && toks[rhs_end + 1].is(";");
                    let chain_start = chain_start(toks, i - 2, f.body.start);
                    let binding = if whole_rhs
                        && chain_start > f.body.start
                        && toks[chain_start - 1].is("=")
                        && toks[chain_start - 1].kind == TokKind::Punct
                        && chain_start >= 2
                        && toks[chain_start - 2].kind == TokKind::Ident
                    {
                        Some(toks[chain_start - 2].text.clone())
                    } else {
                        None
                    };
                    if let Some(b) = &binding {
                        // rebinding releases the previous guard
                        if let Some(pos) = guards
                            .iter()
                            .rposition(|g| g.binding.as_deref() == Some(b.as_str()))
                        {
                            guards.remove(pos);
                        }
                    }
                    for g in &guards {
                        info.edges.push((g.lock.clone(), recv.clone(), t.line));
                    }
                    info.acquired.insert(recv.clone());
                    guards.push(Guard {
                        lock: recv,
                        temp: binding.is_none(),
                        binding,
                        depth,
                    });
                }
            }
            i += 3;
            continue;
        }
        // bus sends
        let is_named_send = (t.is_ident("send_envelope") || t.is_ident("send_unreliable"))
            && i + 1 < f.body.end
            && toks[i + 1].is("(");
        let is_method_send = t.is_ident("send")
            && i + 1 < f.body.end
            && toks[i + 1].is("(")
            && i >= 2
            && toks[i - 1].is(".")
            && SEND_RECEIVERS.contains(&toks[i - 2].text.as_str());
        if is_named_send || is_method_send {
            info.sends_any = true;
            if !guards.is_empty() {
                let holding: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                info.sends.push((t.line, holding));
            }
            i += 1;
            continue;
        }
        // OS-blocking operations
        if t.kind == TokKind::Ident && i + 1 < f.body.end && toks[i + 1].is("(") {
            let name = t.text.as_str();
            let prev_dot = i > f.body.start && toks[i - 1].is(".");
            let argless = i + 2 < f.body.end && toks[i + 2].is(")");
            let receiver = if prev_dot && i >= 2 {
                receiver_name(toks, i - 2, f.body.start)
            } else {
                None
            };
            // Blocking method families, all rendered `name(..)`: stream IO,
            // condvar waits, raw channel recv on a bare endpoint, and
            // `.read(buf)`/`.write(buf)` with arguments (stream IO, not a
            // RwLock acquisition).
            let dotted_blocking = prev_dot
                && (BLOCKING_STREAM.contains(&name)
                    || BLOCKING_WAIT.contains(&name)
                    || ((name == "recv" || name == "recv_timeout")
                        && receiver
                            .as_deref()
                            .is_some_and(|r| RAW_RECV_RECEIVERS.contains(&r)))
                    || ((name == "read" || name == "write") && !argless));
            let blocking_what = if prev_dot && argless && BLOCKING_ARGLESS.contains(&name) {
                Some(format!("{name}()"))
            } else if dotted_blocking {
                Some(format!("{name}(..)"))
            } else if (name == "park" || name == "park_timeout")
                && i >= 2
                && toks[i - 1].is("::")
                && toks[i - 2].is_ident("thread")
            {
                Some(format!("thread::{name}"))
            } else {
                None
            };
            if let Some(what) = blocking_what {
                // Guards whose binding is named in the argument list are
                // *released* by the op (condvar waits take the guard).
                let close = crate::model::match_bracket(toks, i + 1, "(", ")");
                let released: Vec<String> = if BLOCKING_WAIT.contains(&name) {
                    guards
                        .iter()
                        .filter(|g| {
                            g.binding.as_deref().is_some_and(|b| {
                                toks[i + 2..close.min(f.body.end)]
                                    .iter()
                                    .any(|a| a.is_ident(b))
                            })
                        })
                        .map(|g| g.lock.clone())
                        .collect()
                } else {
                    Vec::new()
                };
                let self_guard = receiver.as_deref().is_some_and(|r| {
                    guards
                        .iter()
                        .any(|g| g.binding.as_deref() == Some(r) || g.lock == r)
                });
                info.blocking.push(BlockingOp {
                    what,
                    line: t.line,
                    holding: guards.iter().map(|g| g.lock.clone()).collect(),
                    released,
                    self_guard,
                    escaped: escaped_at(i),
                });
                i += 1;
                continue;
            }
        }
        // RtMsg constructions (expression position only)
        if t.is_ident("RtMsg")
            && i + 2 < f.body.end
            && toks[i + 1].is("::")
            && toks[i + 2].kind == TokKind::Ident
            && !file.in_pattern(i + 2)
        {
            let variant = toks[i + 2].text.clone();
            let has_term = if i + 3 < f.body.end && toks[i + 3].is("{") {
                let close = crate::model::match_bracket(toks, i + 3, "{", "}");
                toks[i + 4..close.min(f.body.end)]
                    .iter()
                    .any(|a| a.is_ident("term"))
            } else {
                false
            };
            info.constructions.push(Construction {
                variant,
                line: toks[i + 2].line,
                has_term,
            });
            i += 3;
            continue;
        }
        // call sites
        if t.kind == TokKind::Ident
            && i + 1 < f.body.end
            && toks[i + 1].is("(")
            && !CALL_SKIP.contains(&t.text.as_str())
        {
            info.calls.push(CallSite {
                callee: t.text.clone(),
                line: t.line,
                holding: guards.iter().map(|g| g.lock.clone()).collect(),
                escaped: escaped_at(i),
            });
        }
        i += 1;
    }
    info
}

/// Receiver name for a method call whose `.` sits at `idx + 1`; walks back
/// over a trailing method-call group (`x.as_ref().lock()`).
fn receiver_name(toks: &[Tok], mut idx: usize, floor: usize) -> Option<String> {
    loop {
        if idx < floor {
            return None;
        }
        if toks[idx].is(")") {
            // scan back to the matching open paren
            let mut d = 0i32;
            let mut p = idx;
            loop {
                if toks[p].is(")") {
                    d += 1;
                } else if toks[p].is("(") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if p == floor {
                    return None;
                }
                p -= 1;
            }
            if p <= floor {
                return None;
            }
            idx = p - 1;
            // skip the method name and its dot
            if toks[idx].kind == TokKind::Ident && idx > floor && toks[idx - 1].is(".") {
                idx -= 2;
            }
            continue;
        }
        if toks[idx].kind == TokKind::Ident {
            return Some(toks[idx].text.clone());
        }
        return None;
    }
}

/// Index of the first token of the `a.b.c` chain ending at `recv_idx`.
fn chain_start(toks: &[Tok], recv_idx: usize, floor: usize) -> usize {
    let mut p = recv_idx;
    while p >= floor + 2 && toks[p - 1].is(".") && toks[p - 2].kind == TokKind::Ident {
        p -= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, "t.rs".into(), "t".into())],
            fixture_mode: true,
            root: None,
        }
    }

    fn fx<'a>(eng: &'a Engine, name: &str) -> &'a FnEffects {
        eng.fns.iter().find(|f| f.name == name).expect("fn present")
    }

    #[test]
    fn blocking_ops_and_holding() {
        let w = ws("struct S { routes: Mutex<u32> }\n\
             impl S { fn f(&self, sock: &mut W) { let g = self.routes.lock(); \
             sock.write_all(b); } }");
        let eng = Engine::build(&w);
        let f = fx(&eng, "f");
        assert_eq!(f.blocking.len(), 1);
        assert_eq!(f.blocking[0].what, "write_all(..)");
        assert_eq!(f.blocking[0].holding, vec!["routes"]);
        assert!(!f.blocking[0].self_guard);
    }

    #[test]
    fn self_guard_write_is_marked() {
        let w = ws("struct S { stream: Mutex<W> }\n\
             impl S { fn f(&self) { let mut s = self.stream.lock(); s.write_all(b); } }");
        let eng = Engine::build(&w);
        let f = fx(&eng, "f");
        assert!(f.blocking[0].self_guard);
    }

    #[test]
    fn condvar_wait_releases_named_guard() {
        let w = ws("struct S { state: Mutex<u32>, cvar: Condvar }\n\
             impl S { fn f(&self) { let mut st = self.state.lock(); \
             self.cvar.wait(&mut st); } }");
        let eng = Engine::build(&w);
        let f = fx(&eng, "f");
        assert_eq!(f.blocking[0].released, vec!["state"]);
    }

    #[test]
    fn blocking_escape_hatch_is_recorded() {
        let w = ws("fn f(time: &T, h: H) { time.blocking(|| h.join()); }");
        let eng = Engine::build(&w);
        let f = fx(&eng, "f");
        assert_eq!(f.blocking[0].what, "join()");
        assert!(f.blocking[0].escaped);
    }

    #[test]
    fn join_with_args_is_not_blocking() {
        let w = ws("fn f(parts: &[String]) -> String { parts.join(s) }");
        let eng = Engine::build(&w);
        assert!(fx(&eng, "f").blocking.is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_lives_through_else() {
        let w = ws("struct S { local: RwLock<M>, sock: W }\n\
             impl S { fn f(&self, to: u32) { \
             if let Some(tx) = self.local.read().get(to) { tx.send(e); } \
             else { self.sock.write_all(b); } } }");
        let eng = Engine::build(&w);
        let f = fx(&eng, "f");
        assert_eq!(f.blocking.len(), 1, "write_all in the else branch");
        assert_eq!(
            f.blocking[0].holding,
            vec!["local"],
            "the scrutinee read guard is still live in the else branch"
        );
    }

    #[test]
    fn constructions_record_term_presence() {
        let w = ws(
            "fn f(bus: &B, t: u64) { bus.send(RtMsg::Leave { id: z, term: t }); \
             bus.send(RtMsg::Stop { id: z }); }",
        );
        let eng = Engine::build(&w);
        let f = fx(&eng, "f");
        assert_eq!(f.constructions.len(), 2);
        assert!(f.constructions[0].has_term);
        assert!(!f.constructions[1].has_term);
    }

    #[test]
    fn pattern_position_is_not_a_construction() {
        let w = ws("fn f(m: &RtMsg) { if let RtMsg::Leave { term } = m { use_it(term); } }");
        let eng = Engine::build(&w);
        assert!(fx(&eng, "f").constructions.is_empty());
    }

    #[test]
    fn reach_paths_records_call_sites() {
        let w = ws("fn a(s: &S) { b(s); }\nfn b(s: &S) { s.sock.write_all(buf); }");
        let eng = Engine::build(&w);
        let direct: Vec<Option<(String, u32)>> = eng
            .fns
            .iter()
            .map(|f| f.blocking.first().map(|b| (b.what.clone(), b.line)))
            .collect();
        let paths = eng.reach_paths(&w, &direct, &|_| false, false);
        let ai = eng.fns.iter().position(|f| f.name == "a").expect("a");
        let (hops, detail) = paths[ai].as_ref().expect("a reaches write_all");
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].qual, "a");
        assert_eq!(hops[1].qual, "b");
        assert_eq!(detail, "write_all(..)");
        let rendered = format_path(hops, detail);
        assert!(rendered.contains("`a` (t.rs:1)"), "{rendered}");
        assert!(rendered.contains("`b` (t.rs:2)"), "{rendered}");
    }

    #[test]
    fn cut_escaped_stops_propagation() {
        let w = ws("fn a(time: &T, s: &S) { time.blocking(|| b(s)); }\n\
             fn b(s: &S) { s.sock.write_all(buf); }");
        let eng = Engine::build(&w);
        let direct: Vec<Option<(String, u32)>> = eng
            .fns
            .iter()
            .map(|f| f.blocking.first().map(|b| (b.what.clone(), b.line)))
            .collect();
        let ai = eng.fns.iter().position(|f| f.name == "a").expect("a");
        let cut = eng.reach_paths(&w, &direct, &|_| false, true);
        assert!(cut[ai].is_none(), "escaped call must not propagate");
        let uncut = eng.reach_paths(&w, &direct, &|_| false, false);
        assert!(uncut[ai].is_some(), "without the cut the path exists");
    }
}
