//! Persist-before-act lint (PERSIST_BEFORE_ACT).
//!
//! In AM adjustment paths (`elan-rt/src/runtime.rs`, `elan-rt/src/liveness.rs`)
//! a mutation of the durable AM record must reach the `ReplicatedStore`
//! (`persist(..)`) before any outgoing coordination send. Otherwise a crash
//! between the send and the persist leaves a replacement AM acting on a state
//! machine that never heard of the in-flight operation (§V-D).
//!
//! The check is a linear dirty-flag scan per function: a non-`let` assignment
//! statement mentioning `durable` left of the `=` sets the flag, `persist(`
//! clears it, and a bus send while dirty is a diagnostic. The AM code style
//! (persist immediately after the write block) keeps this precise; branches
//! that write-then-persist independently scan clean.

use crate::lexer::TokKind;
use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

const SCOPE: [&str; 2] = ["elan-rt/src/runtime.rs", "elan-rt/src/liveness.rs"];
const SEND_RECEIVERS: [&str; 2] = ["bus", "rep"];
const ASSIGN_OPS: [&str; 9] = ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if !ws.fixture_mode && !SCOPE.iter().any(|s| file.rel.ends_with(s)) {
            continue;
        }
        let toks = &file.toks;
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            let mut dirty_line: Option<u32> = None;
            let mut stmt_start = f.body.start;
            let mut i = f.body.start;
            while i < f.body.end {
                let t = &toks[i];
                match t.text.as_str() {
                    ";" | "{" | "}" => {
                        stmt_start = i + 1;
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
                // assignment that mutates the durable record
                let is_assign = (t.kind == TokKind::Punct || t.kind == TokKind::Op)
                    && ASSIGN_OPS.contains(&t.text.as_str());
                if is_assign {
                    let lhs = &toks[stmt_start..i];
                    let has_let = lhs.iter().any(|t| t.is_ident("let"));
                    let has_durable = lhs.iter().any(|t| t.is_ident("durable"));
                    if !has_let && has_durable {
                        dirty_line = Some(t.line);
                    }
                    i += 1;
                    continue;
                }
                // persist(..) flushes the record to the replicated store;
                // persist_fenced(..) is the term-checked wrapper around it
                // and flushes (or abdicates) just the same.
                if (t.is_ident("persist") || t.is_ident("persist_fenced"))
                    && i + 1 < f.body.end
                    && toks[i + 1].is("(")
                {
                    dirty_line = None;
                    i += 1;
                    continue;
                }
                // outgoing coordination send
                let is_named_send = (t.is_ident("send_envelope") || t.is_ident("send_unreliable"))
                    && i + 1 < f.body.end
                    && toks[i + 1].is("(");
                let is_method_send = t.is_ident("send")
                    && i + 1 < f.body.end
                    && toks[i + 1].is("(")
                    && i >= 2
                    && toks[i - 1].is(".")
                    && SEND_RECEIVERS.contains(&toks[i - 2].text.as_str());
                if is_named_send || is_method_send {
                    if let Some(wline) = dirty_line {
                        diags.push(Diagnostic::new(
                            rules::PERSIST_BEFORE_ACT,
                            file.rel.clone(),
                            t.line,
                            f.qual.clone(),
                            format!("durable write at line {wline}"),
                            format!(
                                "coordination send while the durable AM record is dirty \
                                 (written at line {wline}, not yet persisted)"
                            ),
                            "call self.ctrl.persist(&self.durable) before sending so a \
                             replacement AM recovers the in-flight operation",
                        ));
                        // one diagnostic per dirty region is enough
                        dirty_line = None;
                    }
                }
                i += 1;
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, "t.rs".into(), String::new())],
            fixture_mode: true,
            root: None,
        }
    }

    #[test]
    fn send_after_unpersisted_write_fires() {
        let d = run(&ws(
            "impl Am { fn f(&mut self) { self.durable.phase = Phase::X; \
             self.rep.send(1); } }",
        ));
        assert_eq!(d.len(), 1, "got {d:?}");
        assert_eq!(d[0].rule, rules::PERSIST_BEFORE_ACT);
    }

    #[test]
    fn persist_before_send_is_clean() {
        let d = run(&ws(
            "impl Am { fn f(&mut self) { self.durable.phase = Phase::X; \
             self.ctrl.persist(&self.durable); self.rep.send(1); } }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn fenced_persist_before_send_is_clean() {
        let d = run(&ws(
            "impl Am { fn f(&mut self) { self.durable.phase = Phase::X; \
             if self.persist_fenced() { return; } self.rep.send(1); } }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn read_of_durable_does_not_dirty() {
        let d = run(&ws(
            "impl Am { fn f(&mut self) { let m = self.durable.members.clone(); \
             self.rep.send(m); } }",
        ));
        assert!(d.is_empty(), "reads must not set the dirty flag: {d:?}");
    }

    #[test]
    fn send_before_write_is_clean() {
        let d = run(&ws(
            "impl Am { fn f(&mut self) { self.rep.send(1); \
             self.durable.phase = Phase::X; self.ctrl.persist(&self.durable); } }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }
}
