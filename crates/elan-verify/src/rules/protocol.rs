//! Protocol exhaustiveness (PROTOCOL_UNHANDLED_MSG, PROTOCOL_UNEMITTED_EVENT,
//! PROTOCOL_UNCONSTRUCTED_ERROR).
//!
//! - Every `RtMsg` variant (defined in `elan-core/src/protocol.rs`) must appear in
//!   *pattern position* (`match` arm, `matches!`, `if let`) somewhere in
//!   non-test `elan-rt` code — an unmatched variant is a message the runtime
//!   can receive but never dispatches or acks (§V-B).
//! - Every `EventKind` variant (`elan-rt/src/obs.rs`) must be constructed in
//!   non-test code at least once; dead taxonomy entries rot the journal.
//! - Every `ElanError` variant must be constructed somewhere in the
//!   workspace, or explicitly waived (reserved variants document themselves
//!   in `verify-allow.toml`).

use crate::model::{EnumDef, Workspace};
use crate::report::{rules, Diagnostic};

struct EnumRule {
    enum_name: &'static str,
    /// File suffix the enum must live in (ignored in fixture mode).
    def_file: &'static str,
    /// Restrict the use-site search to this crate ("" = whole workspace).
    use_crate: &'static str,
    /// true = variant must appear in pattern position (matched);
    /// false = variant must appear in expression position (constructed).
    want_pattern: bool,
    rule: &'static str,
    message: &'static str,
    hint: &'static str,
}

const ENUM_RULES: [EnumRule; 3] = [
    EnumRule {
        enum_name: "RtMsg",
        def_file: "elan-core/src/protocol.rs",
        use_crate: "elan-rt",
        want_pattern: true,
        rule: rules::PROTOCOL_UNHANDLED_MSG,
        message: "is never matched in runtime/worker dispatch",
        hint: "add a match arm (and ack path) for this message, or remove the variant",
    },
    EnumRule {
        enum_name: "EventKind",
        def_file: "elan-rt/src/obs.rs",
        use_crate: "elan-rt",
        want_pattern: false,
        rule: rules::PROTOCOL_UNEMITTED_EVENT,
        message: "is never emitted by non-test code",
        hint: "emit the event at the relevant instrumentation point, or remove the variant",
    },
    EnumRule {
        enum_name: "ElanError",
        def_file: "elan-core/src/error.rs",
        use_crate: "",
        want_pattern: false,
        rule: rules::PROTOCOL_UNCONSTRUCTED_ERROR,
        message: "is never constructed",
        hint: "construct it on the failing path, or waive it in verify-allow.toml with a \
               reason (reserved variants must be documented)",
    },
];

pub fn run(ws: &Workspace) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for er in &ENUM_RULES {
        let def = find_enum(ws, er);
        let (def_file_rel, e) = match def {
            Some(x) => x,
            None if ws.fixture_mode => continue, // fixture doesn't exercise this rule
            None => {
                return Err(format!(
                    "protocol rule misconfigured: enum `{}` not found in {}",
                    er.enum_name, er.def_file
                ));
            }
        };
        for (variant, vline) in &e.variants {
            let mut seen = false;
            'files: for file in &ws.files {
                if !ws.fixture_mode && !er.use_crate.is_empty() && file.crate_name != er.use_crate {
                    continue;
                }
                // look for `Enum :: Variant` at the right position class
                for i in 0..file.toks.len().saturating_sub(2) {
                    if file.toks[i].is_ident(er.enum_name)
                        && file.toks[i + 1].is("::")
                        && file.toks[i + 2].is_ident(variant)
                        && !file.is_test_at(i)
                        && file.in_pattern(i + 2) == er.want_pattern
                    {
                        seen = true;
                        break 'files;
                    }
                }
            }
            if !seen {
                diags.push(Diagnostic::new(
                    er.rule,
                    def_file_rel.clone(),
                    *vline,
                    String::new(),
                    variant.clone(),
                    format!("`{}::{variant}` {}", er.enum_name, er.message),
                    er.hint,
                ));
            }
        }
    }
    Ok(diags)
}

fn find_enum<'a>(ws: &'a Workspace, er: &EnumRule) -> Option<(String, &'a EnumDef)> {
    for file in &ws.files {
        if !ws.fixture_mode && !file.rel.ends_with(er.def_file) {
            continue;
        }
        if let Some(e) = file.enums.iter().find(|e| e.name == er.enum_name) {
            return Some((file.rel.clone(), e));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, "t.rs".into(), String::new())],
            fixture_mode: true,
            root: None,
        }
    }

    #[test]
    fn unmatched_rtmsg_variant_fires() {
        let d = run(&ws("enum RtMsg { Ping, Pong }\n\
             fn dispatch(m: RtMsg) { match m { RtMsg::Ping => {} _ => {} } }"))
        .expect("configured");
        assert_eq!(d.len(), 1, "got {d:?}");
        assert_eq!(d[0].rule, rules::PROTOCOL_UNHANDLED_MSG);
        assert_eq!(d[0].detail, "Pong");
    }

    #[test]
    fn construction_does_not_count_as_match() {
        let d = run(&ws("enum RtMsg { Ping }\n\
             fn f() -> RtMsg { RtMsg::Ping }"))
        .expect("configured");
        assert_eq!(d.len(), 1, "construction is not dispatch: {d:?}");
    }

    #[test]
    fn unemitted_event_fires_and_name_match_does_not_count() {
        let d = run(&ws(
            "enum EventKind { A, B }\n\
             fn emit() { sink(EventKind::A); }\n\
             fn name(k: &EventKind) -> &str { match k { EventKind::A => \"a\", EventKind::B => \"b\" } }",
        ))
        .expect("configured");
        assert_eq!(d.len(), 1, "got {d:?}");
        assert_eq!(d[0].rule, rules::PROTOCOL_UNEMITTED_EVENT);
        assert_eq!(d[0].detail, "B");
    }

    #[test]
    fn test_only_uses_do_not_count() {
        let d = run(&ws(
            "enum ElanError { Boom }\n\
             #[cfg(test)] mod tests { fn f() -> ElanError { ElanError::Boom } }",
        ))
        .expect("configured");
        assert_eq!(d.len(), 1, "test-only construction must not count: {d:?}");
    }
}
