//! Lock-order analysis (LOCK_ORDER_CYCLE) and lock-across-send detection
//! (LOCK_ACROSS_SEND), built on the shared reachability engine.
//!
//! Heuristics, documented in DESIGN.md §11/§16:
//! - A lock's identity is the field/binding name receiving `.lock()` (always
//!   counted — only `Mutex` exposes an argument-free `.lock()`), or
//!   `.read()`/`.write()` when the receiver is a field declared `RwLock<..>`
//!   anywhere in the workspace. Same-named fields unify into one node; this
//!   matches the codebase (e.g. `SharedControl::store` touched from both
//!   `liveness.rs` and `runtime.rs`) at the cost of merging unrelated locks
//!   that share a name.
//! - `let`-bound guards are held until their block closes, `drop(guard)`, or
//!   rebinding; temporaries are held until the end of their statement (`;` at
//!   or above the acquisition depth, or the close of a block opened after the
//!   acquisition — which models `match scrutinee.lock() { .. }` correctly,
//!   including `if let .. else` where the scrutinee outlives both branches).
//! - The call graph is name-based, same-crate preferred with a cross-crate
//!   fallback ([`Engine::resolve`]); a function's transitive lock set flows
//!   to its callers via fixpoint, producing `held -> callee's locks` edges.
//! - A bus send is `send_envelope(..)`, `send_unreliable(..)`, or `.send(..)`
//!   on a receiver named `bus`/`rep` (plain channel `tx.send` is not a bus
//!   send). Sending while holding any lock — directly or via a callee that
//!   transitively sends — is a diagnostic.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::Engine;
use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

pub fn run(ws: &Workspace, eng: &Engine) -> Vec<Diagnostic> {
    // Fixpoint: transitive lock sets and transitive send flags over the
    // call graph. Propagation follows *every* call site (a lock-free helper
    // that itself locks still contributes to its callers' lock sets).
    let n = eng.fns.len();
    let mut trans_locks: Vec<BTreeSet<String>> =
        eng.fns.iter().map(|i| i.acquired.clone()).collect();
    let mut trans_sends: Vec<bool> = eng.fns.iter().map(|i| i.sends_any).collect();
    loop {
        let mut changed = false;
        for idx in 0..n {
            for c in &eng.fns[idx].calls {
                for g in eng.resolve(ws, idx, &c.callee) {
                    if g == idx {
                        continue;
                    }
                    let add: Vec<String> = trans_locks[g]
                        .iter()
                        .filter(|l| !trans_locks[idx].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        trans_locks[idx].extend(add);
                        changed = true;
                    }
                    if trans_sends[g] && !trans_sends[idx] {
                        trans_sends[idx] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set: direct edges plus call-derived edges (held -> callee locks).
    // first site wins for attribution.
    let mut edges: BTreeMap<(String, String), (usize, u32, String)> = BTreeMap::new();
    let mut diags = Vec::new();
    for (idx, info) in eng.fns.iter().enumerate() {
        for (a, b, line) in &info.edges {
            edges.entry((a.clone(), b.clone())).or_insert((
                info.file,
                *line,
                format!("acquired in `{}`", info.qual),
            ));
        }
        for c in &info.calls {
            for g in eng.resolve(ws, idx, &c.callee) {
                if g == idx {
                    continue;
                }
                for l in &trans_locks[g] {
                    for h in &c.holding {
                        if h != l {
                            edges.entry((h.clone(), l.clone())).or_insert((
                                info.file,
                                c.line,
                                format!("`{}` calls `{}` which locks `{l}`", info.qual, c.callee),
                            ));
                        }
                    }
                }
                if trans_sends[g] && !c.holding.is_empty() {
                    diags.push(Diagnostic::new(
                        rules::LOCK_ACROSS_SEND,
                        ws.files[info.file].rel.clone(),
                        c.line,
                        info.qual.clone(),
                        c.holding.join(","),
                        format!(
                            "bus send reachable via `{}` while holding lock(s) [{}]",
                            c.callee,
                            c.holding.join(", ")
                        ),
                        "release the guard (drop(..) or end the scope) before sending; a \
                         chaos-injected resend can block on the held lock",
                    ));
                }
            }
        }
        for (line, holding) in &info.sends {
            diags.push(Diagnostic::new(
                rules::LOCK_ACROSS_SEND,
                ws.files[info.file].rel.clone(),
                *line,
                info.qual.clone(),
                holding.join(","),
                format!("bus send while holding lock(s) [{}]", holding.join(", ")),
                "release the guard (drop(..) or end the scope) before sending; a \
                 chaos-injected resend can block on the held lock",
            ));
        }
    }

    // Cycle detection over the lock graph.
    for cycle in find_cycles(&edges) {
        // Attribute the cycle to the edge closing it.
        let closing = (cycle[cycle.len() - 1].clone(), cycle[0].clone());
        let (file, line, ctx) = edges
            .get(&closing)
            .cloned()
            .unwrap_or((0, 0, String::new()));
        let path = {
            let mut p = cycle.clone();
            p.push(cycle[0].clone());
            p.join(" -> ")
        };
        diags.push(Diagnostic::new(
            rules::LOCK_ORDER_CYCLE,
            ws.files[file].rel.clone(),
            line,
            String::new(),
            path.clone(),
            if cycle.len() == 1 {
                format!("lock `{}` re-acquired while already held ({ctx})", cycle[0])
            } else {
                format!("lock acquisition cycle {path} ({ctx})")
            },
            "pick one global acquisition order for these locks and restructure the \
             offending path to follow it",
        ));
    }
    diags
}

/// All elementary cycles reachable in the edge set, canonicalised (rotated so
/// the lexicographically smallest lock comes first) and deduplicated.
fn find_cycles(edges: &BTreeMap<(String, String), (usize, u32, String)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from each node; path-based cycle extraction.
    for &start in &nodes {
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        dfs(
            start,
            &adj,
            &mut path,
            &mut on_path,
            &mut visited,
            &mut found,
        );
    }
    found.into_iter().collect()
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    visited: &mut BTreeSet<&'a str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    path.push(node);
    on_path.insert(node);
    for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
        if next == node {
            // self-loop
            found.insert(vec![node.to_string()]);
            continue;
        }
        if on_path.contains(next) {
            // extract cycle from path
            if let Some(pos) = path.iter().position(|&n| n == next) {
                let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                found.insert(canonical(cycle));
            }
            continue;
        }
        if !visited.contains(next) {
            dfs(next, adj, path, on_path, visited, found);
        }
    }
    on_path.remove(node);
    path.pop();
    visited.insert(node);
}

fn canonical(cycle: Vec<String>) -> Vec<String> {
    if cycle.is_empty() {
        return cycle;
    }
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn check(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![parse_source(src, "t.rs".into(), "t".into())],
            fixture_mode: true,
            root: None,
        };
        let eng = Engine::build(&ws);
        run(&ws, &eng)
    }

    #[test]
    fn detects_direct_cycle() {
        let d = check(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn g(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }",
        );
        assert!(
            d.iter().any(|d| d.rule == rules::LOCK_ORDER_CYCLE),
            "expected a cycle, got {d:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = check(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn g(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             }",
        );
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn drop_releases_guard() {
        let d = check(
            "struct S { a: Mutex<u32>, rep: R }\n\
             impl S { fn f(&self) { let g = self.a.lock(); drop(g); self.rep.send(1); } }",
        );
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn send_under_lock_fires() {
        let d = check(
            "struct S { a: Mutex<u32>, rep: R }\n\
             impl S { fn f(&self) { let g = self.a.lock(); self.rep.send(1); } }",
        );
        assert_eq!(
            d.iter()
                .filter(|d| d.rule == rules::LOCK_ACROSS_SEND)
                .count(),
            1,
            "got {d:?}"
        );
    }

    #[test]
    fn temp_guard_released_at_statement_end() {
        let d = check(
            "struct S { a: Mutex<u32>, rep: R }\n\
             impl S { fn f(&self) { self.a.lock().push(1); self.rep.send(1); } }",
        );
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn interprocedural_cycle() {
        let d = check(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let g = self.a.lock(); self.takes_b(); }\n\
               fn takes_b(&self) { let g = self.b.lock(); }\n\
               fn h(&self) { let g = self.b.lock(); let k = self.a.lock(); }\n\
             }",
        );
        assert!(
            d.iter().any(|d| d.rule == rules::LOCK_ORDER_CYCLE),
            "expected interprocedural cycle, got {d:?}"
        );
    }

    #[test]
    fn lock_free_helper_still_propagates_locks() {
        // `mid` holds nothing at its call to `leaf`, but `leaf` locks `b`;
        // `f` holding `a` calls `mid`, so the edge a -> b must still appear.
        let d = check(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let g = self.a.lock(); self.mid(); }\n\
               fn mid(&self) { self.leaf(); }\n\
               fn leaf(&self) { let g = self.b.lock(); }\n\
               fn h(&self) { let g = self.b.lock(); let k = self.a.lock(); }\n\
             }",
        );
        assert!(
            d.iter().any(|d| d.rule == rules::LOCK_ORDER_CYCLE),
            "expected cycle through the lock-free helper, got {d:?}"
        );
    }

    #[test]
    fn channel_send_is_not_bus_send() {
        let d = check(
            "struct S { a: Mutex<u32> }\n\
             impl S { fn f(&self, tx: Sender<u32>) { let g = self.a.lock(); tx.send(1); } }",
        );
        assert!(d.is_empty(), "got {d:?}");
    }
}
