//! Lock-order analysis (LOCK_ORDER_CYCLE) and lock-across-send detection
//! (LOCK_ACROSS_SEND).
//!
//! Heuristics, documented in DESIGN.md §11:
//! - A lock's identity is the field/binding name receiving `.lock()` (always
//!   counted — only `Mutex` exposes an argument-free `.lock()`), or
//!   `.read()`/`.write()` when the receiver is a field declared `RwLock<..>`
//!   anywhere in the workspace. Same-named fields unify into one node; this
//!   matches the codebase (e.g. `SharedControl::store` touched from both
//!   `liveness.rs` and `runtime.rs`) at the cost of merging unrelated locks
//!   that share a name.
//! - `let`-bound guards are held until their block closes, `drop(guard)`, or
//!   rebinding; temporaries are held until the end of their statement (`;` at
//!   or above the acquisition depth, or the close of a block opened after the
//!   acquisition — which models `match scrutinee.lock() { .. }` correctly).
//! - The call graph is name-based and same-crate only; a function's
//!   transitive lock set flows to its callers via fixpoint, producing
//!   `held -> callee's locks` edges. Names resolving to more than
//!   `MAX_RESOLVE` candidates are skipped as noise.
//! - A bus send is `send_envelope(..)`, `send_unreliable(..)`, or `.send(..)`
//!   on a receiver named `bus`/`rep` (plain channel `tx.send` is not a bus
//!   send). Sending while holding any lock — directly or via a same-crate
//!   callee that transitively sends — is a diagnostic.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;

use crate::lexer::TokKind;
use crate::model::{FileModel, Function, Workspace};
use crate::report::{rules, Diagnostic};

/// Names that, when followed by `(`, are never treated as workspace calls.
const CALL_SKIP: &[&str] = &[
    "lock",
    "read",
    "write",
    "drop",
    "if",
    "while",
    "for",
    "match",
    "return",
    "loop",
    "move",
    "in",
    "as",
    "let",
    "else",
    "fn",
    "unsafe",
    "ref",
    "mut",
    "dyn",
    "impl",
    "where",
    "pub",
    "use",
    "crate",
    "super",
    "Self",
    "self",
    "send",
    "send_envelope",
    "send_unreliable",
];

/// Skip call-graph resolution for names matching more functions than this.
const MAX_RESOLVE: usize = 4;

/// Bus-send receiver names (`tx.send(..)` is a plain channel, not a bus send).
const SEND_RECEIVERS: &[&str] = &["bus", "rep"];

#[derive(Debug, Default)]
struct FnLockInfo {
    file: usize,
    qual: String,
    /// Locks acquired anywhere in this function.
    acquired: BTreeSet<String>,
    /// (callee simple name, locks held at the call, line).
    calls: Vec<(String, Vec<String>, u32)>,
    /// (line, locks held) for each bus send.
    sends: Vec<(u32, Vec<String>)>,
    /// Whether the function performs a bus send at all.
    sends_any: bool,
    /// Direct edges `held -> newly acquired` with the acquisition line.
    edges: Vec<(String, String, u32)>,
}

struct Guard {
    lock: String,
    binding: Option<String>,
    depth: i32,
    temp: bool,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    // Global RwLock field-name set (lock discovery is workspace-wide because
    // fields like `worker_crash` are declared in one file and used in others).
    let rwlock_fields: BTreeSet<String> = ws
        .files
        .iter()
        .flat_map(|f| f.rwlock_fields.iter().cloned())
        .collect();

    // Per-function scans.
    let mut infos: Vec<FnLockInfo> = Vec::new();
    let mut name_map: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let bodies: Vec<Range<usize>> = file.functions.iter().map(|f| f.body.clone()).collect();
        for (fni, f) in file.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            // Nested function bodies strictly inside this one are scanned as
            // their own functions; skip their tokens here.
            let nested: Vec<Range<usize>> = bodies
                .iter()
                .enumerate()
                .filter(|(j, b)| *j != fni && b.start > f.body.start && b.end <= f.body.end)
                .map(|(_, b)| b.clone())
                .collect();
            let info = scan_fn(file, fi, f, &rwlock_fields, &nested);
            name_map
                .entry((file.crate_name.clone(), f.name.clone()))
                .or_default()
                .push(infos.len());
            infos.push(info);
        }
    }

    // Fixpoint: transitive lock sets and transitive send flags over the
    // same-crate, name-based call graph.
    let resolve = |crate_name: &str, callee: &str| -> Vec<usize> {
        match name_map.get(&(crate_name.to_string(), callee.to_string())) {
            Some(v) if v.len() <= MAX_RESOLVE => v.clone(),
            _ => Vec::new(),
        }
    };
    let mut trans_locks: Vec<BTreeSet<String>> = infos.iter().map(|i| i.acquired.clone()).collect();
    let mut trans_sends: Vec<bool> = infos.iter().map(|i| i.sends_any).collect();
    loop {
        let mut changed = false;
        for idx in 0..infos.len() {
            let crate_name = ws.files[infos[idx].file].crate_name.clone();
            for (callee, _, _) in infos[idx].calls.clone() {
                for g in resolve(&crate_name, &callee) {
                    if g == idx {
                        continue;
                    }
                    let add: Vec<String> = trans_locks[g]
                        .iter()
                        .filter(|l| !trans_locks[idx].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        trans_locks[idx].extend(add);
                        changed = true;
                    }
                    if trans_sends[g] && !trans_sends[idx] {
                        trans_sends[idx] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set: direct edges plus call-derived edges (held -> callee locks).
    // first site wins for attribution.
    let mut edges: BTreeMap<(String, String), (usize, u32, String)> = BTreeMap::new();
    let mut diags = Vec::new();
    for (idx, info) in infos.iter().enumerate() {
        for (a, b, line) in &info.edges {
            edges.entry((a.clone(), b.clone())).or_insert((
                info.file,
                *line,
                format!("acquired in `{}`", info.qual),
            ));
        }
        let crate_name = &ws.files[info.file].crate_name;
        for (callee, holding, line) in &info.calls {
            for g in resolve(crate_name, callee) {
                if g == idx {
                    continue;
                }
                for l in &trans_locks[g] {
                    for h in holding {
                        if h != l {
                            edges.entry((h.clone(), l.clone())).or_insert((
                                info.file,
                                *line,
                                format!("`{}` calls `{callee}` which locks `{l}`", info.qual),
                            ));
                        }
                    }
                }
                if trans_sends[g] && !holding.is_empty() {
                    diags.push(Diagnostic::new(
                        rules::LOCK_ACROSS_SEND,
                        ws.files[info.file].rel.clone(),
                        *line,
                        info.qual.clone(),
                        holding.join(","),
                        format!(
                            "bus send reachable via `{callee}` while holding lock(s) [{}]",
                            holding.join(", ")
                        ),
                        "release the guard (drop(..) or end the scope) before sending; a \
                         chaos-injected resend can block on the held lock",
                    ));
                }
            }
        }
        for (line, holding) in &info.sends {
            diags.push(Diagnostic::new(
                rules::LOCK_ACROSS_SEND,
                ws.files[info.file].rel.clone(),
                *line,
                info.qual.clone(),
                holding.join(","),
                format!("bus send while holding lock(s) [{}]", holding.join(", ")),
                "release the guard (drop(..) or end the scope) before sending; a \
                 chaos-injected resend can block on the held lock",
            ));
        }
    }

    // Cycle detection over the lock graph.
    for cycle in find_cycles(&edges) {
        // Attribute the cycle to the edge closing it.
        let closing = (cycle[cycle.len() - 1].clone(), cycle[0].clone());
        let (file, line, ctx) = edges
            .get(&closing)
            .cloned()
            .unwrap_or((0, 0, String::new()));
        let path = {
            let mut p = cycle.clone();
            p.push(cycle[0].clone());
            p.join(" -> ")
        };
        diags.push(Diagnostic::new(
            rules::LOCK_ORDER_CYCLE,
            ws.files[file].rel.clone(),
            line,
            String::new(),
            path.clone(),
            if cycle.len() == 1 {
                format!("lock `{}` re-acquired while already held ({ctx})", cycle[0])
            } else {
                format!("lock acquisition cycle {path} ({ctx})")
            },
            "pick one global acquisition order for these locks and restructure the \
             offending path to follow it",
        ));
    }
    diags
}

fn scan_fn(
    file: &FileModel,
    fi: usize,
    f: &Function,
    rwlock_fields: &BTreeSet<String>,
    nested: &[Range<usize>],
) -> FnLockInfo {
    let toks = &file.toks;
    let mut info = FnLockInfo {
        file: fi,
        qual: f.qual.clone(),
        ..FnLockInfo::default()
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = f.body.start;
    while i < f.body.end {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                i += 1;
                continue;
            }
            "}" => {
                depth -= 1;
                // let-guards die when their block closes; temporaries also die
                // when a block opened after their acquisition closes back to
                // their depth (end of a match/if-let statement).
                guards.retain(|g| g.depth <= depth && !(g.temp && g.depth == depth));
                i += 1;
                continue;
            }
            ";" => {
                let d = depth;
                guards.retain(|g| !(g.temp && g.depth >= d));
                i += 1;
                continue;
            }
            _ => {}
        }
        // drop(binding)
        if t.is_ident("drop")
            && i + 3 < f.body.end
            && toks[i + 1].is("(")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is(")")
        {
            let name = &toks[i + 2].text;
            if let Some(pos) = guards
                .iter()
                .rposition(|g| g.binding.as_deref() == Some(name))
            {
                guards.remove(pos);
            }
            i += 4;
            continue;
        }
        // lock acquisition: `.lock()` always; `.read()`/`.write()` only on
        // known RwLock fields.
        let is_acq = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
            && i > f.body.start
            && toks[i - 1].is(".")
            && i + 2 < f.body.end
            && toks[i + 1].is("(")
            && toks[i + 2].is(")");
        if is_acq {
            if let Some(recv) = receiver_name(toks, i - 2, f.body.start) {
                let counts = t.is_ident("lock") || rwlock_fields.contains(&recv);
                if counts {
                    // The guard is only bound to a name when the acquisition
                    // is the *entire* RHS (`let g = x.lock();`, optionally via
                    // guard-returning `.unwrap()` / `.expect(..)` on a std
                    // Mutex). `let id = x.lock().next_id();` binds the result,
                    // so the guard is a temporary that dies at the `;`.
                    let mut rhs_end = i + 2; // index of the `)`
                    while rhs_end + 3 < f.body.end
                        && toks[rhs_end + 1].is(".")
                        && (toks[rhs_end + 2].is_ident("unwrap")
                            || toks[rhs_end + 2].is_ident("expect"))
                        && toks[rhs_end + 3].is("(")
                    {
                        rhs_end = crate::model::match_bracket(toks, rhs_end + 3, "(", ")");
                    }
                    let whole_rhs = rhs_end + 1 < f.body.end && toks[rhs_end + 1].is(";");
                    let chain_start = chain_start(toks, i - 2, f.body.start);
                    let binding = if whole_rhs
                        && chain_start > f.body.start
                        && toks[chain_start - 1].is("=")
                        && toks[chain_start - 1].kind == TokKind::Punct
                        && chain_start >= 2
                        && toks[chain_start - 2].kind == TokKind::Ident
                    {
                        Some(toks[chain_start - 2].text.clone())
                    } else {
                        None
                    };
                    if let Some(b) = &binding {
                        // rebinding releases the previous guard
                        if let Some(pos) = guards
                            .iter()
                            .rposition(|g| g.binding.as_deref() == Some(b.as_str()))
                        {
                            guards.remove(pos);
                        }
                    }
                    for g in &guards {
                        info.edges.push((g.lock.clone(), recv.clone(), t.line));
                    }
                    info.acquired.insert(recv.clone());
                    guards.push(Guard {
                        lock: recv,
                        temp: binding.is_none(),
                        binding,
                        depth,
                    });
                }
            }
            i += 3;
            continue;
        }
        // bus sends
        let is_named_send = (t.is_ident("send_envelope") || t.is_ident("send_unreliable"))
            && i + 1 < f.body.end
            && toks[i + 1].is("(");
        let is_method_send = t.is_ident("send")
            && i + 1 < f.body.end
            && toks[i + 1].is("(")
            && i >= 2
            && toks[i - 1].is(".")
            && SEND_RECEIVERS.contains(&toks[i - 2].text.as_str());
        if is_named_send || is_method_send {
            info.sends_any = true;
            if !guards.is_empty() {
                let holding: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                info.sends.push((t.line, holding));
            }
            i += 1;
            continue;
        }
        // call sites (only interesting while holding a lock)
        if t.kind == TokKind::Ident
            && i + 1 < f.body.end
            && toks[i + 1].is("(")
            && !CALL_SKIP.contains(&t.text.as_str())
            && !guards.is_empty()
        {
            let holding: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
            info.calls.push((t.text.clone(), holding, t.line));
        }
        i += 1;
    }
    info
}

/// Receiver name for an acquisition whose `.` sits at `idx + 1`; walks back
/// over a trailing method-call group (`x.as_ref().lock()`).
fn receiver_name(toks: &[crate::lexer::Tok], mut idx: usize, floor: usize) -> Option<String> {
    loop {
        if idx < floor {
            return None;
        }
        if toks[idx].is(")") {
            // scan back to the matching open paren
            let mut d = 0i32;
            let mut p = idx;
            loop {
                if toks[p].is(")") {
                    d += 1;
                } else if toks[p].is("(") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if p == floor {
                    return None;
                }
                p -= 1;
            }
            if p <= floor {
                return None;
            }
            idx = p - 1;
            // skip the method name and its dot
            if toks[idx].kind == TokKind::Ident && idx > floor && toks[idx - 1].is(".") {
                idx -= 2;
            }
            continue;
        }
        if toks[idx].kind == TokKind::Ident {
            return Some(toks[idx].text.clone());
        }
        return None;
    }
}

/// Index of the first token of the `a.b.c` chain ending at `recv_idx`.
fn chain_start(toks: &[crate::lexer::Tok], recv_idx: usize, floor: usize) -> usize {
    let mut p = recv_idx;
    while p >= floor + 2 && toks[p - 1].is(".") && toks[p - 2].kind == TokKind::Ident {
        p -= 2;
    }
    p
}

/// All elementary cycles reachable in the edge set, canonicalised (rotated so
/// the lexicographically smallest lock comes first) and deduplicated.
fn find_cycles(edges: &BTreeMap<(String, String), (usize, u32, String)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from each node; path-based cycle extraction.
    for &start in &nodes {
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        dfs(
            start,
            &adj,
            &mut path,
            &mut on_path,
            &mut visited,
            &mut found,
        );
    }
    found.into_iter().collect()
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    visited: &mut BTreeSet<&'a str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    path.push(node);
    on_path.insert(node);
    for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
        if next == node {
            // self-loop
            found.insert(vec![node.to_string()]);
            continue;
        }
        if on_path.contains(next) {
            // extract cycle from path
            if let Some(pos) = path.iter().position(|&n| n == next) {
                let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                found.insert(canonical(cycle));
            }
            continue;
        }
        if !visited.contains(next) {
            dfs(next, adj, path, on_path, visited, found);
        }
    }
    on_path.remove(node);
    path.pop();
    visited.insert(node);
}

fn canonical(cycle: Vec<String>) -> Vec<String> {
    if cycle.is_empty() {
        return cycle;
    }
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, "t.rs".into(), "t".into())],
            fixture_mode: true,
        }
    }

    #[test]
    fn detects_direct_cycle() {
        let d = run(&ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn g(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }"));
        assert!(
            d.iter().any(|d| d.rule == rules::LOCK_ORDER_CYCLE),
            "expected a cycle, got {d:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = run(&ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn g(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             }"));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn drop_releases_guard() {
        let d = run(&ws(
            "struct S { a: Mutex<u32>, rep: R }\n\
             impl S { fn f(&self) { let g = self.a.lock(); drop(g); self.rep.send(1); } }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn send_under_lock_fires() {
        let d = run(&ws(
            "struct S { a: Mutex<u32>, rep: R }\n\
             impl S { fn f(&self) { let g = self.a.lock(); self.rep.send(1); } }",
        ));
        assert_eq!(
            d.iter()
                .filter(|d| d.rule == rules::LOCK_ACROSS_SEND)
                .count(),
            1,
            "got {d:?}"
        );
    }

    #[test]
    fn temp_guard_released_at_statement_end() {
        let d = run(&ws(
            "struct S { a: Mutex<u32>, rep: R }\n\
             impl S { fn f(&self) { self.a.lock().push(1); self.rep.send(1); } }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn interprocedural_cycle() {
        let d = run(&ws("struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let g = self.a.lock(); self.takes_b(); }\n\
               fn takes_b(&self) { let g = self.b.lock(); }\n\
               fn h(&self) { let g = self.b.lock(); let k = self.a.lock(); }\n\
             }"));
        assert!(
            d.iter().any(|d| d.rule == rules::LOCK_ORDER_CYCLE),
            "expected interprocedural cycle, got {d:?}"
        );
    }

    #[test]
    fn channel_send_is_not_bus_send() {
        let d = run(&ws(
            "struct S { a: Mutex<u32> }\n\
             impl S { fn f(&self, tx: Sender<u32>) { let g = self.a.lock(); tx.send(1); } }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }
}
