//! Panic hygiene (PANIC_HYGIENE): no `unwrap()`, `expect(..)`, or `panic!`
//! in non-test code of the runtime-critical crates. A panicking AM or worker
//! thread silently breaks the liveness story the paper's §V-D depends on —
//! failures must surface as typed `ElanError`s (handled) or heartbeats going
//! quiet (detected), never as a poisoned invariant. Deliberate panics stay
//! possible via a justified `[[waiver]]` entry in `verify-allow.toml`.

use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

/// Crates under panic discipline.
const SCOPE_CRATES: [&str; 3] = ["elan-rt", "elan-core", "elan-topology"];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if !ws.fixture_mode && !SCOPE_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            let kind = if (t.is_ident("unwrap") || t.is_ident("expect"))
                && i > 0
                && toks[i - 1].is(".")
                && i + 1 < toks.len()
                && toks[i + 1].is("(")
            {
                Some(t.text.as_str().to_string())
            } else if t.is_ident("panic") && i + 1 < toks.len() && toks[i + 1].is("!") {
                Some("panic!".to_string())
            } else {
                None
            };
            let Some(kind) = kind else { continue };
            if file.is_test_at(i) {
                continue;
            }
            let func = file
                .enclosing_fn(i)
                .map(|f| f.qual.clone())
                .unwrap_or_default();
            diags.push(Diagnostic::new(
                rules::PANIC_HYGIENE,
                file.rel.clone(),
                t.line,
                func,
                kind.clone(),
                format!("`{kind}` in non-test runtime code"),
                "return a typed ElanError (or add a [[waiver]] with a justification in \
                 verify-allow.toml if the panic is a checked invariant)",
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, "t.rs".into(), String::new())],
            fixture_mode: true,
            root: None,
        }
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let d = run(&ws("fn f(x: Option<u32>) -> u32 { let a = x.unwrap(); \
             let b = x.expect(\"present\"); if a == b { panic!(\"boom\") } a }"));
        let kinds: Vec<&str> = d.iter().map(|d| d.detail.as_str()).collect();
        assert_eq!(kinds, vec!["unwrap", "expect", "panic!"]);
    }

    #[test]
    fn unwrap_or_is_fine() {
        let d = run(&ws("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }"));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run(&ws(
            "#[cfg(test)] mod tests { #[test] fn t() { None::<u32>.unwrap(); } }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }
}
