//! Blocking-under-lock detection (BLOCKING_UNDER_LOCK): no OS-blocking
//! operation — stream reads/writes, `join()`, `accept()`, condvar waits,
//! raw channel `recv` — may run while a mutex/rwlock guard is live,
//! whether the op is in the function itself or transitively reachable
//! through the call graph. This generalises LOCK_ACROSS_SEND from "bus
//! send under a guard" to "anything that can park the thread under a
//! guard": the socket hub's route-map lock plus a peer that stops
//! reading is exactly how an elastic adjustment wedges every other
//! connection (DESIGN.md §16).
//!
//! Two deliberate exemptions, both computed by the engine:
//! - An op whose *receiver* is the live guard itself (`s.write_all(..)`
//!   where `s = self.stream.lock()`) is the intended serialise-writers
//!   pattern; it is exempt *directly*, but the blocking effect still
//!   propagates to callers holding other locks.
//! - A condvar wait *releases* every guard named in its argument list
//!   (`cvar.wait(&mut st)`), so only the remaining guards count.

use crate::engine::{format_path, Engine, Hop};
use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

const HINT: &str = "hoist the blocking op out of the critical section: clone what you \
     need out of the guard, drop it, then block (see DESIGN.md §16)";

pub fn run(ws: &Workspace, eng: &Engine) -> Vec<Diagnostic> {
    // Reach set: any blocking op counts, self-guard or escaped included —
    // a `blocking()` closure still parks the OS thread while the *caller's*
    // guard is held, and a self-guard write still blocks callers holding
    // other locks.
    let direct: Vec<Option<(String, u32)>> = eng
        .fns
        .iter()
        .map(|f| f.blocking.first().map(|b| (b.what.clone(), b.line)))
        .collect();
    let paths = eng.reach_paths(ws, &direct, &|_| false, false);

    let mut diags = Vec::new();
    for (idx, f) in eng.fns.iter().enumerate() {
        let rel = &ws.files[f.file].rel;
        // Direct ops under a live guard.
        for b in &f.blocking {
            if b.self_guard {
                continue;
            }
            let held: Vec<String> = b
                .holding
                .iter()
                .filter(|l| !b.released.contains(*l))
                .cloned()
                .collect();
            if held.is_empty() {
                continue;
            }
            diags.push(Diagnostic::new(
                rules::BLOCKING_UNDER_LOCK,
                rel.clone(),
                b.line,
                f.qual.clone(),
                held.join(","),
                format!(
                    "OS-blocking `{}` while holding lock(s) [{}]",
                    b.what,
                    held.join(", ")
                ),
                HINT,
            ));
        }
        // Transitive: a call under a guard whose callee reaches a blocking op.
        for c in &f.calls {
            if c.holding.is_empty() {
                continue;
            }
            for t in eng.resolve(ws, idx, &c.callee) {
                if t == idx {
                    continue;
                }
                let Some((hops, detail)) = &paths[t] else {
                    continue;
                };
                let mut full = vec![Hop {
                    file: rel.clone(),
                    qual: f.qual.clone(),
                    line: c.line,
                }];
                full.extend(hops.iter().cloned());
                diags.push(Diagnostic::new(
                    rules::BLOCKING_UNDER_LOCK,
                    rel.clone(),
                    c.line,
                    f.qual.clone(),
                    c.holding.join(","),
                    format!(
                        "OS-blocking `{detail}` reachable while holding lock(s) [{}]: {}",
                        c.holding.join(", "),
                        format_path(&full, detail)
                    ),
                    HINT,
                ));
                break; // one diagnostic per call site
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn check(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![parse_source(src, "t.rs".into(), "t".into())],
            fixture_mode: true,
            root: None,
        };
        let eng = Engine::build(&ws);
        run(&ws, &eng)
    }

    #[test]
    fn direct_write_under_lock_fires() {
        let d = check(
            "struct S { routes: Mutex<u32>, sock: W }\n\
             impl S { fn f(&self) { let g = self.routes.lock(); self.sock.write_all(b); } }",
        );
        assert_eq!(d.len(), 1, "got {d:?}");
        assert!(d[0].message.contains("write_all"));
    }

    #[test]
    fn self_guard_write_is_exempt() {
        let d = check(
            "struct S { stream: Mutex<W> }\n\
             impl S { fn f(&self) { let mut s = self.stream.lock(); s.write_all(b); } }",
        );
        assert!(d.is_empty(), "serialised-writer pattern: {d:?}");
    }

    #[test]
    fn condvar_wait_on_own_guard_is_exempt() {
        let d = check(
            "struct S { state: Mutex<u32>, cvar: C }\n\
             impl S { fn f(&self) { let mut st = self.state.lock(); \
             self.cvar.wait(&mut st); } }",
        );
        assert!(d.is_empty(), "the wait releases st: {d:?}");
    }

    #[test]
    fn condvar_wait_holding_another_lock_fires() {
        let d = check(
            "struct S { state: Mutex<u32>, other: Mutex<u32>, cvar: C }\n\
             impl S { fn f(&self) { let o = self.other.lock(); \
             let mut st = self.state.lock(); self.cvar.wait(&mut st); } }",
        );
        assert_eq!(d.len(), 1, "got {d:?}");
        assert_eq!(d[0].detail, "other");
    }

    #[test]
    fn transitive_block_prints_path() {
        let d = check(
            "struct S { routes: Mutex<u32>, sock: W }\n\
             impl S {\n\
               fn relay(&self) { let g = self.routes.lock(); self.emit(); }\n\
               fn emit(&self) { self.sock.write_all(b); }\n\
             }",
        );
        assert_eq!(d.len(), 1, "got {d:?}");
        assert!(
            d[0].message.contains("`S::relay` (t.rs:3)"),
            "{}",
            d[0].message
        );
        assert!(
            d[0].message.contains("`S::emit` (t.rs:4)"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn self_guard_still_blocks_callers() {
        // write_frame's own stream lock is fine, but a caller holding the
        // uplink guard across the call is not.
        let d = check(
            "struct S { uplink: RwLock<W>, stream: Mutex<W> }\n\
             impl S {\n\
               fn relay(&self) { if let Some(u) = self.uplink.read().clone() \
                 { u.write_frame(m); } }\n\
               fn write_frame(&self, m: M) { let mut s = self.stream.lock(); \
                 s.write_all(b); }\n\
             }",
        );
        assert_eq!(d.len(), 1, "got {d:?}");
        assert_eq!(d[0].detail, "uplink");
    }

    #[test]
    fn no_lock_no_diag() {
        let d = check("fn f(sock: &mut W) { sock.write_all(b); }");
        assert!(d.is_empty(), "got {d:?}");
    }
}
