//! Wire-format compatibility (WIRE_COMPAT): the `RtMsg` tag↔variant
//! table, frame kinds, and framing constants in `elan-core/src/codec.rs`
//! are cross-process API — PR 8's coordinator and worker binaries may be
//! updated independently, so a renumbered or removed tag silently
//! corrupts every in-flight adjustment between versions. The rule has
//! two halves:
//!
//! 1. **Internal consistency**: the encode table (`write_msg`) and the
//!    decode table (`read_msg`) must agree variant-for-variant — a tag
//!    written by the encoder that the decoder does not map back to the
//!    same variant is a diagnostic.
//! 2. **Manifest pinning** (workspace mode): the extracted surface is
//!    compared against the committed `codec_surface.txt` — the
//!    `api_surface.txt` treatment for the wire format. Removing or
//!    changing an entry is an error; appending is allowed (CI diffs the
//!    regenerated manifest so appends still land in review).
//!
//! Extraction is token-level: in `write_msg`, an `RtMsg::V` in pattern
//! position selects the variant and the first following `w.u8(<literal>)`
//! is its tag; in `read_msg`, integer literals in pattern position are
//! pending tags and an `RtMsg::V` in expression position claims the
//! earliest one (nested matches like `StateKind` only add later numbers,
//! which are discarded when the variant is claimed).

use std::collections::BTreeMap;
use std::fs;

use crate::lexer::TokKind;
use crate::model::{FileModel, Workspace};
use crate::report::{rules, Diagnostic};

/// The committed manifest file name, relative to the workspace root.
pub const MANIFEST: &str = "codec_surface.txt";

/// Framing constants pinned by name.
const PINNED_CONSTS: &[&str] = &["WIRE_VERSION", "MAX_FRAME_LEN"];

#[derive(Debug, Default)]
struct Extract {
    /// (const name, value text, line) for WIRE_VERSION/MAX_FRAME_LEN/FRAME_*.
    consts: Vec<(String, String, u32)>,
    /// (variant, tag text, line) in `write_msg` order.
    encode: Vec<(String, String, u32)>,
    /// (tag text, variant, line) in `read_msg` order.
    decode: Vec<(String, String, u32)>,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(file) = codec_file(ws) else {
        return Vec::new();
    };
    let ext = extract(file);
    let mut diags = internal_check(&ext, file);
    if !ws.fixture_mode {
        if let Some(root) = &ws.root {
            diags.extend(manifest_check(&ext, &root.join(MANIFEST), file));
        }
    }
    diags
}

/// Render the current wire surface — what `--emit-codec-surface` writes and
/// what the manifest check compares against.
pub fn surface(ws: &Workspace) -> Result<String, String> {
    let file = codec_file(ws).ok_or("no codec file (write_msg/read_msg) found")?;
    let ext = extract(file);
    Ok(render_surface(&ext, &file.rel))
}

fn codec_file(ws: &Workspace) -> Option<&FileModel> {
    let has_codec = |f: &&FileModel| {
        f.functions.iter().any(|x| x.name == "write_msg")
            && f.functions.iter().any(|x| x.name == "read_msg")
    };
    if ws.fixture_mode {
        ws.files.iter().find(has_codec)
    } else {
        ws.files
            .iter()
            .find(|f| f.rel.ends_with("elan-core/src/codec.rs"))
            .filter(has_codec)
    }
}

fn extract(file: &FileModel) -> Extract {
    let toks = &file.toks;
    let n = toks.len();
    let mut ext = Extract::default();

    // Pinned consts: `const NAME: T = <value>;`
    for i in 0..n {
        if !toks[i].is_ident("const") || i + 1 >= n || toks[i + 1].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i + 1].text.clone();
        if !PINNED_CONSTS.contains(&name.as_str()) && !name.starts_with("FRAME_") {
            continue;
        }
        let mut j = i + 2;
        while j < n && !toks[j].is("=") && !toks[j].is(";") {
            j += 1;
        }
        if j >= n || !toks[j].is("=") {
            continue;
        }
        let mut value = Vec::new();
        let mut k = j + 1;
        while k < n && !toks[k].is(";") {
            value.push(toks[k].text.clone());
            k += 1;
        }
        ext.consts.push((name, value.join(" "), toks[i + 1].line));
    }

    // Encode table from write_msg.
    if let Some(f) = file.functions.iter().find(|f| f.name == "write_msg") {
        let mut current: Option<String> = None;
        let mut i = f.body.start;
        while i < f.body.end {
            if toks[i].is_ident("RtMsg")
                && i + 2 < f.body.end
                && toks[i + 1].is("::")
                && toks[i + 2].kind == TokKind::Ident
                && file.in_pattern(i + 2)
            {
                current = Some(toks[i + 2].text.clone());
                i += 3;
                continue;
            }
            if toks[i].is_ident("u8")
                && i > f.body.start
                && toks[i - 1].is(".")
                && i + 3 < f.body.end
                && toks[i + 1].is("(")
                && toks[i + 2].kind == TokKind::Number
                && toks[i + 3].is(")")
            {
                // Only the first literal u8 after the arm pattern is the tag;
                // later u8 writes encode fields.
                if let Some(v) = current.take() {
                    ext.encode
                        .push((v, toks[i + 2].text.clone(), toks[i + 2].line));
                }
                i += 4;
                continue;
            }
            i += 1;
        }
    }

    // Decode table from read_msg.
    if let Some(f) = file.functions.iter().find(|f| f.name == "read_msg") {
        let mut pending: Vec<String> = Vec::new();
        let mut i = f.body.start;
        while i < f.body.end {
            if toks[i].kind == TokKind::Number && file.in_pattern(i) {
                pending.push(toks[i].text.clone());
                i += 1;
                continue;
            }
            if toks[i].is_ident("RtMsg")
                && i + 2 < f.body.end
                && toks[i + 1].is("::")
                && toks[i + 2].kind == TokKind::Ident
                && !file.in_pattern(i + 2)
            {
                if let Some(tag) = pending.first().cloned() {
                    ext.decode
                        .push((tag, toks[i + 2].text.clone(), toks[i + 2].line));
                }
                pending.clear();
                i += 3;
                continue;
            }
            i += 1;
        }
    }
    ext
}

fn internal_check(ext: &Extract, file: &FileModel) -> Vec<Diagnostic> {
    let enc_map: BTreeMap<&str, &str> = ext
        .encode
        .iter()
        .map(|(v, t, _)| (v.as_str(), t.as_str()))
        .collect();
    let dec_map: BTreeMap<&str, &str> = ext
        .decode
        .iter()
        .map(|(t, v, _)| (t.as_str(), v.as_str()))
        .collect();
    let mut flagged: Vec<&str> = Vec::new();
    let mut diags = Vec::new();
    let hint = "wire tags are append-only: give the new/changed variant a fresh tag \
         and keep every shipped tag decoding to the same variant (DESIGN.md §16)";
    for (v, tag, line) in &ext.encode {
        let problem = match dec_map.get(tag.as_str()) {
            None => Some(format!(
                "`RtMsg::{v}` encodes to tag {tag} but read_msg has no arm for {tag} \
                 (renumbered or removed)"
            )),
            Some(v2) if *v2 != v.as_str() => Some(format!(
                "`RtMsg::{v}` encodes to tag {tag} but read_msg decodes {tag} as `RtMsg::{v2}`"
            )),
            _ => None,
        };
        if let Some(message) = problem {
            flagged.push(v.as_str());
            diags.push(Diagnostic::new(
                rules::WIRE_COMPAT,
                file.rel.clone(),
                *line,
                "write_msg",
                v.clone(),
                message,
                hint,
            ));
        }
    }
    for (tag, v, line) in &ext.decode {
        if flagged.contains(&v.as_str()) {
            continue;
        }
        let problem = match enc_map.get(v.as_str()) {
            None => Some(format!(
                "read_msg decodes tag {tag} as `RtMsg::{v}` but write_msg never encodes it"
            )),
            Some(t2) if *t2 != tag.as_str() => Some(format!(
                "read_msg decodes tag {tag} as `RtMsg::{v}` but write_msg encodes it as {t2}"
            )),
            _ => None,
        };
        if let Some(message) = problem {
            flagged.push(v.as_str());
            diags.push(Diagnostic::new(
                rules::WIRE_COMPAT,
                file.rel.clone(),
                *line,
                "read_msg",
                v.clone(),
                message,
                hint,
            ));
        }
    }
    diags
}

fn render_surface(ext: &Extract, rel: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Wire-format surface of {rel}.\n"));
    out.push_str(
        "# Renumbering, reordering, or removing an entry is a breaking wire\n\
         # change (WIRE_COMPAT); appending new entries is allowed. Regenerate:\n\
         #   cargo run -p elan-verify -- --emit-codec-surface\n",
    );
    for (name, value, _) in &ext.consts {
        if PINNED_CONSTS.contains(&name.as_str()) {
            out.push_str(&format!("{} = {value}\n", name.to_lowercase()));
        }
    }
    for (name, value, _) in &ext.consts {
        if name.starts_with("FRAME_") {
            out.push_str(&format!("frame {name} = {value}\n"));
        }
    }
    for (v, tag, _) in &ext.encode {
        out.push_str(&format!("msg {v} = {tag}\n"));
    }
    out
}

fn manifest_check(ext: &Extract, path: &std::path::Path, file: &FileModel) -> Vec<Diagnostic> {
    let hint = "regenerate with `cargo run -p elan-verify -- --emit-codec-surface > \
         codec_surface.txt` and get the wire change reviewed; shipped tags must \
         keep their numbers";
    let committed = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(_) => {
            return vec![Diagnostic::new(
                rules::WIRE_COMPAT,
                MANIFEST.to_string(),
                0,
                String::new(),
                "missing",
                format!("{MANIFEST} is missing from the workspace root"),
                hint,
            )]
        }
    };
    let parse = |s: &str| -> BTreeMap<String, String> {
        s.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                l.split_once(" = ")
                    .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            })
            .collect()
    };
    let committed_map = parse(&committed);
    let current_map = parse(&render_surface(ext, &file.rel));
    let mut diags = Vec::new();
    for (k, v) in &committed_map {
        match current_map.get(k) {
            None => diags.push(Diagnostic::new(
                rules::WIRE_COMPAT,
                file.rel.clone(),
                0,
                String::new(),
                k.clone(),
                format!("wire surface entry `{k} = {v}` was removed from the codec"),
                hint,
            )),
            Some(cv) if cv != v => diags.push(Diagnostic::new(
                rules::WIRE_COMPAT,
                file.rel.clone(),
                0,
                String::new(),
                k.clone(),
                format!("wire surface entry `{k}` changed: manifest pins {v}, codec has {cv}"),
                hint,
            )),
            _ => {}
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn check(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![parse_source(src, "codec.rs".into(), String::new())],
            fixture_mode: true,
            root: None,
        };
        run(&ws)
    }

    const GOOD: &str = "fn write_msg(w: &mut Writer, msg: &RtMsg) { match msg {\n\
         RtMsg::Leave { term } => { w.u8(0); w.u64(*term); }\n\
         RtMsg::Resume { term } => { w.u8(1); w.u64(*term); }\n\
         } }\n\
         fn read_msg(r: &mut Reader) -> Result<RtMsg, E> { Ok(match r.u8()? {\n\
         0 => RtMsg::Leave { term: r.u64()? },\n\
         1 => RtMsg::Resume { term: r.u64()? },\n\
         t => return Err(E::UnknownTag(t)),\n\
         }) }";

    #[test]
    fn consistent_tables_are_clean() {
        assert!(check(GOOD).is_empty());
    }

    #[test]
    fn missing_decode_arm_fires_once() {
        let src = GOOD.replace("1 => RtMsg::Resume { term: r.u64()? },\n", "");
        let d = check(&src);
        assert_eq!(d.len(), 1, "got {d:?}");
        assert!(d[0].message.contains("no arm for 1"), "{}", d[0].message);
    }

    #[test]
    fn swapped_decode_fires() {
        let src = GOOD
            .replace("0 => RtMsg::Leave", "0 => RtMsg::Resume")
            .replace("1 => RtMsg::Resume", "1 => RtMsg::Leave");
        let d = check(&src);
        assert!(!d.is_empty(), "swapped tags must fire");
    }

    #[test]
    fn surface_renders_consts_and_tags() {
        let src = format!(
            "pub const WIRE_VERSION: u8 = 1;\n\
             pub const MAX_FRAME_LEN: usize = 1 * 1024;\n\
             const FRAME_HELLO: u8 = 0;\n\
             const FRAME_MSG: u8 = 1;\n{GOOD}"
        );
        let ws = Workspace {
            files: vec![parse_source(&src, "codec.rs".into(), String::new())],
            fixture_mode: true,
            root: None,
        };
        let s = surface(&ws).expect("surface");
        assert!(s.contains("wire_version = 1"), "{s}");
        assert!(s.contains("max_frame_len = 1 * 1024"), "{s}");
        assert!(s.contains("frame FRAME_HELLO = 0"), "{s}");
        assert!(s.contains("msg Leave = 0"), "{s}");
        assert!(s.contains("msg Resume = 1"), "{s}");
    }

    #[test]
    fn nested_submatch_numbers_do_not_confuse_decode() {
        let src = "fn write_msg(w: &mut W, msg: &RtMsg) { match msg {\n\
             RtMsg::StateChunk { kind } => { w.u8(0); w.u8(match kind { \
             StateKind::Params => 0, StateKind::Momentum => 1, }); }\n\
             } }\n\
             fn read_msg(r: &mut R) -> Result<RtMsg, E> { Ok(match r.u8()? {\n\
             0 => { let kind = match r.u8()? { 0 => StateKind::Params, \
             1 => StateKind::Momentum, t => return Err(E::T(t)), }; \
             RtMsg::StateChunk { kind } }\n\
             t => return Err(E::T(t)),\n\
             }) }";
        let d = check(src);
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn files_without_codec_are_ignored() {
        let d = check("fn unrelated() {}");
        assert!(d.is_empty());
    }
}
