//! Wall-clock discipline (WALL_CLOCK): inside `elan-rt`, the only file
//! allowed to read the machine clock or block the OS scheduler is
//! `time.rs` — everything else must go through `TimeSource`, or the
//! deterministic simulation mode silently stops being deterministic. One
//! stray `Instant::now()` in a worker loop re-introduces wall-clock
//! jitter into journal timestamps; one stray `thread::sleep` stalls the
//! virtual clock's quiescence detection and deadlocks seeded runs.
//!
//! Unlike PANIC_HYGIENE, **test code is not exempt**: a test that sleeps
//! is exactly the flakiness the virtual clock exists to remove, and a
//! test that reads `Instant` cannot assert on virtual timestamps. The
//! only exemption is file-level — `elan-rt/src/time.rs` itself, where
//! the real-time backend legitimately calls through to the OS.

use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

/// The crate under wall-clock discipline. Other crates (`elan-sim`,
/// `bench`) are simulation- or harness-side and may time themselves.
const SCOPE_CRATE: &str = "elan-rt";

/// The single file allowed to touch the OS clock: the `TimeSource`
/// implementation, whose real backend must call the real thing.
const EXEMPT_FILE: &str = "elan-rt/src/time.rs";

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if !ws.fixture_mode && file.crate_name != SCOPE_CRATE {
            continue;
        }
        if file.rel.ends_with(EXEMPT_FILE) {
            continue;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            // `Instant::now()` / `SystemTime::now()`
            let call = if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && i + 2 < toks.len()
                && toks[i + 1].is("::")
                && toks[i + 2].is_ident("now")
            {
                Some(format!("{}::now", t.text))
            // `thread::sleep(..)` (also matches `std::thread::sleep`)
            } else if t.is_ident("sleep")
                && i >= 2
                && toks[i - 1].is("::")
                && toks[i - 2].is_ident("thread")
            {
                Some("thread::sleep".to_string())
            } else {
                None
            };
            let Some(call) = call else { continue };
            // Deliberately NO `is_test_at` exemption: test code is in scope.
            let func = file
                .enclosing_fn(i)
                .map(|f| f.qual.clone())
                .unwrap_or_default();
            diags.push(Diagnostic::new(
                rules::WALL_CLOCK,
                file.rel.clone(),
                t.line,
                func,
                call.clone(),
                format!("`{call}` outside time.rs breaks deterministic simulation"),
                "read the clock via TimeSource::now()/deadline_after() and block via \
                 TimeSource::sleep()/park_until() so virtual-time runs stay seeded-deterministic \
                 (see DESIGN.md §12)",
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws_named(src: &str, rel: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, rel.into(), String::new())],
            fixture_mode: true,
            root: None,
        }
    }

    fn ws(src: &str) -> Workspace {
        ws_named(src, "t.rs")
    }

    #[test]
    fn flags_instant_systemtime_and_sleep() {
        let d = run(&ws(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); \
             thread::sleep(Duration::from_millis(PERIOD_MS)); }",
        ));
        let kinds: Vec<&str> = d.iter().map(|d| d.detail.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["Instant::now", "SystemTime::now", "thread::sleep"]
        );
    }

    #[test]
    fn std_qualified_sleep_is_flagged() {
        let d = run(&ws("fn f() { std::thread::sleep(D); }"));
        assert_eq!(d.len(), 1, "got {d:?}");
        assert_eq!(d[0].detail, "thread::sleep");
    }

    #[test]
    fn test_code_is_not_exempt() {
        let d = run(&ws(
            "#[cfg(test)] mod tests { #[test] fn t() { thread::sleep(D); } }",
        ));
        assert_eq!(
            d.len(),
            1,
            "sleeping tests are the flakiness this rule removes"
        );
    }

    #[test]
    fn time_rs_is_exempt() {
        let d = run(&ws_named(
            "fn real_now() -> Instant { Instant::now() }",
            "crates/elan-rt/src/time.rs",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn virtual_sleep_and_yield_are_fine() {
        let d = run(&ws(
            "fn f(time: &TimeSource) { time.sleep(D); thread::yield_now(); let s = v.sleep; }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }
}
