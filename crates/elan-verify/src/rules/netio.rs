//! Network-IO confinement (NETWORK_IO): inside `elan-rt`, the only
//! place allowed to open sockets or name socket types is the transport
//! layer — `elan-rt/src/transport/`. Everything else talks to peers
//! through a `Transport` behind the bus, so the runtime stays
//! transport-agnostic: the deterministic in-memory bus and the socket
//! hub must be interchangeable without the protocol code noticing
//! (DESIGN.md §15). One stray `TcpStream::connect` in a worker loop is
//! an untestable, chaos-invisible side channel.
//!
//! Like WALL_CLOCK, **test code is not exempt**: a test that opens its
//! own socket bypasses the framing, CRC, and reconnect semantics the
//! transport tests exist to pin down. The only exemption is
//! directory-level — the transport implementations themselves.

use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

/// Crates under network discipline: the runtime, the facade crate's own
/// `src/` (including the PR 8 coordinator/worker bins), and the
/// workspace-level integration tests. Other crates are simulation- or
/// harness-side and never open sockets at all.
const SCOPE_CRATES: [&str; 3] = ["elan-rt", "elan", "tests"];

/// The directory allowed to touch the OS socket API: the transport
/// implementations, whose socket backend must call the real thing.
const EXEMPT_DIR: &str = "elan-rt/src/transport/";

/// Socket types whose mention anywhere in scope means OS network IO.
const SOCKET_TYPES: [&str; 6] = [
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "UnixListener",
    "UnixDatagram",
];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if !ws.fixture_mode && !SCOPE_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        if file.rel.contains(EXEMPT_DIR) {
            continue;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            // `std::net::…` module path
            let hit = if t.is_ident("std")
                && i + 2 < toks.len()
                && toks[i + 1].is("::")
                && toks[i + 2].is_ident("net")
            {
                Some("std::net".to_string())
            // `…os::unix::net::…` module path (UDS types live here)
            } else if t.is_ident("net")
                && i >= 2
                && toks[i - 1].is("::")
                && toks[i - 2].is_ident("unix")
            {
                Some("std::os::unix::net".to_string())
            // A socket type, however it was imported.
            } else if SOCKET_TYPES.iter().any(|s| t.is_ident(s)) {
                Some(t.text.clone())
            } else {
                None
            };
            let Some(hit) = hit else { continue };
            // Deliberately NO `is_test_at` exemption: test code is in scope.
            let func = file
                .enclosing_fn(i)
                .map(|f| f.qual.clone())
                .unwrap_or_default();
            diags.push(Diagnostic::new(
                rules::NETWORK_IO,
                file.rel.clone(),
                t.line,
                func,
                hit.clone(),
                format!("`{hit}` outside the transport layer opens an unmanaged socket"),
                "route peer traffic through a Transport implementation in \
                 elan-rt/src/transport/ so framing, CRC checks, and reconnect semantics \
                 apply to every byte on the wire (see DESIGN.md §15)",
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws_named(src: &str, rel: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, rel.into(), String::new())],
            fixture_mode: true,
            root: None,
        }
    }

    fn ws(src: &str) -> Workspace {
        ws_named(src, "t.rs")
    }

    #[test]
    fn flags_std_net_path_and_socket_types() {
        let d = run(&ws(
            "fn f() { let l = std::net::TcpListener::bind(a); let s = UdpSocket::bind(a); }",
        ));
        let kinds: Vec<&str> = d.iter().map(|d| d.detail.as_str()).collect();
        assert_eq!(kinds, vec!["std::net", "TcpListener", "UdpSocket"]);
    }

    #[test]
    fn flags_unix_net_import() {
        let d = run(&ws("use std::os::unix::net::UnixStream;"));
        let kinds: Vec<&str> = d.iter().map(|d| d.detail.as_str()).collect();
        assert_eq!(kinds, vec!["std::os::unix::net", "UnixStream"]);
    }

    #[test]
    fn test_code_is_not_exempt() {
        let d = run(&ws(
            "#[cfg(test)] mod tests { #[test] fn t() { let s = TcpStream::connect(a); } }",
        ));
        assert_eq!(
            d.len(),
            1,
            "socket-opening tests bypass the transport: {d:?}"
        );
    }

    #[test]
    fn transport_dir_is_exempt() {
        let d = run(&ws_named(
            "fn dial(a: &str) -> io::Result<TcpStream> { std::net::TcpStream::connect(a) }",
            "crates/elan-rt/src/transport/socket.rs",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn unrelated_idents_are_fine() {
        let d = run(&ws(
            "fn f(t: &Topology) { let network = t.network(); let unix_time = now(); }",
        ));
        assert!(d.is_empty(), "got {d:?}");
    }
}
