//! Virtual-time safety (VIRTUAL_TIME_UNSAFE): under the seeded virtual
//! clock, a thread that parks in a *real* OS wait (`join()`, raw channel
//! `recv_timeout`, stream reads, condvar waits) never advances virtual
//! time, so the whole scheduler silently hangs. Every blocking op
//! reachable from a runtime entry point — the worker loop, the AM
//! thread, the liveness watchdog — must either route through a
//! virtual-dispatching module or pass through `TimeSource::blocking(..)`,
//! the explicit escape hatch that tells the clock a real wait is in
//! flight (DESIGN.md §12/§16).
//!
//! Exempt modules are the ones that *implement* the dispatch and are
//! therefore allowed to touch both arms: `time.rs` (the clock itself),
//! `bus.rs` (`Endpoint::recv*` picks the virtual or crossbeam arm),
//! `comm/` (allreduce waits park via the clock), and `transport/` (real
//! sockets only ever run in real-time mode; the builder rejects a
//! virtual clock over a socket transport).

use crate::engine::{format_path, Engine};
use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

/// The crate under virtual-time discipline.
const SCOPE_CRATE: &str = "elan-rt";

/// Runtime entry points: the long-lived loops a seeded run drives.
const ENTRY_POINTS: &[&str] = &["run_worker", "am_thread", "watchdog_thread"];

/// Modules that dispatch on `TimeSource::is_virtual()` internally and may
/// therefore contain real waits on their non-virtual arm.
fn exempt_file(rel: &str) -> bool {
    rel.ends_with("/time.rs")
        || rel.ends_with("/bus.rs")
        || rel.contains("/comm/")
        || rel.contains("/transport/")
}

pub fn run(ws: &Workspace, eng: &Engine) -> Vec<Diagnostic> {
    let skip = |i: usize| {
        if ws.fixture_mode {
            return false;
        }
        let file = &ws.files[eng.fns[i].file];
        file.crate_name != SCOPE_CRATE || exempt_file(&file.rel)
    };
    // Only non-escaped ops count: `time.blocking(|| h.join())` is the
    // sanctioned way to do a real wait, and propagation is cut at escaped
    // call sites for the same reason.
    let direct: Vec<Option<(String, u32)>> = eng
        .fns
        .iter()
        .map(|f| {
            f.blocking
                .iter()
                .find(|b| !b.escaped)
                .map(|b| (b.what.clone(), b.line))
        })
        .collect();
    let paths = eng.reach_paths(ws, &direct, &skip, true);

    let mut diags = Vec::new();
    for (idx, f) in eng.fns.iter().enumerate() {
        if skip(idx) || !ENTRY_POINTS.contains(&f.name.as_str()) {
            continue;
        }
        let Some((hops, detail)) = &paths[idx] else {
            continue;
        };
        diags.push(Diagnostic::new(
            rules::VIRTUAL_TIME_UNSAFE,
            ws.files[f.file].rel.clone(),
            hops[0].line,
            f.qual.clone(),
            detail.clone(),
            format!(
                "entry point `{}` reaches real OS-blocking `{detail}` outside the \
                 `blocking()` escape hatch: {}",
                f.name,
                format_path(hops, detail)
            ),
            "park through TimeSource (park_until / recv via the bus) or wrap the \
             real wait in TimeSource::blocking(..) so the virtual clock knows a \
             thread is legitimately off-world (DESIGN.md §12)",
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn check(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![parse_source(src, "t.rs".into(), "t".into())],
            fixture_mode: true,
            root: None,
        };
        let eng = Engine::build(&ws);
        run(&ws, &eng)
    }

    #[test]
    fn entry_reaching_raw_join_fires_with_path() {
        let d = check(
            "fn run_worker(h: H) { reap(h); }\n\
             fn reap(h: H) { let _ = h.join(); }",
        );
        assert_eq!(d.len(), 1, "got {d:?}");
        assert!(
            d[0].message.contains("`run_worker` (t.rs:1)"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains("`reap` (t.rs:2)"), "{}", d[0].message);
    }

    #[test]
    fn blocking_escape_hatch_is_clean() {
        let d = check(
            "fn run_worker(time: &T, h: H) { reap(time, h); }\n\
             fn reap(time: &T, h: H) { time.blocking(|| h.join()); }",
        );
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn escaped_call_site_cuts_propagation() {
        let d = check(
            "fn am_thread(time: &T, h: H) { time.blocking(|| reap(h)); }\n\
             fn reap(h: H) { let _ = h.join(); }",
        );
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn non_entry_functions_do_not_fire() {
        let d = check("fn helper(h: H) { let _ = h.join(); }");
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn raw_receiver_recv_fires_from_entry() {
        let d = check("fn watchdog_thread(receiver: &R) { receiver.recv_timeout(t); }");
        assert_eq!(d.len(), 1, "got {d:?}");
        assert!(d[0].detail.contains("recv_timeout"));
    }

    #[test]
    fn wrapped_endpoint_recv_is_not_raw() {
        let d = check("fn run_worker(rep: &R) { rep.recv_timeout(t); }");
        assert!(d.is_empty(), "virtual-aware wrapper: {d:?}");
    }
}
