//! Term-fenced sends (TERM_FENCED_SEND): the AM's split-brain defense
//! (PR 6) hinges on two facts about every authority-bearing message —
//! `Leave`, `Resume`, `AmReset`, `StateChunk`:
//!
//! 1. the construction carries a fencing `term` field, so receivers can
//!    reject messages from a deposed AM, and
//! 2. the construction happens on a *fence-guarded* path: the enclosing
//!    function (or every caller chain into it) touches `persist_fenced`
//!    or checks the `fenced` flag before the message can reach the bus.
//!
//! Both halves are static: a missing `term` field is a direct diagnostic;
//! an unguarded path is found by propagating "reachable from a
//! non-fence-aware root" down the call graph, with the offending chain
//! printed hop by hop. Scope is the AM control plane — `runtime.rs` and
//! `liveness.rs` — where these variants are only ever built to be sent.
//! (The worker's `StateChunk` replies echo the term of the
//! `TransferOrder` that solicited them and are fenced by the AM side.)

use crate::engine::{format_path, Engine, Hop};
use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

/// Authority-bearing variants that must flow a fencing term.
const FENCED_VARIANTS: &[&str] = &["Leave", "Resume", "AmReset", "StateChunk"];

fn in_scope(rel: &str, fixture: bool) -> bool {
    fixture || rel.ends_with("elan-rt/src/runtime.rs") || rel.ends_with("elan-rt/src/liveness.rs")
}

pub fn run(ws: &Workspace, eng: &Engine) -> Vec<Diagnostic> {
    let n = eng.fns.len();
    // Caller chains from non-fence-aware roots. `unfenced[i]` holds the hop
    // chain (caller, call-site line) proving fn `i` is reachable without
    // passing a fence check; fence-aware functions stop propagation.
    let mut has_caller = vec![false; n];
    for idx in 0..n {
        for c in &eng.fns[idx].calls {
            for t in eng.resolve(ws, idx, &c.callee) {
                if t != idx {
                    has_caller[t] = true;
                }
            }
        }
    }
    let mut unfenced: Vec<Option<Vec<Hop>>> = (0..n)
        .map(|i| {
            if !has_caller[i] && !eng.fns[i].fence_aware {
                Some(Vec::new())
            } else {
                None
            }
        })
        .collect();
    loop {
        let mut assign: Vec<(usize, Vec<Hop>)> = Vec::new();
        for idx in 0..n {
            let Some(chain) = &unfenced[idx] else {
                continue;
            };
            for c in &eng.fns[idx].calls {
                for t in eng.resolve(ws, idx, &c.callee) {
                    if t == idx || eng.fns[t].fence_aware || unfenced[t].is_some() {
                        continue;
                    }
                    let mut path = chain.clone();
                    path.push(Hop {
                        file: ws.files[eng.fns[idx].file].rel.clone(),
                        qual: eng.fns[idx].qual.clone(),
                        line: c.line,
                    });
                    assign.push((t, path));
                }
            }
        }
        let mut changed = false;
        for (t, path) in assign {
            if unfenced[t].is_none() {
                unfenced[t] = Some(path);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut diags = Vec::new();
    for (idx, f) in eng.fns.iter().enumerate() {
        let rel = &ws.files[f.file].rel;
        if !in_scope(rel, ws.fixture_mode) {
            continue;
        }
        for c in &f.constructions {
            if !FENCED_VARIANTS.contains(&c.variant.as_str()) {
                continue;
            }
            if !c.has_term {
                diags.push(Diagnostic::new(
                    rules::TERM_FENCED_SEND,
                    rel.clone(),
                    c.line,
                    f.qual.clone(),
                    c.variant.clone(),
                    format!(
                        "`RtMsg::{}` constructed without a fencing `term` field",
                        c.variant
                    ),
                    "authority-bearing messages must carry the AM's current term so \
                     receivers can reject a deposed AM (DESIGN.md §13/§16)",
                ));
                continue;
            }
            if let Some(chain) = &unfenced[idx] {
                let mut hops = chain.clone();
                hops.push(Hop {
                    file: rel.clone(),
                    qual: f.qual.clone(),
                    line: c.line,
                });
                diags.push(Diagnostic::new(
                    rules::TERM_FENCED_SEND,
                    rel.clone(),
                    c.line,
                    f.qual.clone(),
                    c.variant.clone(),
                    format!(
                        "`RtMsg::{}` can reach the bus without a `persist_fenced` \
                         guard: {}",
                        c.variant,
                        format_path(&hops, &format!("RtMsg::{}", c.variant))
                    ),
                    "persist the fencing term (persist_fenced) or check the fence \
                     before any path that constructs and sends this variant \
                     (DESIGN.md §13/§16)",
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn check(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: vec![parse_source(src, "t.rs".into(), "t".into())],
            fixture_mode: true,
            root: None,
        };
        let eng = Engine::build(&ws);
        run(&ws, &eng)
    }

    #[test]
    fn missing_term_fires() {
        let d = check("fn f(bus: &B, z: Id) { bus.send(RtMsg::Leave { id: z }); }");
        assert_eq!(d.len(), 1, "got {d:?}");
        assert!(d[0].message.contains("without a fencing `term`"));
    }

    #[test]
    fn unfenced_path_fires_with_chain() {
        let d = check(
            "fn drive(bus: &B, t: u64) { emit(bus, t); }\n\
             fn emit(bus: &B, t: u64) { bus.send(RtMsg::Resume { term: t }); }",
        );
        assert_eq!(d.len(), 1, "got {d:?}");
        assert!(
            d[0].message.contains("`drive` (t.rs:1)"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains("`emit` (t.rs:2)"), "{}", d[0].message);
    }

    #[test]
    fn fence_aware_constructor_is_clean() {
        let d = check(
            "impl Am { fn go(&mut self, t: u64) { self.persist_fenced(t); \
             self.bus.send(RtMsg::Resume { term: t }); } }",
        );
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn fence_aware_caller_guards_callee() {
        let d = check(
            "impl Am {\n\
               fn handle(&mut self, t: u64) { self.persist_fenced(t); self.emit(t); }\n\
               fn emit(&mut self, t: u64) { self.bus.send(RtMsg::Leave { id: z, term: t }); }\n\
             }",
        );
        assert!(
            d.is_empty(),
            "every chain into emit passes the fence: {d:?}"
        );
    }

    #[test]
    fn non_fenced_variants_are_ignored() {
        let d = check("fn f(bus: &B) { bus.send(RtMsg::Stop { id: z }); }");
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn pattern_matches_are_not_constructions() {
        let d = check("fn f(m: &RtMsg) -> bool { matches!(m, RtMsg::Leave { .. }) }");
        assert!(d.is_empty(), "got {d:?}");
    }
}
