//! Magic-number drift guard (MAGIC_NUMBER) for reliability code.
//!
//! The dedup window, retry attempt floor, and MsgId owner-shift were once
//! duplicated as bare literals between `reliable.rs`, `messages.rs`, and
//! their tests; this rule keeps them hoisted. The allreduce tuning module
//! (`comm/tune.rs`) joined the scope when the adaptive dispatcher landed:
//! its crossovers and probe parameters decide journal contents, so they
//! must stay named and documented too. Any integer literal other than 0 or
//! 1 inside a non-test function body of the scoped files must come from a
//! named const. Const/static initialisers (where the names live) are
//! exempt, as are float literals and tuple indices.

use crate::lexer::TokKind;
use crate::model::Workspace;
use crate::report::{rules, Diagnostic};

const SCOPE: [&str; 3] = [
    "elan-rt/src/reliable.rs",
    "elan-core/src/messages.rs",
    "elan-rt/src/comm/tune.rs",
];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if !ws.fixture_mode && !SCOPE.iter().any(|s| file.rel.ends_with(s)) {
            continue;
        }
        let toks = &file.toks;
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            // token ranges of `const`/`static` initialisers inside the body
            // are exempt (rare, but `const X: u64 = 400;` in a fn is fine).
            let mut i = f.body.start;
            let mut in_const_until: Option<usize> = None;
            while i < f.body.end {
                let t = &toks[i];
                if t.is_ident("const") || t.is_ident("static") {
                    // exempt until the terminating `;`
                    let mut j = i + 1;
                    while j < f.body.end && !toks[j].is(";") {
                        j += 1;
                    }
                    in_const_until = Some(j);
                }
                if let Some(end) = in_const_until {
                    if i >= end {
                        in_const_until = None;
                    }
                }
                if t.kind == TokKind::Number && in_const_until.is_none() {
                    // tuple index (`pair.1`) is fine
                    let tuple_index = i > 0 && toks[i - 1].is(".");
                    if !tuple_index {
                        if let Some(v) = int_value(&t.text) {
                            if v > 1 {
                                diags.push(Diagnostic::new(
                                    rules::MAGIC_NUMBER,
                                    file.rel.clone(),
                                    t.line,
                                    f.qual.clone(),
                                    t.text.clone(),
                                    format!("magic number `{}` in reliability code", t.text),
                                    "hoist into a named const next to DEFAULT_WINDOW / \
                                     FIRST_RESEND_ATTEMPT / OWNER_SHIFT (or the \
                                     PINNED_*/PROBE_* tuning constants) so tests and \
                                     prod share one definition",
                                ));
                            }
                        }
                    }
                }
                i += 1;
            }
        }
    }
    diags
}

/// Parse an integer literal (handles `_` separators, `0x`/`0o`/`0b`, and type
/// suffixes). Returns `None` for floats.
fn int_value(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if t.contains('.') {
        return None;
    }
    let (radix, digits) = if let Some(rest) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))
    {
        (16, rest)
    } else if let Some(rest) = t.strip_prefix("0o") {
        (8, rest)
    } else if let Some(rest) = t.strip_prefix("0b") {
        (2, rest)
    } else {
        (10, t.as_str())
    };
    // strip type suffix (u8, i64, usize, f32...)
    let digits = digits
        .find(|c: char| !c.is_digit(radix))
        .map(|pos| &digits[..pos])
        .unwrap_or(digits);
    if digits.is_empty() {
        return None;
    }
    u128::from_str_radix(digits, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_source;

    fn ws(src: &str) -> Workspace {
        Workspace {
            files: vec![parse_source(src, "t.rs".into(), String::new())],
            fixture_mode: true,
            root: None,
        }
    }

    #[test]
    fn flags_bare_literal() {
        let d = run(&ws("fn f() -> u32 { 512 }"));
        assert_eq!(d.len(), 1, "got {d:?}");
        assert_eq!(d[0].rule, rules::MAGIC_NUMBER);
        assert_eq!(d[0].detail, "512");
    }

    #[test]
    fn zero_one_and_tuple_index_allowed() {
        let d = run(&ws("fn f(p: (u32, u32, u32)) -> u32 { p.2 + 0 + 1 }"));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn named_const_allowed() {
        let d = run(&ws("const W: usize = 512;\nfn f() -> usize { W }"));
        assert!(d.is_empty(), "got {d:?}");
    }

    #[test]
    fn int_values() {
        assert_eq!(int_value("512"), Some(512));
        assert_eq!(int_value("1_000u64"), Some(1000));
        assert_eq!(int_value("0x20"), Some(32));
        assert_eq!(int_value("2.5"), None);
    }
}
