//! CLI for the workspace invariant checker.
//!
//! ```text
//! elan-verify [--root PATH] [--allow PATH] [--json] [--deny-unused-waivers]
//! elan-verify --fixture FILE.rs [--json]
//! elan-verify --self-test [--root PATH]
//! elan-verify --emit-codec-surface [--root PATH]
//! ```
//!
//! Exit codes: 0 = clean, 1 = active diagnostics (or failed self-test),
//! 2 = usage/configuration error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use elan_verify::{
    apply_waivers, find_root, parse_waivers, render_json, render_text, run_all, self_test,
    Workspace,
};

struct Args {
    root: Option<PathBuf>,
    allow: Option<PathBuf>,
    fixture: Option<PathBuf>,
    json: bool,
    self_test: bool,
    emit_codec_surface: bool,
    deny_unused_waivers: bool,
    show_waived: bool,
}

fn usage() -> &'static str {
    "usage: elan-verify [--root PATH] [--allow PATH] [--json] [--deny-unused-waivers] \
     [--show-waived] | --fixture FILE.rs | --self-test | --emit-codec-surface"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        allow: None,
        fixture: None,
        json: false,
        self_test: false,
        emit_codec_surface: false,
        deny_unused_waivers: false,
        show_waived: false,
    };
    let mut it = env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root requires a path")?));
            }
            "--allow" => {
                args.allow = Some(PathBuf::from(it.next().ok_or("--allow requires a path")?));
            }
            "--fixture" => {
                args.fixture = Some(PathBuf::from(it.next().ok_or("--fixture requires a file")?));
            }
            "--json" => args.json = true,
            "--self-test" => args.self_test = true,
            "--emit-codec-surface" => args.emit_codec_surface = true,
            "--deny-unused-waivers" => args.deny_unused_waivers = true,
            "--show-waived" => args.show_waived = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("elan-verify: {e}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("elan-verify: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Args) -> Result<bool, String> {
    // --self-test: run the fixture suite.
    if args.self_test {
        let root = resolve_root(&args)?;
        let results = self_test(&root)?;
        let mut ok = true;
        for r in &results {
            let status = if r.pass { "ok" } else { "FAIL" };
            println!(
                "self-test {status}: {} (expected [{}], fired [{}])",
                r.name,
                r.expected.join(", "),
                r.fired.join(", ")
            );
            ok &= r.pass;
        }
        println!(
            "self-test: {}/{} fixtures behaved as declared",
            results.iter().filter(|r| r.pass).count(),
            results.len()
        );
        return Ok(ok);
    }

    // --emit-codec-surface: print the current wire surface for committing
    // as codec_surface.txt (the WIRE_COMPAT manifest).
    if args.emit_codec_surface {
        let root = resolve_root(&args)?;
        let ws = Workspace::load(&root)?;
        print!("{}", elan_verify::rules::wirecompat::surface(&ws)?);
        return Ok(true);
    }

    // --fixture: analyse one standalone file with every rule enabled.
    let (ws, root) = if let Some(fx) = &args.fixture {
        (Workspace::load_fixture(fx)?, None)
    } else {
        let root = resolve_root(&args)?;
        (Workspace::load(&root)?, Some(root))
    };

    let mut diags = run_all(&ws)?;

    // Waivers only apply to workspace runs (fixtures must fire raw).
    let mut unused: Vec<String> = Vec::new();
    if args.fixture.is_none() {
        let allow_path = match &args.allow {
            Some(p) => Some(p.clone()),
            None => {
                let default = root
                    .as_ref()
                    .map(|r| r.join("verify-allow.toml"))
                    .filter(|p| p.is_file());
                default
            }
        };
        if let Some(p) = allow_path {
            let waivers = parse_waivers(&p)?;
            let applied = apply_waivers(&mut diags, waivers);
            for w in &applied {
                if w.used == 0 {
                    unused.push(format!(
                        "unused waiver at {}:{} (rule {}, file {})",
                        p.display(),
                        w.line,
                        w.rule,
                        w.file
                    ));
                }
            }
        }
    }

    let active = diags.iter().filter(|d| !d.waived).count();
    let waived = diags.iter().filter(|d| d.waived).count();
    let unused_fail = args.deny_unused_waivers && !unused.is_empty();
    let clean = active == 0 && !unused_fail;

    if args.json {
        print!("{}", render_json(&diags, clean));
    } else {
        print!("{}", render_text(&diags, args.show_waived));
        for u in &unused {
            println!("warning: {u}");
        }
        println!(
            "elan-verify: {} file(s) checked, {active} active diagnostic(s), {waived} waived",
            ws.files.len()
        );
    }
    if unused_fail {
        for u in &unused {
            eprintln!("error (--deny-unused-waivers): {u}");
        }
    }
    Ok(clean)
}

fn resolve_root(args: &Args) -> Result<PathBuf, String> {
    if let Some(r) = &args.root {
        return Ok(r.clone());
    }
    let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    find_root(&cwd).ok_or_else(|| {
        "could not locate the workspace root (need Cargo.toml + crates/); pass --root".to_string()
    })
}
