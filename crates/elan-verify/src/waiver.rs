//! `verify-allow.toml` parsing and waiver application.
//!
//! The waiver file is the *only* way to silence a diagnostic, and it is
//! diffed in CI like `api_surface.txt`, so waivers can only grow with review.
//! The parser handles the TOML subset the file actually uses — `[[waiver]]`
//! array tables with string/integer values and `#` comments — because the
//! build environment is offline and the checker must stay dependency-free.

use std::fs;
use std::path::Path;

use crate::report::Diagnostic;

/// One `[[waiver]]` entry.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule ID this waiver applies to (required).
    pub rule: String,
    /// Suffix-matched against the diagnostic's file path (required).
    pub file: String,
    /// Exact match against the diagnostic's qualified or simple function
    /// name. Empty = any function.
    pub func: String,
    /// Substring match against the diagnostic's `detail`. Empty = any.
    pub detail: String,
    /// Maximum number of diagnostics this entry may absorb (default 1).
    pub count: u32,
    /// Human justification (required, must be non-empty).
    pub reason: String,
    /// Line in the waiver file, for error reporting.
    pub line: u32,
    /// How many diagnostics this entry absorbed during application.
    pub used: u32,
}

/// Parse a waiver file. Returns `Err` with a description on malformed input
/// or on entries missing `rule`, `file`, or a non-empty `reason`.
pub fn parse_waivers(path: &Path) -> Result<Vec<Waiver>, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read waiver file {}: {e}", path.display()))?;
    parse_waivers_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

pub fn parse_waivers_str(text: &str) -> Result<Vec<Waiver>, String> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut in_entry = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(prev) = waivers.last() {
                validate(prev)?;
            }
            waivers.push(Waiver {
                rule: String::new(),
                file: String::new(),
                func: String::new(),
                detail: String::new(),
                count: 1,
                reason: String::new(),
                line: lineno,
                used: 0,
            });
            in_entry = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: unsupported table {line:?} (only [[waiver]] is recognised)"
            ));
        }
        if !in_entry {
            return Err(format!(
                "line {lineno}: key/value outside a [[waiver]] table"
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`, got {line:?}"))?;
        let key = key.trim();
        let value = value.trim();
        let entry = waivers
            .last_mut()
            .ok_or_else(|| format!("line {lineno}: no open [[waiver]] entry"))?;
        match key {
            "rule" => entry.rule = parse_string(value, lineno)?,
            "file" => entry.file = parse_string(value, lineno)?,
            "func" => entry.func = parse_string(value, lineno)?,
            "detail" => entry.detail = parse_string(value, lineno)?,
            "reason" => entry.reason = parse_string(value, lineno)?,
            "count" => {
                entry.count = value
                    .parse::<u32>()
                    .map_err(|_| format!("line {lineno}: count must be an integer"))?;
            }
            other => {
                return Err(format!("line {lineno}: unknown waiver key {other:?}"));
            }
        }
    }
    if let Some(prev) = waivers.last() {
        validate(prev)?;
    }
    Ok(waivers)
}

fn validate(w: &Waiver) -> Result<(), String> {
    if w.rule.is_empty() {
        return Err(format!("waiver at line {}: missing `rule`", w.line));
    }
    if w.file.is_empty() {
        return Err(format!("waiver at line {}: missing `file`", w.line));
    }
    if w.reason.trim().is_empty() {
        return Err(format!(
            "waiver at line {}: missing `reason` — every waiver needs a justification",
            w.line
        ));
    }
    if w.count == 0 {
        return Err(format!("waiver at line {}: count must be >= 1", w.line));
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    // `#` only starts a comment outside quotes in this subset; the waiver
    // file does not use `#` inside strings, but be safe anyway.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: u32) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        let inner = &v[1..v.len() - 1];
        // unescape the small set TOML basic strings allow and we use
        Ok(inner
            .replace("\\\"", "\"")
            .replace("\\\\", "\\")
            .replace("\\n", "\n"))
    } else {
        Err(format!(
            "line {lineno}: expected a double-quoted string, got {v:?}"
        ))
    }
}

impl Waiver {
    fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule
            && d.file.ends_with(&self.file)
            && (self.func.is_empty()
                || d.func == self.func
                || d.func.ends_with(&format!("::{}", self.func)))
            && (self.detail.is_empty() || d.detail.contains(&self.detail))
    }
}

/// Mark diagnostics waived in place. Each waiver absorbs at most `count`
/// matching diagnostics, in file order. Returns the waivers with their
/// `used` counters filled in so the caller can report unused entries.
pub fn apply_waivers(diags: &mut [Diagnostic], mut waivers: Vec<Waiver>) -> Vec<Waiver> {
    for d in diags.iter_mut() {
        if d.waived {
            continue;
        }
        for w in waivers.iter_mut() {
            if w.used < w.count && w.matches(d) {
                d.waived = true;
                d.waived_reason = Some(w.reason.clone());
                w.used += 1;
                break;
            }
        }
    }
    waivers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{rules, Diagnostic};

    const SAMPLE: &str = r#"
# comment
[[waiver]]
rule = "PANIC_HYGIENE"
file = "crates/elan-rt/src/comm.rs"
func = "CommGroup::finish_round"
count = 2
reason = "pool invariant"

[[waiver]]
rule = "PROTOCOL_UNCONSTRUCTED_ERROR"
file = "crates/elan-core/src/error.rs"
detail = "ShuttingDown"
reason = "reserved for the drain path"
"#;

    #[test]
    fn parses_entries() {
        let ws = parse_waivers_str(SAMPLE).expect("parses");
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].count, 2);
        assert_eq!(ws[1].detail, "ShuttingDown");
    }

    #[test]
    fn rejects_missing_reason() {
        let bad = "[[waiver]]\nrule = \"PANIC_HYGIENE\"\nfile = \"x.rs\"\n";
        assert!(parse_waivers_str(bad).is_err());
    }

    #[test]
    fn applies_with_count_budget() {
        let ws = parse_waivers_str(SAMPLE).expect("parses");
        let mk = |line| {
            Diagnostic::new(
                rules::PANIC_HYGIENE,
                "crates/elan-rt/src/comm.rs",
                line,
                "CommGroup::finish_round",
                "expect",
                "m",
                "h",
            )
        };
        let mut diags = vec![mk(1), mk(2), mk(3)];
        let used = apply_waivers(&mut diags, ws);
        assert!(diags[0].waived && diags[1].waived);
        assert!(!diags[2].waived, "count budget exhausted");
        assert_eq!(used[0].used, 2);
        assert_eq!(used[1].used, 0);
    }
}
